"""Partitioning route sets around failed topology elements.

Shared by the offline link-failure repair (:mod:`repro.config.repair`)
and the runtime chaos harness (:mod:`repro.faults.harness`): given a set
of routes and a failed link or router, split the routes into *survivors*
(untouched by the failure, their guarantees still hold verbatim) and
*casualties* (must be re-routed or shed).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Sequence, Tuple

__all__ = [
    "route_uses_link",
    "route_uses_router",
    "partition_by_link",
    "partition_by_router",
]

Pair = Tuple[Hashable, Hashable]
RouteMap = Mapping[Pair, Sequence[Hashable]]


def route_uses_link(
    path: Sequence[Hashable], link: Tuple[Hashable, Hashable]
) -> bool:
    """True iff the router-level path traverses the (undirected) link."""
    broken = frozenset(link)
    return any(frozenset((a, b)) == broken for a, b in zip(path, path[1:]))


def route_uses_router(path: Sequence[Hashable], router: Hashable) -> bool:
    """True iff the router-level path visits the router."""
    return router in path


def partition_by_link(
    routes: RouteMap, link: Tuple[Hashable, Hashable]
) -> Tuple[Dict[Pair, List[Hashable]], List[Pair]]:
    """Split ``routes`` into (survivors, casualty pairs) for a dead link."""
    survivors: Dict[Pair, List[Hashable]] = {}
    casualties: List[Pair] = []
    for pair, path in routes.items():
        if route_uses_link(path, link):
            casualties.append(pair)
        else:
            survivors[pair] = list(path)
    return survivors, casualties


def partition_by_router(
    routes: RouteMap, router: Hashable
) -> Tuple[Dict[Pair, List[Hashable]], List[Pair]]:
    """Split ``routes`` into (survivors, casualty pairs) for a dead router.

    Pairs whose *endpoint* is the dead router are casualties too — the
    caller decides whether they are repairable (they are not) or must be
    shed.
    """
    survivors: Dict[Pair, List[Hashable]] = {}
    casualties: List[Pair] = []
    for pair, path in routes.items():
        if route_uses_router(path, router):
            casualties.append(pair)
        else:
            survivors[pair] = list(path)
    return survivors, casualties
