"""Least-loaded routing — a load-aware but delay-blind baseline.

Between plain shortest-path and the paper's delay-driven heuristic sits
the classic traffic-engineering strategy: spread routes so that no link
carries disproportionately many of them.  It balances *load* but knows
nothing about worst-case *delay* (feedback cycles, jitter inflation), so
comparing all three isolates what the Section 5.2 heuristic's
delay-awareness actually buys (ablation Ext-C's counterpart on the
routing-strategy axis).

The algorithm routes pairs in the given (or distance-descending) order;
for each pair it picks, among the k-shortest candidates, the route
minimizing the maximum occupancy (number of routes already using any of
its servers), breaking ties by total occupancy and then by length.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..errors import RoutingError
from ..topology.network import Network
from ..topology.servergraph import LinkServerGraph
from .candidates import CandidateGenerator

__all__ = ["least_loaded_routes"]

Pair = Tuple[Hashable, Hashable]


def least_loaded_routes(
    network: Network,
    pairs: Sequence[Pair],
    *,
    k_candidates: int = 8,
    detour_slack: int = 2,
    order_by_distance: bool = True,
    graph: Optional[LinkServerGraph] = None,
) -> Dict[Pair, List[Hashable]]:
    """Route every pair minimizing the maximum per-server route count."""
    if len(set(pairs)) != len(pairs):
        raise RoutingError("duplicate source/destination pairs")
    g = graph if graph is not None else LinkServerGraph(network)
    candidates = CandidateGenerator(
        network, k=k_candidates, detour_slack=detour_slack
    )
    occupancy = np.zeros(g.num_servers, dtype=np.int64)

    if order_by_distance:
        dist_cache: Dict[Hashable, Dict[Hashable, int]] = {}

        def distance(pair: Pair) -> int:
            src, dst = pair
            if src not in dist_cache:
                dist_cache[src] = nx.single_source_shortest_path_length(
                    network.graph, src
                )
            return int(dist_cache[src][dst])

        ordered = sorted(
            pairs, key=lambda p: (-distance(p), str(p[0]), str(p[1]))
        )
    else:
        ordered = list(pairs)

    routes: Dict[Pair, List[Hashable]] = {}
    for pair in ordered:
        best = None
        for cand in candidates(*pair):
            servers = g.route_servers(cand)
            key = (
                int(occupancy[servers].max()),
                int(occupancy[servers].sum()),
                len(cand),
            )
            if best is None or key < best[0]:
                best = (key, cand, servers)
        _, chosen, servers = best
        occupancy[servers] += 1
        routes[pair] = list(chosen)
    return routes
