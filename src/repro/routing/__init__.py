"""Routing: shortest-path baseline, candidates, and the safe-route heuristic."""

from .candidates import CandidateGenerator, candidate_routes
from .dependency import ServerDependencyGraph
from .heuristic import HeuristicOptions, SafeRouteSelector, SelectionOutcome
from .leastloaded import least_loaded_routes
from .multiclass_heuristic import (
    MultiClassRouteSelector,
    MultiClassSelectionOutcome,
)
from .shortest import route_lengths, shortest_path_route, shortest_path_routes

__all__ = [
    "CandidateGenerator",
    "HeuristicOptions",
    "MultiClassRouteSelector",
    "MultiClassSelectionOutcome",
    "SafeRouteSelector",
    "SelectionOutcome",
    "ServerDependencyGraph",
    "candidate_routes",
    "least_loaded_routes",
    "route_lengths",
    "shortest_path_route",
    "shortest_path_routes",
]
