"""Routing: shortest-path baseline, candidates, and the safe-route heuristic."""

from .candidates import CandidateGenerator, candidate_routes
from .dependency import ServerDependencyGraph
from .heuristic import HeuristicOptions, SafeRouteSelector, SelectionOutcome
from .leastloaded import least_loaded_routes
from .multiclass_heuristic import (
    MultiClassRouteSelector,
    MultiClassSelectionOutcome,
)
from .partition import (
    partition_by_link,
    partition_by_router,
    route_uses_link,
    route_uses_router,
)
from .shortest import route_lengths, shortest_path_route, shortest_path_routes

__all__ = [
    "CandidateGenerator",
    "HeuristicOptions",
    "MultiClassRouteSelector",
    "MultiClassSelectionOutcome",
    "SafeRouteSelector",
    "SelectionOutcome",
    "ServerDependencyGraph",
    "candidate_routes",
    "least_loaded_routes",
    "partition_by_link",
    "partition_by_router",
    "route_lengths",
    "route_uses_link",
    "route_uses_router",
    "shortest_path_route",
    "shortest_path_routes",
]
