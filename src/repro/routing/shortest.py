"""Shortest-path routing — the paper's comparison baseline (Section 6).

Hop-count shortest paths with deterministic (BFS insertion-order)
tie-breaking, as produced by NetworkX.  The Table 1 experiment compares the
maximum safe utilization under these routes against the Section 5.2
heuristic.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

import networkx as nx

from ..errors import NoRouteError
from ..topology.network import Network

__all__ = ["shortest_path_route", "shortest_path_routes", "route_lengths"]

Pair = Tuple[Hashable, Hashable]


def shortest_path_route(
    network: Network, source: Hashable, destination: Hashable
) -> List[Hashable]:
    """One hop-count shortest path (deterministic tie-breaking)."""
    try:
        return nx.shortest_path(network.graph, source, destination)
    except (nx.NetworkXNoPath, nx.NodeNotFound):
        raise NoRouteError(source, destination) from None


def shortest_path_routes(
    network: Network, pairs: Sequence[Pair]
) -> Dict[Pair, List[Hashable]]:
    """Shortest-path routes for many pairs (one BFS per distinct source)."""
    by_source: Dict[Hashable, Dict[Hashable, List[Hashable]]] = {}
    routes: Dict[Pair, List[Hashable]] = {}
    for src, dst in pairs:
        if src not in by_source:
            if src not in network:
                raise NoRouteError(src, dst)
            by_source[src] = nx.single_source_shortest_path(
                network.graph, src
            )
        try:
            routes[(src, dst)] = by_source[src][dst]
        except KeyError:
            raise NoRouteError(src, dst) from None
    return routes


def route_lengths(routes: Dict[Pair, Sequence[Hashable]]) -> Dict[Pair, int]:
    """Hop count of every route."""
    return {pair: len(path) - 1 for pair, path in routes.items()}
