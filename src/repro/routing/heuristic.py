"""Safe route selection (Section 5.2).

The problem — pick one route per source/destination pair such that every
class deadline holds under a given utilization assignment — is NP-hard
(reduction from Maximum Fixed-Length Disjoint Paths).  The paper's
polynomial heuristic is a no-backtrack greedy search with three levers,
each implemented and individually switchable here (the ablation bench
exercises all combinations):

1. **pair ordering** — route source/destination pairs in decreasing order
   of shortest-path distance (long, constrained pairs claim resources
   first);
2. **cycle avoidance** — among the candidate routes of a pair, prefer
   those that keep the link-server dependency graph acyclic (less queueing
   feedback, lower delays);
3. **min-delay choice** — among the preferred candidates that keep the
   configuration safe, commit the one whose own end-to-end delay bound is
   smallest.

If no candidate of some pair keeps all deadlines satisfiable, the search
declares failure (no backtracking), exactly as in Figure 3 of the paper.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..analysis.beta import beta_coefficient
from ..analysis.delays import resolve_fan_in, theorem3_update
from ..analysis.fixedpoint import solve_fixed_point
from ..analysis.routesystem import GrowableRouteSystem
from ..analysis.scratch import FixedPointWorkspace
from ..errors import RoutingError
from ..obs import OBS
from ..topology.network import Network
from ..topology.servergraph import LinkServerGraph
from ..traffic.classes import TrafficClass
from .candidates import CandidateGenerator
from .dependency import ServerDependencyGraph

__all__ = ["HeuristicOptions", "SelectionOutcome", "SafeRouteSelector"]

logger = logging.getLogger("repro.routing.heuristic")

Pair = Tuple[Hashable, Hashable]


@dataclass(frozen=True)
class HeuristicOptions:
    """Tuning knobs of the Section 5.2 heuristic.

    The defaults are the full paper heuristic; switching individual
    features off yields the ablation variants.

    Attributes
    ----------
    k_candidates / detour_slack:
        Candidate generation (k-shortest simple paths within
        ``detour_slack`` hops of shortest).
    order_by_distance:
        Heuristic (1): route farthest pairs first.  Off = given order.
    prefer_acyclic:
        Heuristic (2): prefer candidates keeping the dependency graph
        acyclic.
    min_delay_choice:
        Heuristic (3): among safe candidates pick minimum route delay.
        Off = first safe candidate (shortest).
    """

    k_candidates: int = 8
    detour_slack: int = 2
    order_by_distance: bool = True
    prefer_acyclic: bool = True
    min_delay_choice: bool = True

    def __post_init__(self):
        if self.k_candidates < 1:
            raise RoutingError("k_candidates must be >= 1")
        if self.detour_slack < 0:
            raise RoutingError("detour_slack must be >= 0")


@dataclass
class SelectionOutcome:
    """Result of one safe-route-selection run.

    ``success`` mirrors the paper's SUCCESS/FAILURE verdict; on failure
    ``failed_pair`` names the first pair with no safe candidate and
    ``routes`` contains the pairs routed up to that point.
    """

    success: bool
    routes: Dict[Pair, List[Hashable]]
    failed_pair: Optional[Pair]
    server_delays: np.ndarray
    worst_route_delay: float
    candidates_evaluated: int
    acyclic_preferred_hits: int

    @property
    def num_routed(self) -> int:
        return len(self.routes)


class SafeRouteSelector:
    """Greedy safe route selection for a single real-time class.

    One selector instance caches topology-derived state (candidate routes,
    fan-in vectors) and can be reused across utilization levels — the
    binary search of Section 5.3 calls :meth:`select` repeatedly.
    """

    def __init__(
        self,
        network: Network,
        traffic_class: TrafficClass,
        *,
        options: HeuristicOptions = HeuristicOptions(),
        n_mode: str = "uniform",
        graph: Optional[LinkServerGraph] = None,
    ):
        if not traffic_class.is_realtime:
            raise RoutingError(
                f"class {traffic_class.name!r} has no finite deadline"
            )
        self.network = network
        self.traffic_class = traffic_class
        self.options = options
        self.graph = graph if graph is not None else LinkServerGraph(network)
        self.fan_in = resolve_fan_in(self.graph, n_mode)
        # Candidate routes depend only on (topology, k, slack), so every
        # selector over the same network shares one generator/cache.
        self._candidates = CandidateGenerator.shared(
            network,
            k=options.k_candidates,
            detour_slack=options.detour_slack,
        )
        self._distance_cache: Dict[Hashable, Dict[Hashable, int]] = {}
        # Reused across select() calls (the Section 5.3 binary search
        # probes the same pairs at many utilization levels).
        self._workspace = FixedPointWorkspace()
        self._last_system: Optional[GrowableRouteSystem] = None
        self._order_cache: Dict[Tuple[Pair, ...], List[Pair]] = {}
        self._server_cand_cache: Dict[Pair, List[np.ndarray]] = {}
        self._beta_cache: Dict[float, np.ndarray] = {}

    # ------------------------------------------------------------------ #

    def _distance(self, src: Hashable, dst: Hashable) -> int:
        if src not in self._distance_cache:
            self._distance_cache[src] = nx.single_source_shortest_path_length(
                self.network.graph, src
            )
        return int(self._distance_cache[src][dst])

    def _ordered_pairs(self, pairs: Sequence[Pair]) -> List[Pair]:
        if not self.options.order_by_distance:
            return list(pairs)
        key = tuple(pairs)
        cached = self._order_cache.get(key)
        if cached is None:
            cached = sorted(
                pairs,
                key=lambda p: (-self._distance(*p), str(p[0]), str(p[1])),
            )
            self._order_cache[key] = cached
        return list(cached)

    def _server_candidates(
        self, pair: Pair
    ) -> Tuple[List[List[Hashable]], List[np.ndarray]]:
        """Router-level candidates and their link-server index routes.

        The conversion is pure topology, so it is cached per pair and
        reused by every probe of the binary search.
        """
        raw = self._candidates(*pair)
        servers = self._server_cand_cache.get(pair)
        if servers is None:
            servers = [self.graph.route_servers(c) for c in raw]
            self._server_cand_cache[pair] = servers
        return raw, servers

    def _beta_full(self, alpha: float) -> np.ndarray:
        """Unmasked Theorem 3 coefficients, cached per utilization level."""
        beta = self._beta_cache.get(alpha)
        if beta is None:
            beta = np.asarray(
                beta_coefficient(alpha, self.traffic_class.rate, self.fan_in)
            )
            self._beta_cache[alpha] = beta
        return beta

    # ------------------------------------------------------------------ #

    def select(
        self,
        pairs: Sequence[Pair],
        alpha: float,
        *,
        fixed_routes: Optional[Sequence[Sequence[Hashable]]] = None,
    ) -> SelectionOutcome:
        """Run the greedy search for one utilization level.

        Parameters
        ----------
        pairs:
            Source/destination pairs to route (each exactly once).
        alpha:
            Bandwidth fraction of the real-time class.
        fixed_routes:
            Router-level paths committed *before* the search (e.g. the
            surviving routes during link-failure repair).  They count in
            every safety check and in the dependency graph, but are not
            reported in ``routes``.
        """
        if not OBS.enabled:
            return self._select_impl(pairs, alpha, fixed_routes=fixed_routes)
        with OBS.span(
            "routing.select",
            pairs=len(pairs),
            alpha=alpha,
            cls=self.traffic_class.name,
        ) as sp:
            outcome = self._select_impl(
                pairs, alpha, fixed_routes=fixed_routes
            )
            sp.set(
                success=outcome.success,
                candidates=outcome.candidates_evaluated,
            )
        reg = OBS.registry
        reg.counter(
            "repro_routing_selections_total",
            outcome="success" if outcome.success else "failure",
        ).inc()
        reg.counter("repro_routing_candidates_evaluated_total").inc(
            outcome.candidates_evaluated
        )
        reg.counter("repro_routing_pairs_routed_total").inc(
            outcome.num_routed
        )
        reg.counter("repro_routing_acyclic_preferred_total").inc(
            outcome.acyclic_preferred_hits
        )
        grow = self._last_system
        if grow is not None:
            # Incremental-path health: pushes/pops instead of rebuilds,
            # and how rarely the scratch workspace had to regrow.
            reg.counter("repro_routing_route_pushes_total").inc(grow.pushes)
            reg.counter("repro_routing_route_pops_total").inc(grow.pops)
        reg.gauge("repro_routing_workspace_resizes").set(
            self._workspace.resizes
        )
        if not outcome.success:
            logger.debug(
                "route selection failed at pair %r (alpha=%g, "
                "%d pairs routed, %d candidates evaluated)",
                outcome.failed_pair,
                alpha,
                outcome.num_routed,
                outcome.candidates_evaluated,
            )
        return outcome

    def _select_impl(
        self,
        pairs: Sequence[Pair],
        alpha: float,
        *,
        fixed_routes: Optional[Sequence[Sequence[Hashable]]] = None,
    ) -> SelectionOutcome:
        if len(set(pairs)) != len(pairs):
            raise RoutingError("duplicate source/destination pairs")
        cls = self.traffic_class
        ordered = self._ordered_pairs(pairs)

        # The growable system holds the committed routes; each candidate
        # trial pushes one route, solves in the shared scratch workspace,
        # and pops — no per-candidate rebuild of the committed set.
        grow = GrowableRouteSystem(self.graph.num_servers)
        self._last_system = grow
        routes: Dict[Pair, List[Hashable]] = {}
        deps = ServerDependencyGraph()
        d_current = np.zeros(self.graph.num_servers, dtype=np.float64)
        candidates_evaluated = 0
        acyclic_hits = 0

        if fixed_routes:
            for path in fixed_routes:
                servers = self.graph.route_servers(path)
                grow.push(servers)
                deps.add_route(servers)
            update = theorem3_update(
                grow, cls.burst, cls.rate, alpha, self.fan_in,
                beta_full=self._beta_full(alpha),
            )
            base = solve_fixed_point(
                grow,
                update,
                deadlines=cls.deadline,
                workspace=self._workspace,
            )
            if not base.safe:
                # The fixed routes alone already violate: nothing to do.
                return SelectionOutcome(
                    success=False,
                    routes={},
                    failed_pair=ordered[0] if ordered else None,
                    server_delays=base.delays,
                    worst_route_delay=float(
                        base.route_delays.max(initial=0.0)
                    ),
                    candidates_evaluated=0,
                    acyclic_preferred_hits=0,
                )
            d_current = base.delays

        for pair in ordered:
            raw_candidates, server_cands = self._server_candidates(pair)
            # Heuristic (2): prefer candidates keeping dependencies acyclic.
            if self.options.prefer_acyclic:
                acyclic = [
                    i
                    for i, sc in enumerate(server_cands)
                    if not deps.creates_cycle(sc)
                ]
                groups = [acyclic] if acyclic else []
                acyclic_set = set(acyclic)
                rest = [
                    i
                    for i in range(len(server_cands))
                    if i not in acyclic_set
                ]
                if rest:
                    groups.append(rest)
                if acyclic:
                    acyclic_hits += 1
            else:
                groups = [list(range(len(server_cands)))]

            chosen = None  # (cand_idx, delays, route_delay)
            for group in groups:
                best: Optional[Tuple[int, np.ndarray, float]] = None
                for i in group:
                    candidates_evaluated += 1
                    trial = self._try_candidate(
                        grow, server_cands[i], alpha, d_current
                    )
                    if trial is None:
                        continue
                    delays, new_route_delay = trial
                    if best is None or new_route_delay < best[2]:
                        best = (i, delays, new_route_delay)
                    if not self.options.min_delay_choice:
                        break  # first safe candidate wins
                if best is not None:
                    chosen = best
                    break  # do not fall through to the cyclic group

            if chosen is None:
                return SelectionOutcome(
                    success=False,
                    routes=routes,
                    failed_pair=pair,
                    server_delays=d_current,
                    worst_route_delay=self._worst_route_delay(
                        grow, d_current
                    ),
                    candidates_evaluated=candidates_evaluated,
                    acyclic_preferred_hits=acyclic_hits,
                )

            idx, delays, _ = chosen
            grow.push(server_cands[idx])
            routes[pair] = list(raw_candidates[idx])
            deps.add_route(server_cands[idx])
            d_current = delays

        return SelectionOutcome(
            success=True,
            routes=routes,
            failed_pair=None,
            server_delays=d_current,
            worst_route_delay=self._worst_route_delay(grow, d_current),
            candidates_evaluated=candidates_evaluated,
            acyclic_preferred_hits=acyclic_hits,
        )

    # ------------------------------------------------------------------ #

    def _try_candidate(
        self,
        grow: GrowableRouteSystem,
        candidate: np.ndarray,
        alpha: float,
        warm: np.ndarray,
    ) -> Optional[Tuple[np.ndarray, float]]:
        """Fixed point with the candidate added; None if any deadline breaks.

        The candidate is pushed for the duration of the solve and popped
        before returning (the caller re-pushes the winning candidate).
        The warm start is sound: adding a route only enlarges the monotone
        update, so the previous solution lies below the new least fixed
        point.
        """
        # Note: an exact one-pass solver exists for acyclic systems
        # (repro.analysis.acyclic), but the warm-started vectorized
        # iteration converges in a handful of cheap NumPy steps here and
        # measures faster than the per-server Python pass, so the
        # iterative path stays the hot path.
        cls = self.traffic_class
        # Sound pre-solve rejection: the candidate's end-to-end delay at
        # the warm iterate only grows under the monotone update, so if it
        # already exceeds the deadline the solver's first-iteration check
        # would reject it anyway — skip the solve setup entirely.
        if float(warm[candidate].sum()) > cls.deadline:
            return None
        grow.push(candidate)
        try:
            update = theorem3_update(
                grow, cls.burst, cls.rate, alpha, self.fan_in,
                beta_full=self._beta_full(alpha),
            )
            result = solve_fixed_point(
                grow,
                update,
                initial=warm,
                deadlines=cls.deadline,
                workspace=self._workspace,
            )
        finally:
            grow.pop()
        if not result.safe:
            return None
        return result.delays, float(result.route_delays[-1])

    def _worst_route_delay(
        self, system: GrowableRouteSystem, delays: np.ndarray
    ) -> float:
        rd = system.route_delays(delays)
        return float(rd.max()) if rd.size else 0.0
