"""Server dependency graph and cycle accounting.

The Section 5.2 heuristic prefers candidate routes that keep the set of
routes "noncyclic": a route induces directed dependency edges between
consecutive link servers, and a cycle in the union of those edges means
the delay fixed point has feedback ("the feedback in the queuing of
packets is reduced, and so is the delay" — Section 5.2, heuristic (2)).

:class:`ServerDependencyGraph` maintains the union with edge multiplicities
so routes can be added and removed, and answers "would adding this route
create a cycle?" queries.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

import networkx as nx

from ..errors import RoutingError

__all__ = ["ServerDependencyGraph"]

Edge = Tuple[int, int]


def _route_edges(servers: Sequence[int]) -> List[Edge]:
    return [
        (int(servers[i]), int(servers[i + 1]))
        for i in range(len(servers) - 1)
    ]


class ServerDependencyGraph:
    """Directed dependency graph over link-server indices with multiplicity."""

    def __init__(self):
        self._graph = nx.DiGraph()
        self._counts: Dict[Edge, int] = {}

    @property
    def num_edges(self) -> int:
        return self._graph.number_of_edges()

    def edge_count(self, edge: Edge) -> int:
        """How many added routes use this dependency edge."""
        return self._counts.get(edge, 0)

    def add_route(self, servers: Sequence[int]) -> None:
        """Register a route's dependency edges."""
        for edge in _route_edges(servers):
            self._counts[edge] = self._counts.get(edge, 0) + 1
            self._graph.add_edge(*edge)

    def remove_route(self, servers: Sequence[int]) -> None:
        """Unregister a previously added route."""
        for edge in _route_edges(servers):
            count = self._counts.get(edge, 0)
            if count <= 0:
                raise RoutingError(
                    f"removing route that was never added (edge {edge})"
                )
            if count == 1:
                del self._counts[edge]
                self._graph.remove_edge(*edge)
            else:
                self._counts[edge] = count - 1

    def is_acyclic(self) -> bool:
        return nx.is_directed_acyclic_graph(self._graph)

    def creates_cycle(self, servers: Sequence[int]) -> bool:
        """Would adding this route introduce a new directed cycle?

        A new edge ``(a, b)`` closes a cycle iff ``a`` is reachable from
        ``b`` in the graph extended with the route's new edges.  Correct
        whether or not the existing union already contains cycles.
        """
        new_edges = [
            e for e in _route_edges(servers) if not self._graph.has_edge(*e)
        ]
        if not new_edges:
            # Reusing existing edges cannot introduce a new cycle.
            return False
        self._graph.add_edges_from(new_edges)
        try:
            # A cycle through a new edge (a, b) exists iff b reaches a.
            return any(
                nx.has_path(self._graph, b, a) for a, b in new_edges
            )
        finally:
            self._graph.remove_edges_from(new_edges)

    def acyclic_with(self, servers: Sequence[int]) -> bool:
        """Is the union still acyclic after adding this route?

        This is the Section 5.2 preference predicate: "whenever possible,
        each of them forms a noncyclic graph with existing routes".
        """
        new_edges = [
            e for e in _route_edges(servers) if not self._graph.has_edge(*e)
        ]
        if not new_edges:
            return self.is_acyclic()
        self._graph.add_edges_from(new_edges)
        try:
            return nx.is_directed_acyclic_graph(self._graph)
        finally:
            self._graph.remove_edges_from(new_edges)

    def cycles_sample(self, limit: int = 10) -> List[List[int]]:
        """Up to ``limit`` simple cycles, for diagnostics."""
        out = []
        for cycle in nx.simple_cycles(self._graph):
            out.append([int(s) for s in cycle])
            if len(out) >= limit:
                break
        return out
