"""Candidate route generation for the Section 5.2 heuristic.

The paper leaves the candidate generator unspecified ("a group of candidate
routes for the new pair").  We use Yen-style k-shortest **simple** paths
with a detour slack: candidates may be at most ``detour_slack`` hops longer
than the shortest path, and at most ``k`` candidates are produced.  The
slack bound matters — without it, very long detours would blow end-to-end
delay budgets for no routing benefit.
"""

from __future__ import annotations

from itertools import islice
from typing import Dict, Hashable, Iterator, List, Sequence, Tuple
from weakref import WeakKeyDictionary

import networkx as nx

from ..errors import NoRouteError, RoutingError
from ..obs import OBS
from ..topology.network import Network

__all__ = ["candidate_routes", "CandidateGenerator"]


def candidate_routes(
    network: Network,
    source: Hashable,
    destination: Hashable,
    *,
    k: int = 8,
    detour_slack: int = 2,
) -> List[List[Hashable]]:
    """Up to ``k`` simple paths within ``detour_slack`` hops of shortest.

    Paths are returned shortest-first (NetworkX guarantees nondecreasing
    length from ``shortest_simple_paths``).
    """
    if k < 1:
        raise RoutingError(f"k must be >= 1, got {k}")
    if detour_slack < 0:
        raise RoutingError(f"detour_slack must be >= 0, got {detour_slack}")
    try:
        generator = nx.shortest_simple_paths(
            network.graph, source, destination
        )
        first = next(generator)
    except (nx.NetworkXNoPath, nx.NodeNotFound, StopIteration):
        raise NoRouteError(source, destination) from None
    limit = (len(first) - 1) + detour_slack
    out = [first]
    for path in generator:
        if len(out) >= k:
            break
        if len(path) - 1 > limit:
            break  # lengths are nondecreasing; nothing shorter follows
        out.append(path)
    return out[:k]


class CandidateGenerator:
    """Caching wrapper around :func:`candidate_routes`.

    The route-selection heuristic queries the same pair repeatedly during
    the binary search over utilization; candidates depend only on the
    topology, so they are computed once per pair.
    """

    #: Generators shared per live network: candidates depend only on
    #: (topology, k, slack), so independent selectors over one network
    #: (ablation variants, repeated searches) reuse one cache.
    _shared: "WeakKeyDictionary[Network, Dict[Tuple[int, int], CandidateGenerator]]" = (
        WeakKeyDictionary()
    )

    def __init__(
        self, network: Network, *, k: int = 8, detour_slack: int = 2
    ):
        self.network = network
        self.k = int(k)
        self.detour_slack = int(detour_slack)
        self._cache = {}

    @classmethod
    def shared(
        cls, network: Network, *, k: int = 8, detour_slack: int = 2
    ) -> "CandidateGenerator":
        """The per-network generator for ``(k, detour_slack)``.

        Falls back to a private instance when the network cannot be
        weak-referenced.
        """
        try:
            per_network = cls._shared.get(network)
            if per_network is None:
                per_network = {}
                cls._shared[network] = per_network
        except TypeError:  # not weak-referenceable
            return cls(network, k=k, detour_slack=detour_slack)
        generator = per_network.get((int(k), int(detour_slack)))
        if generator is None:
            generator = cls(network, k=k, detour_slack=detour_slack)
            per_network[(int(k), int(detour_slack))] = generator
        return generator

    def __call__(
        self, source: Hashable, destination: Hashable
    ) -> List[List[Hashable]]:
        key = (source, destination)
        cached = self._cache.get(key)
        if cached is None:
            cached = candidate_routes(
                self.network,
                source,
                destination,
                k=self.k,
                detour_slack=self.detour_slack,
            )
            self._cache[key] = cached
            if OBS.enabled:
                reg = OBS.registry
                reg.counter(
                    "repro_routing_candidate_cache_total", result="miss"
                ).inc()
                reg.histogram(
                    "repro_routing_candidates_per_pair",
                    buckets=(1, 2, 4, 8, 16, 32, 64),
                ).observe(len(cached))
        elif OBS.enabled:
            OBS.registry.counter(
                "repro_routing_candidate_cache_total", result="hit"
            ).inc()
        return cached
