"""Multi-class safe route selection (the Section 5.4 "variations").

The paper states that "variations of the algorithms derived in Sections
5.2 and 5.3 can then be used to select safe routes" for systems with
several real-time classes, without spelling them out.  This module
implements the natural variation:

* classes are routed **in priority order** (highest first) — a
  higher-priority class never depends on lower-priority routing, so the
  greedy pass over classes is stable;
* within a class the Section 5.2 per-pair greedy runs unchanged (distance
  ordering, cycle-avoiding candidate preference, min-delay choice), except
  that candidate safety is judged by the **joint Theorem 5 fixed point**
  over all classes routed so far — a candidate that wrecks an
  already-routed higher-priority class, or the candidate class itself, is
  rejected;
* the dependency graph used for cycle avoidance is shared across classes
  (feedback couples classes through the ``Y`` terms).

Warm starts carry the joint delay matrix across candidates, exactly like
the single-class selector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..analysis.multiclass import MultiClassResult, multi_class_delays
from ..errors import RoutingError
from ..topology.network import Network
from ..topology.servergraph import LinkServerGraph
from ..traffic.classes import ClassRegistry
from .candidates import CandidateGenerator
from .dependency import ServerDependencyGraph
from .heuristic import HeuristicOptions

__all__ = ["MultiClassSelectionOutcome", "MultiClassRouteSelector"]

Pair = Tuple[Hashable, Hashable]


@dataclass
class MultiClassSelectionOutcome:
    """Result of one multi-class safe route selection run."""

    success: bool
    routes: Dict[str, Dict[Pair, List[Hashable]]]
    failed_class: Optional[str]
    failed_pair: Optional[Pair]
    verification: Optional[MultiClassResult]
    candidates_evaluated: int

    @property
    def num_routed(self) -> int:
        return sum(len(r) for r in self.routes.values())

    def routes_by_class(self) -> Dict[str, List[List[Hashable]]]:
        """Route lists keyed by class (the shape the analysis consumes)."""
        return {
            name: [list(p) for p in pair_map.values()]
            for name, pair_map in self.routes.items()
        }


class MultiClassRouteSelector:
    """Greedy joint-safety route selection for several real-time classes."""

    def __init__(
        self,
        network: Network,
        registry: ClassRegistry,
        *,
        options: HeuristicOptions = HeuristicOptions(),
        n_mode: str = "uniform",
        graph: Optional[LinkServerGraph] = None,
    ):
        if not registry.realtime_classes():
            raise RoutingError("registry has no real-time class to route")
        self.network = network
        self.registry = registry
        self.options = options
        self.n_mode = n_mode
        self.graph = graph if graph is not None else LinkServerGraph(network)
        self._candidates = CandidateGenerator(
            network,
            k=options.k_candidates,
            detour_slack=options.detour_slack,
        )
        self._distance_cache: Dict[Hashable, Dict[Hashable, int]] = {}

    # ------------------------------------------------------------------ #

    def _distance(self, src: Hashable, dst: Hashable) -> int:
        if src not in self._distance_cache:
            self._distance_cache[src] = (
                nx.single_source_shortest_path_length(
                    self.network.graph, src
                )
            )
        return int(self._distance_cache[src][dst])

    def _ordered(self, pairs: Sequence[Pair]) -> List[Pair]:
        if not self.options.order_by_distance:
            return list(pairs)
        return sorted(
            pairs, key=lambda p: (-self._distance(*p), str(p[0]), str(p[1]))
        )

    # ------------------------------------------------------------------ #

    def select(
        self,
        pairs_by_class: Mapping[str, Sequence[Pair]],
        alphas: Mapping[str, float],
    ) -> MultiClassSelectionOutcome:
        """Route every class's pairs under the joint Theorem 5 bound.

        Parameters
        ----------
        pairs_by_class:
            Source/destination demand per real-time class name.  Classes
            absent from the mapping get no routes.
        alphas:
            Per-class utilization assignment (must cover every real-time
            class in the registry).
        """
        rt_names = [c.name for c in self.registry.realtime_classes()]
        for name in pairs_by_class:
            if name not in rt_names:
                raise RoutingError(
                    f"class {name!r} is not a registered real-time class"
                )
        routes: Dict[str, Dict[Pair, List[Hashable]]] = {
            name: {} for name in rt_names
        }
        deps = ServerDependencyGraph()
        warm: Optional[np.ndarray] = None
        candidates_evaluated = 0
        last_result: Optional[MultiClassResult] = None

        for name in rt_names:  # priority order: highest first
            demand = list(pairs_by_class.get(name, ()))
            if len(set(demand)) != len(demand):
                raise RoutingError(
                    f"duplicate pairs in class {name!r} demand"
                )
            for pair in self._ordered(demand):
                raw = self._candidates(*pair)
                server_cands = [self.graph.route_servers(c) for c in raw]
                if self.options.prefer_acyclic:
                    acyclic = [
                        i
                        for i, sc in enumerate(server_cands)
                        if not deps.creates_cycle(sc)
                    ]
                    groups = [acyclic] if acyclic else []
                    rest = [
                        i for i in range(len(server_cands))
                        if i not in acyclic
                    ]
                    if rest:
                        groups.append(rest)
                else:
                    groups = [list(range(len(server_cands)))]

                chosen = None
                for group in groups:
                    best = None
                    for i in group:
                        candidates_evaluated += 1
                        trial = self._try(
                            routes, name, pair, raw[i], alphas, warm
                        )
                        if trial is None:
                            continue
                        result, route_delay = trial
                        if best is None or route_delay < best[2]:
                            best = (i, result, route_delay)
                        if not self.options.min_delay_choice:
                            break
                    if best is not None:
                        chosen = best
                        break

                if chosen is None:
                    return MultiClassSelectionOutcome(
                        success=False,
                        routes=routes,
                        failed_class=name,
                        failed_pair=pair,
                        verification=last_result,
                        candidates_evaluated=candidates_evaluated,
                    )
                idx, result, _ = chosen
                routes[name][pair] = list(raw[idx])
                deps.add_route(server_cands[idx])
                warm = result.delay_matrix()
                last_result = result

        return MultiClassSelectionOutcome(
            success=True,
            routes=routes,
            failed_class=None,
            failed_pair=None,
            verification=last_result,
            candidates_evaluated=candidates_evaluated,
        )

    # ------------------------------------------------------------------ #

    def _try(
        self,
        routes: Dict[str, Dict[Pair, List[Hashable]]],
        class_name: str,
        pair: Pair,
        candidate: List[Hashable],
        alphas: Mapping[str, float],
        warm: Optional[np.ndarray],
    ) -> Optional[Tuple[MultiClassResult, float]]:
        """Joint fixed point with the candidate added; None if unsafe."""
        tentative = {
            name: [list(p) for p in pair_map.values()]
            for name, pair_map in routes.items()
        }
        tentative.setdefault(class_name, []).append(list(candidate))
        result = multi_class_delays(
            self.graph,
            tentative,
            self.registry,
            alphas,
            n_mode=self.n_mode,
            warm_start=warm,
        )
        if not result.safe:
            return None
        # End-to-end bound of the new route (last one of its class).
        route_delay = float(
            result.per_class[class_name].route_delays[-1]
        )
        return result, route_delay
