"""Exhaustive bounded checking — the z3-free backend.

Where :mod:`repro.verify.smt` *proves* the bounded safety properties
symbolically, this module checks the same properties by enumerating
every concrete instance inside a :class:`~repro.verify.instances.\
VerifyBound` and running the **real production code** on each:

* :func:`exhaustive_no_overcommit` drives the real
  :class:`~repro.admission.utilization.UtilizationAdmissionController`
  through every (capacities, routes, releases) instance, auditing
  :meth:`verify_invariants` after every single event and comparing
  verdicts against the executable model;
* :func:`exhaustive_batch_equivalence` runs the real
  :func:`~repro.admission.batch.batch_slot_decisions` kernel (or a
  deliberately broken mutant from :mod:`repro.verify.mutants`) against
  the sequential reference on every (routes, free-vector) instance.

Because the subjects are the shipped kernel and controller — not a
model of them — this backend catches *code* mutants the SMT encoding
alone cannot, and it runs in tier-1 CI with zero optional
dependencies.  At the default bound (3 flows x 2 servers) that is
~1.5k controller instances and ~400 kernel calls, well under a second.
"""

from __future__ import annotations

import itertools
import time
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import VerificationError
from ..traffic.flows import FlowSpec
from .instances import (
    INSTANCE_CLASS,
    CheckResult,
    Counterexample,
    VerifyBound,
    build_chain_controller,
    sequential_slot_decisions,
    simulate_sequential,
)

__all__ = [
    "exhaustive_batch_equivalence",
    "exhaustive_no_overcommit",
    "iter_release_patterns",
]


def iter_release_patterns(flows: int):
    """All valid release assignments for ``flows`` ordered arrivals.

    Flow ``f`` may be released immediately before any later arrival
    (points ``f + 1 .. flows - 1``) or never (``None``); releasing
    after the last arrival only lowers occupancy, so ``None`` covers
    it for safety checking.
    """
    options = [
        list(range(f + 1, flows)) + [None] for f in range(flows)
    ]
    return itertools.product(*options)


def _drive_instance(
    capacities: Sequence[int],
    routes: Sequence[Tuple[int, int]],
    releases: Sequence[Optional[int]],
) -> Tuple[List[bool], List[str]]:
    """Run one instance through the real controller.

    Returns ``(verdicts, problems)`` where ``problems`` collects every
    invariant violation observed after any event (empty for a correct
    controller).
    """
    servers = len(capacities)
    controller = build_chain_controller(servers, capacities)
    verdicts: List[bool] = []
    problems: List[str] = []
    admitted: List[Optional[str]] = []
    for i, (lo, hi) in enumerate(routes):
        for f, release in enumerate(releases[:i]):
            if release == i and admitted[f] is not None:
                controller.release(admitted[f])
                admitted[f] = None
                problems.extend(controller.verify_invariants())
        route = tuple(f"r{s}" for s in range(lo, hi + 1))
        fid = f"x{i}"
        decision = controller.admit(
            FlowSpec(
                flow_id=fid,
                class_name=INSTANCE_CLASS,
                source=route[0],
                destination=route[-1],
                route=route,
            )
        )
        verdicts.append(decision.admitted)
        admitted.append(fid if decision.admitted else None)
        problems.extend(controller.verify_invariants())
    return verdicts, problems


def exhaustive_no_overcommit(
    bound: VerifyBound, *, admit_on_full: bool = False
) -> CheckResult:
    """Check "utilization test => no slot over-commit" on every
    instance in the bound, against the real controller.

    With ``admit_on_full=True`` the *model* rule is mutated to admit
    when a server is exactly full; the check then must come back
    ``"violated"`` with a decoded counterexample — the falsifiability
    half of the certificate.
    """
    start = time.perf_counter()
    route_options = bound.interval_routes()
    count = 0
    for capacities in itertools.product(
        range(bound.max_capacity + 1), repeat=bound.servers
    ):
        for routes in itertools.product(
            route_options, repeat=bound.flows
        ):
            for releases in iter_release_patterns(bound.flows):
                count += 1
                verdicts, violations = simulate_sequential(
                    capacities, routes, releases,
                    admit_on_full=admit_on_full,
                )
                if violations:
                    strict, _ = simulate_sequential(
                        capacities, routes, releases
                    )
                    i, s, occ, cap = violations[0]
                    return CheckResult(
                        name="no_overcommit",
                        backend="exhaustive",
                        status="violated",
                        elapsed_seconds=time.perf_counter() - start,
                        instances=count,
                        counterexample=Counterexample(
                            check="no_overcommit",
                            backend="exhaustive",
                            servers=bound.servers,
                            capacities=tuple(capacities),
                            routes=tuple(routes),
                            releases=tuple(releases),
                            expected=tuple(strict),
                            actual=tuple(verdicts),
                            detail=(
                                f"after arrival {i}, server {s} holds "
                                f"{occ} slots over capacity {cap}"
                            ),
                        ),
                    )
                if admit_on_full:
                    continue  # mutant hunt: only violations matter
                real_verdicts, problems = _drive_instance(
                    capacities, routes, releases
                )
                if real_verdicts != verdicts or problems:
                    detail = (
                        problems[0]
                        if problems
                        else "controller verdicts diverge from the "
                        "sequential model"
                    )
                    return CheckResult(
                        name="no_overcommit",
                        backend="exhaustive",
                        status="violated",
                        elapsed_seconds=time.perf_counter() - start,
                        instances=count,
                        counterexample=Counterexample(
                            check="no_overcommit",
                            backend="exhaustive",
                            servers=bound.servers,
                            capacities=tuple(capacities),
                            routes=tuple(routes),
                            releases=tuple(releases),
                            expected=tuple(verdicts),
                            actual=tuple(real_verdicts),
                            detail=detail,
                        ),
                    )
    if admit_on_full:
        # The mutant admitted nothing extra anywhere in the bound —
        # the bound is too small to expose it, which is itself a
        # verification failure (the check lost its teeth).
        raise VerificationError(
            "admit-on-full mutant produced no over-commit anywhere in "
            f"the bound {bound.to_dict()} — bound too small to "
            "falsify, enlarge it"
        )
    return CheckResult(
        name="no_overcommit",
        backend="exhaustive",
        status="passed",
        elapsed_seconds=time.perf_counter() - start,
        instances=count,
    )


def exhaustive_batch_equivalence(
    bound: VerifyBound,
    kernel: Optional[Callable[..., np.ndarray]] = None,
) -> CheckResult:
    """Check batch-kernel <=> sequential-loop equivalence exhaustively.

    Every (interval-route assignment, pre-batch free vector) instance
    in the bound is decided by both the batch kernel (the real
    :func:`~repro.admission.batch.batch_slot_decisions` unless a
    mutant is passed) and the sequential reference; the first
    divergence is decoded into a replayable counterexample.  Free
    vectors range down to ``-1`` so degraded servers (capacity below
    current usage) are covered.
    """
    from ..admission.batch import (
        PADDING_FREE,
        batch_slot_decisions,
        pad_server_matrix,
    )

    kernel_fn = kernel or batch_slot_decisions
    kernel_name = getattr(
        kernel_fn, "__name__", kernel_fn.__class__.__name__
    )
    start = time.perf_counter()
    route_options = bound.interval_routes()
    pad = bound.servers
    count = 0
    free = np.empty(pad + 1, dtype=np.int64)
    free[pad] = PADDING_FREE
    for routes in itertools.product(route_options, repeat=bound.flows):
        rows = [
            np.arange(lo, hi, dtype=np.int64) for lo, hi in routes
        ]
        matrix, _lengths = pad_server_matrix(rows, pad)
        for free_vals in itertools.product(
            range(-1, bound.max_capacity + 1), repeat=bound.servers
        ):
            count += 1
            free[:pad] = free_vals
            kernel_verdicts = [bool(v) for v in kernel_fn(matrix, free)]
            sequential = sequential_slot_decisions(routes, free_vals)
            if kernel_verdicts != sequential:
                return CheckResult(
                    name="batch_equivalence",
                    backend="exhaustive",
                    status="violated",
                    elapsed_seconds=time.perf_counter() - start,
                    instances=count,
                    counterexample=Counterexample(
                        check="batch_equivalence",
                        backend="exhaustive",
                        servers=bound.servers,
                        capacities=tuple(free_vals),
                        routes=tuple(routes),
                        expected=tuple(sequential),
                        actual=tuple(kernel_verdicts),
                        detail=(
                            f"kernel {kernel_name!r} diverges from the "
                            "sequential reference"
                        ),
                    ),
                )
    if kernel is not None:
        raise VerificationError(
            f"mutant kernel {kernel_name!r} matched the sequential "
            f"reference on all {count} instances of bound "
            f"{bound.to_dict()} — bound too small to falsify, "
            "enlarge it"
        )
    return CheckResult(
        name="batch_equivalence",
        backend="exhaustive",
        status="passed",
        elapsed_seconds=time.perf_counter() - start,
        instances=count,
    )
