"""z3 bounded-model checking of the admission safety argument.

The symbolic twin of :mod:`repro.verify.bounded`: instead of
enumerating concrete instances, the two properties are encoded as
constraint systems over a :class:`~repro.verify.instances.VerifyBound`
universe — CCAC-style, one quantifier-free formula unrolled over the
bounded arrivals — and z3 is asked for a *violation*:

* :func:`smt_no_overcommit` — symbolic capacities, interval routes and
  release points; the strict utilization rule is asserted for every
  arrival and z3 searches for any reachable occupancy above capacity.
  UNSAT is a proof that the paper's test never over-commits anywhere
  in the bound.
* :func:`smt_batch_equivalence` — the batch kernel's
  optimistic/definite interval iteration is unrolled round by round
  (exactly the algorithm in :mod:`repro.admission.batch`) next to the
  sequential reference recurrence; z3 searches for an instance where
  the fixpoint differs from the sequential verdicts or fails to settle
  within ``flows`` rounds.  UNSAT proves batch <=> sequential over the
  bound.

Both encodings take a ``mutant`` switch that plants the matching bug
from :mod:`repro.verify.mutants` into the *model*; the check must then
come back SAT, and the model is decoded into a concrete
:class:`~repro.verify.instances.Counterexample` that replays through
the real code — machine-checked falsifiability.

z3 is an **optional** dependency (the ``smt`` extra); import of this
module always succeeds and :data:`HAVE_Z3` reports availability.
"""

from __future__ import annotations

import time
from typing import Any, List, Optional, Tuple

from ..errors import VerificationError
from .instances import (
    CheckResult,
    Counterexample,
    VerifyBound,
    sequential_slot_decisions,
    simulate_sequential,
)

try:  # pragma: no cover - exercised only in the verify-smt CI job
    import z3

    HAVE_Z3 = True
except ImportError:  # the tier-1 default: no z3 on the box
    z3 = None  # type: ignore[assignment]
    HAVE_Z3 = False

__all__ = [
    "HAVE_Z3",
    "Z3_PIN",
    "require_z3",
    "smt_batch_equivalence",
    "smt_no_overcommit",
]

#: z3-solver version CI pins (see the ``smt`` extra in pyproject.toml).
Z3_PIN = "4.13.0.0"

#: Model-level mutants each check understands.
_OVERCOMMIT_MUTANTS = ("admit_on_full",)
_EQUIVALENCE_MUTANTS = ("admit_on_full", "ignore_contention")


def require_z3() -> None:
    """Raise a actionable error when the optional solver is missing."""
    if not HAVE_Z3:
        raise VerificationError(
            "z3-solver is not installed; the SMT backend needs the "
            "optional extra — pip install 'repro[smt]' "
            f"(pins z3-solver=={Z3_PIN}) — or use backend='exhaustive'"
        )


def _on(lo: Any, hi: Any, s: int) -> Any:  # pragma: no cover - z3 only
    """Route [lo, hi) crosses server ``s``."""
    return z3.And(lo <= s, s < hi)


def _sum(terms: List[Any]) -> Any:  # pragma: no cover - z3 only
    return z3.Sum(terms) if terms else z3.IntVal(0)


def smt_no_overcommit(  # pragma: no cover - exercised under -m smt
    bound: VerifyBound, *, mutant: Optional[str] = None
) -> CheckResult:
    """Prove "utilization test => no slot over-commit" over the bound.

    Occupancy only decreases between arrivals (releases subtract), so
    asserting the property just after every arrival covers every edge
    interval.  ``mutant="admit_on_full"`` relaxes the admission rule to
    ``<=`` and must flip the result to SAT.
    """
    require_z3()
    if mutant is not None and mutant not in _OVERCOMMIT_MUTANTS:
        raise VerificationError(
            f"no_overcommit has no mutant {mutant!r}; "
            f"choose from {_OVERCOMMIT_MUTANTS}"
        )
    start = time.perf_counter()
    F, S = bound.flows, bound.servers
    cap = [z3.Int(f"c_{s}") for s in range(S)]
    lo = [z3.Int(f"lo_{f}") for f in range(F)]
    hi = [z3.Int(f"hi_{f}") for f in range(F)]
    rel = [z3.Int(f"rel_{f}") for f in range(F)]  # F means "never"
    adm = [z3.Bool(f"adm_{f}") for f in range(F)]
    solver = z3.Solver()
    for s in range(S):
        solver.add(cap[s] >= 0, cap[s] <= bound.max_capacity)
    for f in range(F):
        solver.add(lo[f] >= 0, lo[f] < hi[f], hi[f] <= S)
        solver.add(rel[f] > f, rel[f] <= F)

    def load(i: int, s: int) -> Any:
        """Slots held on ``s`` when arrival ``i`` is decided."""
        return _sum([
            z3.If(
                z3.And(_on(lo[j], hi[j], s), adm[j], rel[j] > i),
                z3.IntVal(1),
                z3.IntVal(0),
            )
            for j in range(i)
        ])

    loads = [[load(i, s) for s in range(S)] for i in range(F)]
    for i in range(F):
        fits = [
            z3.Implies(
                _on(lo[i], hi[i], s),
                (
                    loads[i][s] <= cap[s]
                    if mutant == "admit_on_full"
                    else loads[i][s] < cap[s]
                ),
            )
            for s in range(S)
        ]
        solver.add(adm[i] == z3.And(fits))
    occupancy_bad = []
    for i in range(F):
        for s in range(S):
            occ = loads[i][s] + z3.If(
                z3.And(adm[i], _on(lo[i], hi[i], s)),
                z3.IntVal(1),
                z3.IntVal(0),
            )
            occupancy_bad.append(occ > cap[s])
    solver.add(z3.Or(occupancy_bad))

    verdict = solver.check()
    elapsed = time.perf_counter() - start
    if verdict == z3.unsat:
        if mutant is not None:
            raise VerificationError(
                f"mutant {mutant!r} produced no over-commit anywhere "
                f"in bound {bound.to_dict()} — bound too small to "
                "falsify, enlarge it"
            )
        return CheckResult(
            name="no_overcommit",
            backend="z3",
            status="proved",
            elapsed_seconds=elapsed,
            detail=(
                "violation query UNSAT: the strict utilization test "
                "cannot over-commit any server in the bound"
            ),
        )
    if verdict != z3.sat:
        raise VerificationError(
            f"z3 returned {verdict} for no_overcommit"
        )
    model = solver.model()

    def val(term: Any) -> int:
        return model.eval(term, model_completion=True).as_long()

    capacities = tuple(val(cap[s]) for s in range(S))
    routes = tuple((val(lo[f]), val(hi[f])) for f in range(F))
    releases = tuple(
        None if val(rel[f]) >= F else val(rel[f]) for f in range(F)
    )
    actual = tuple(
        bool(model.eval(adm[f], model_completion=True)) for f in range(F)
    )
    expected, _ = simulate_sequential(capacities, routes, releases)
    return CheckResult(
        name="no_overcommit",
        backend="z3",
        status="violated",
        elapsed_seconds=elapsed,
        counterexample=Counterexample(
            check="no_overcommit",
            backend="z3",
            servers=S,
            capacities=capacities,
            routes=routes,
            releases=releases,
            expected=tuple(expected),
            actual=actual,
            detail=(
                "z3 model of the "
                + (f"{mutant} mutant" if mutant else "admission rule")
                + " over-committing a server"
            ),
        ),
    )


def smt_batch_equivalence(  # pragma: no cover - exercised under -m smt
    bound: VerifyBound, *, mutant: Optional[str] = None
) -> CheckResult:
    """Prove batch-kernel <=> sequential-loop equivalence symbolically.

    Unrolls the kernel's settle-rounds (optimistic and definite
    crossing bounds over symbolic interval routes and free-slot
    vectors, negatives included) for ``flows`` rounds, and asks z3 for
    an instance where the fixpoint disagrees with the sequential
    recurrence — or where a request is still undecided after the round
    budget the termination argument allows.
    """
    require_z3()
    if mutant is not None and mutant not in _EQUIVALENCE_MUTANTS:
        raise VerificationError(
            f"batch_equivalence has no mutant {mutant!r}; "
            f"choose from {_EQUIVALENCE_MUTANTS}"
        )
    start = time.perf_counter()
    F, S = bound.flows, bound.servers
    free = [z3.Int(f"free_{s}") for s in range(S)]
    lo = [z3.Int(f"lo_{f}") for f in range(F)]
    hi = [z3.Int(f"hi_{f}") for f in range(F)]
    seq = [z3.Bool(f"seq_{f}") for f in range(F)]
    solver = z3.Solver()
    for s in range(S):
        solver.add(free[s] >= -1, free[s] <= bound.max_capacity)
    for f in range(F):
        solver.add(lo[f] >= 0, lo[f] < hi[f], hi[f] <= S)

    # Sequential reference recurrence.
    for i in range(F):
        seq_load = [
            _sum([
                z3.If(
                    z3.And(_on(lo[j], hi[j], s), seq[j]),
                    z3.IntVal(1),
                    z3.IntVal(0),
                )
                for j in range(i)
            ])
            for s in range(S)
        ]
        solver.add(
            seq[i]
            == z3.And([
                z3.Implies(
                    _on(lo[i], hi[i], s), seq_load[s] < free[s]
                )
                for s in range(S)
            ])
        )

    if mutant == "ignore_contention":
        # The broken kernel decides everything against the pre-batch
        # free counts in one shot — no rounds to unroll.
        final_adm = [
            z3.And([
                z3.Implies(_on(lo[i], hi[i], s), free[s] > 0)
                for s in range(S)
            ])
            for i in range(F)
        ]
        final_und = [z3.BoolVal(False) for _ in range(F)]
    else:
        strict = mutant != "admit_on_full"
        adm = [z3.BoolVal(False) for _ in range(F)]
        und = [z3.BoolVal(True) for _ in range(F)]
        for _round in range(F):
            new_adm: List[Any] = []
            new_und: List[Any] = []
            for i in range(F):
                opt_bad_terms = []
                def_bad_terms = []
                for s in range(S):
                    opt_count = _sum([
                        z3.If(
                            z3.And(
                                _on(lo[j], hi[j], s),
                                z3.Or(adm[j], und[j]),
                            ),
                            z3.IntVal(1),
                            z3.IntVal(0),
                        )
                        for j in range(i)
                    ])
                    def_count = _sum([
                        z3.If(
                            z3.And(_on(lo[j], hi[j], s), adm[j]),
                            z3.IntVal(1),
                            z3.IntVal(0),
                        )
                        for j in range(i)
                    ])
                    crossing = _on(lo[i], hi[i], s)
                    if strict:
                        opt_bad_terms.append(
                            z3.And(crossing, opt_count >= free[s])
                        )
                        def_bad_terms.append(
                            z3.And(crossing, def_count >= free[s])
                        )
                    else:  # admit_on_full: > where >= belongs
                        opt_bad_terms.append(
                            z3.And(crossing, opt_count > free[s])
                        )
                        def_bad_terms.append(
                            z3.And(crossing, def_count > free[s])
                        )
                opt_bad = z3.Or(opt_bad_terms)
                def_bad = z3.Or(def_bad_terms)
                newly_admitted = z3.And(und[i], z3.Not(opt_bad))
                newly_rejected = z3.And(und[i], def_bad)
                new_adm.append(z3.Or(adm[i], newly_admitted))
                new_und.append(
                    z3.And(
                        und[i],
                        z3.Not(z3.Or(newly_admitted, newly_rejected)),
                    )
                )
            adm, und = new_adm, new_und
        final_adm, final_und = adm, und

    mismatch = [final_adm[i] != seq[i] for i in range(F)]
    unsettled = list(final_und)
    solver.add(z3.Or(mismatch + unsettled))

    verdict = solver.check()
    elapsed = time.perf_counter() - start
    if verdict == z3.unsat:
        if mutant is not None:
            raise VerificationError(
                f"mutant {mutant!r} matched the sequential reference "
                f"everywhere in bound {bound.to_dict()} — bound too "
                "small to falsify, enlarge it"
            )
        return CheckResult(
            name="batch_equivalence",
            backend="z3",
            status="proved",
            elapsed_seconds=elapsed,
            detail=(
                "violation query UNSAT: the batch iteration settles "
                "and equals the sequential loop on every instance in "
                "the bound"
            ),
        )
    if verdict != z3.sat:
        raise VerificationError(
            f"z3 returned {verdict} for batch_equivalence"
        )
    model = solver.model()

    def val(term: Any) -> int:
        return model.eval(term, model_completion=True).as_long()

    free_vals: Tuple[int, ...] = tuple(val(free[s]) for s in range(S))
    routes = tuple((val(lo[f]), val(hi[f])) for f in range(F))
    actual = tuple(
        bool(model.eval(final_adm[f], model_completion=True))
        for f in range(F)
    )
    expected = tuple(sequential_slot_decisions(routes, free_vals))
    return CheckResult(
        name="batch_equivalence",
        backend="z3",
        status="violated",
        elapsed_seconds=elapsed,
        counterexample=Counterexample(
            check="batch_equivalence",
            backend="z3",
            servers=S,
            capacities=free_vals,
            routes=routes,
            expected=expected,
            actual=actual,
            detail=(
                "z3 model splitting the "
                + (f"{mutant} mutant" if mutant else "batch iteration")
                + " from the sequential reference"
            ),
        ),
    )
