"""Bounded symbolic instances of the admission safety argument.

The paper's certificate is interval-based: a verified utilization
assignment gives every link server a per-class slot capacity, and the
run-time test admits a flow iff a slot is free on *every* server of its
route.  To machine-check that argument we shrink it to finite bounded
instances that both the exhaustive and the z3 backend share:

* a **chain topology** of ``servers`` forward link servers
  (``r0 -> r1 -> ... -> r{servers}``), so that every contiguous server
  interval ``[lo, hi)`` is realizable as an actual router path — the
  "edge interval" of the safety claim;
* ``flows`` admission requests arriving in order, request ``i`` at
  time ``i + 1``; each carries an interval route and an optional
  release point ``r`` meaning "the flow departs immediately before
  arrival ``r`` is decided" (``None`` = never during the instance);
* integer per-server slot capacities in ``[0, max_capacity]``.

Because releases only ever *decrease* occupancy, checking the
no-over-commit property at each arrival instant covers every point of
every interval — the occupancy between arrivals is dominated by the
occupancy just after one.

:func:`simulate_sequential` is the executable model (with the
``admit_on_full`` mutant switch), :func:`build_chain_controller` maps
an instance onto the *real* :class:`UtilizationAdmissionController`,
and :class:`Counterexample` carries a decoded violation — from either
backend — as a concrete, replayable
``repro-workload-trace/v1`` event stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import (
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..errors import VerificationError
from ..workload.trace import TraceEvent

__all__ = [
    "CheckResult",
    "Counterexample",
    "VerifyBound",
    "build_chain_controller",
    "chain_fixture",
    "replay_no_overcommit",
    "replay_batch_equivalence",
    "sequential_slot_decisions",
    "simulate_sequential",
]

#: Class used for every bounded-instance flow.
INSTANCE_CLASS = "voice"

#: Enumeration guard rails — exhaustive instance counts explode fast.
_MAX_FLOWS = 6
_MAX_SERVERS = 4
_MAX_CAPACITY = 4


@dataclass(frozen=True)
class VerifyBound:
    """Size of the bounded universe both backends quantify over.

    ``intervals`` (== ``flows``) is the number of event intervals the
    occupancy is checked on: each arrival opens one.
    """

    flows: int = 3
    servers: int = 2
    max_capacity: int = 2

    def __post_init__(self) -> None:
        if not 1 <= self.flows <= _MAX_FLOWS:
            raise VerificationError(
                f"flows must be in [1, {_MAX_FLOWS}], got {self.flows}"
            )
        if not 1 <= self.servers <= _MAX_SERVERS:
            raise VerificationError(
                f"servers must be in [1, {_MAX_SERVERS}], "
                f"got {self.servers}"
            )
        if not 0 <= self.max_capacity <= _MAX_CAPACITY:
            raise VerificationError(
                f"max_capacity must be in [0, {_MAX_CAPACITY}], "
                f"got {self.max_capacity}"
            )

    @property
    def intervals(self) -> int:
        """Event intervals checked (one per arrival)."""
        return self.flows

    def interval_routes(self) -> List[Tuple[int, int]]:
        """Every contiguous route ``[lo, hi)`` over the chain."""
        return [
            (lo, hi)
            for lo in range(self.servers)
            for hi in range(lo + 1, self.servers + 1)
        ]

    def to_dict(self) -> Dict[str, int]:
        return {
            "flows": self.flows,
            "servers": self.servers,
            "intervals": self.intervals,
            "max_capacity": self.max_capacity,
        }


def simulate_sequential(
    capacities: Sequence[int],
    routes: Sequence[Tuple[int, int]],
    releases: Sequence[Optional[int]],
    *,
    admit_on_full: bool = False,
) -> Tuple[List[bool], List[Tuple[int, int, int, int]]]:
    """Run the paper's admission rule over one bounded instance.

    Returns ``(verdicts, violations)``: the per-arrival admit verdicts
    and every ``(arrival, server, occupancy, capacity)`` over-commit
    observed just after an arrival was decided.  With the strict test
    (``admit_on_full=False``, the paper's rule) the violation list is
    provably empty; the mutant switch flips ``<`` to ``<=`` — the
    admit-on-full bug — so the model can demonstrate falsifiability.
    """
    n_servers = len(capacities)
    load = [0] * n_servers
    verdicts: List[bool] = []
    violations: List[Tuple[int, int, int, int]] = []
    for i, (lo, hi) in enumerate(routes):
        for f in range(len(verdicts)):
            if releases[f] == i and verdicts[f]:
                f_lo, f_hi = routes[f]
                for s in range(f_lo, f_hi):
                    load[s] -= 1
        span = range(lo, hi)
        if admit_on_full:
            ok = all(load[s] <= capacities[s] for s in span)
        else:
            ok = all(load[s] < capacities[s] for s in span)
        verdicts.append(ok)
        if ok:
            for s in span:
                load[s] += 1
        for s in range(n_servers):
            if load[s] > capacities[s]:
                violations.append((i, s, load[s], capacities[s]))
    return verdicts, violations


def sequential_slot_decisions(
    routes: Sequence[Tuple[int, int]], free: Sequence[int]
) -> List[bool]:
    """Reference sequential loop the batch kernel must match.

    ``free`` is the pre-batch free-slot vector (may be negative under
    degradation); request ``i`` is admitted iff every server of its
    interval still has a slot after the earlier admitted requests.
    """
    load = [0] * len(free)
    out: List[bool] = []
    for lo, hi in routes:
        ok = all(load[s] < free[s] for s in range(lo, hi))
        out.append(ok)
        if ok:
            for s in range(lo, hi):
                load[s] += 1
    return out


# --------------------------------------------------------------------- #
# mapping instances onto the real controller
# --------------------------------------------------------------------- #


@lru_cache(maxsize=8)
def _chain_fixture(servers: int):
    """(graph, registry, routes) for the ``servers``-link chain —
    cached because exhaustive runs build thousands of controllers."""
    from ..routing.shortest import shortest_path_routes
    from ..topology import LinkServerGraph
    from ..topology.builders import line_network
    from ..traffic import ClassRegistry, voice_class
    from ..traffic.generators import all_ordered_pairs

    network = line_network(servers + 1)
    graph = LinkServerGraph(network)
    registry = ClassRegistry.two_class(voice_class())
    routes = shortest_path_routes(network, all_ordered_pairs(network))
    return graph, registry, routes


def chain_fixture(servers: int) -> Any:
    """Public ``(graph, registry, routes)`` chain fixture, for replaying
    decoded counterexample traces outside the checker (e.g. ``loadgen
    --replay`` on a ``--cx-dir`` artifact)."""
    return _chain_fixture(servers)


def build_chain_controller(
    servers: int, capacities: Sequence[int]
):
    """The real shared-ledger controller over a chain, with the model's
    exact slot capacities pinned on the forward links.

    Reverse-direction links (unused by bounded instances) get capacity
    ``flows``-safe headroom so they can never be the binding
    constraint.
    """
    from ..admission.utilization import UtilizationAdmissionController

    if len(capacities) != servers:
        raise VerificationError(
            f"expected {servers} capacities, got {len(capacities)}"
        )
    graph, registry, routes = _chain_fixture(servers)
    controller = UtilizationAdmissionController(
        graph, registry, {INSTANCE_CLASS: 0.5}, routes
    )
    slots = np.full(graph.num_servers, _MAX_FLOWS + 1, dtype=np.int64)
    for s, cap in enumerate(capacities):
        slots[graph.server_index(f"r{s}", f"r{s + 1}")] = int(cap)
    controller.ledger.set_capacity(INSTANCE_CLASS, slots)
    return controller


def _forward_server_indices(servers: int) -> List[int]:
    graph, _registry, _routes = _chain_fixture(servers)
    return [
        graph.server_index(f"r{s}", f"r{s + 1}") for s in range(servers)
    ]


# --------------------------------------------------------------------- #
# counterexamples
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Counterexample:
    """A decoded violation of one bounded check.

    ``check`` is ``"no_overcommit"`` or ``"batch_equivalence"``;
    ``capacities`` holds per-server slot capacities (the pre-batch
    *free* vector for equivalence instances, where negative values model
    degraded servers); ``routes`` are the chain intervals ``[lo, hi)``;
    ``releases`` gives each flow's release point (empty for equivalence
    instances); ``expected`` are the correct sequential verdicts and
    ``actual`` what the checked rule/kernel decided.
    """

    check: str
    backend: str
    servers: int
    capacities: Tuple[int, ...]
    routes: Tuple[Tuple[int, int], ...]
    releases: Tuple[Optional[int], ...] = ()
    expected: Tuple[bool, ...] = ()
    actual: Tuple[bool, ...] = ()
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "check": self.check,
            "backend": self.backend,
            "servers": self.servers,
            "capacities": list(self.capacities),
            "routes": [list(r) for r in self.routes],
            "releases": list(self.releases),
            "expected": list(self.expected),
            "actual": list(self.actual),
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, obj: Dict[str, Any]) -> "Counterexample":
        try:
            return cls(
                check=str(obj["check"]),
                backend=str(obj["backend"]),
                servers=int(obj["servers"]),
                capacities=tuple(int(c) for c in obj["capacities"]),
                routes=tuple(
                    (int(lo), int(hi)) for lo, hi in obj["routes"]
                ),
                releases=tuple(
                    None if r is None else int(r)
                    for r in obj.get("releases", [])
                ),
                expected=tuple(bool(v) for v in obj.get("expected", [])),
                actual=tuple(bool(v) for v in obj.get("actual", [])),
                detail=str(obj.get("detail", "")),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise VerificationError(
                f"malformed counterexample: {exc}"
            ) from None

    def to_trace_events(self) -> List[TraceEvent]:
        """The instance as a concrete ``repro-workload-trace/v1`` stream.

        Arrival ``i`` lands at time ``i + 1`` on routers
        ``r{lo}..r{hi}``; a release point ``r < flows`` becomes a
        departure at exactly time ``r + 1`` — the replay tie break
        (departures first) then frees the slot immediately before
        arrival ``r`` is decided, matching the model's semantics.
        Flows without a release point drain after the horizon, so the
        stream is a complete, replayable workload — these traces are
        the regression seeds the adversarial engine replays.
        """
        n = len(self.routes)
        events: List[Tuple[float, int, int, TraceEvent]] = []
        seq = 0
        for i, (lo, hi) in enumerate(self.routes):
            route = tuple(f"r{s}" for s in range(lo, hi + 1))
            events.append((
                float(i + 1), 1, seq,
                TraceEvent(
                    time=float(i + 1),
                    kind="arrival",
                    flow_id=f"cx_{i}",
                    class_name=INSTANCE_CLASS,
                    source=route[0],
                    destination=route[-1],
                    route=route,
                ),
            ))
            seq += 1
            release = (
                self.releases[i] if i < len(self.releases) else None
            )
            t_dep = (
                float(release + 1)
                if release is not None and release < n
                else float(n + 2 + i)
            )
            events.append((
                t_dep, 0, seq,
                TraceEvent(
                    time=t_dep, kind="departure", flow_id=f"cx_{i}"
                ),
            ))
            seq += 1
        events.sort(key=lambda e: (e[0], e[1], e[2]))
        return [e[3] for e in events]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one bounded check run by either backend.

    ``status`` is ``"proved"`` (z3: violation query UNSAT),
    ``"passed"`` (exhaustive: every instance clean), or ``"violated"``
    (a counterexample was found — the expected outcome under a mutant).
    ``instances`` counts concrete instances an exhaustive run covered
    (``None`` for symbolic proofs).
    """

    name: str
    backend: str
    status: str
    elapsed_seconds: float
    instances: Optional[int] = None
    counterexample: Optional[Counterexample] = None
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "backend": self.backend,
            "status": self.status,
            "elapsed_seconds": self.elapsed_seconds,
            "instances": self.instances,
            "counterexample": (
                None
                if self.counterexample is None
                else self.counterexample.to_dict()
            ),
            "detail": self.detail,
        }


# --------------------------------------------------------------------- #
# counterexample replay
# --------------------------------------------------------------------- #


def replay_no_overcommit(
    cx: Counterexample, *, admit_on_full: bool = False
) -> Dict[str, Any]:
    """Replay a no-over-commit counterexample, model and real code.

    Runs the instance twice: through :func:`simulate_sequential` under
    the given rule (``admit_on_full=True`` reproduces the mutant's
    violation) and through the **real**
    :class:`UtilizationAdmissionController` on the chain topology,
    auditing :meth:`verify_invariants` after every event.  A healthy
    kernel replays the trace with zero violations even when the model
    rule over-commits — which is exactly what makes a decoded
    counterexample a usable regression seed.
    """
    if cx.check != "no_overcommit":
        raise VerificationError(
            f"expected a no_overcommit counterexample, got {cx.check!r}"
        )
    releases = tuple(cx.releases) or (None,) * len(cx.routes)
    model_verdicts, model_violations = simulate_sequential(
        cx.capacities, cx.routes, releases, admit_on_full=admit_on_full
    )
    controller = build_chain_controller(cx.servers, cx.capacities)
    forward = _forward_server_indices(cx.servers)
    controller_verdicts: List[bool] = []
    invariant_problems: List[str] = []
    overcommits: List[Tuple[int, int]] = []
    admitted: set = set()
    from ..traffic.flows import FlowSpec

    for event in cx.to_trace_events():
        if event.kind == "arrival":
            decision = controller.admit(
                FlowSpec(
                    flow_id=event.flow_id,
                    class_name=event.class_name,
                    source=event.source,
                    destination=event.destination,
                    route=event.route,
                )
            )
            controller_verdicts.append(decision.admitted)
            if decision.admitted:
                admitted.add(event.flow_id)
        elif event.flow_id in admitted:
            controller.release(event.flow_id)
            admitted.discard(event.flow_id)
        invariant_problems.extend(controller.verify_invariants())
        used = controller.ledger.used_view(INSTANCE_CLASS)
        verified = controller.ledger.verified_slots(INSTANCE_CLASS)
        for s_model, s_graph in enumerate(forward):
            if used[s_graph] > verified[s_graph]:
                overcommits.append((s_model, int(used[s_graph])))
    return {
        "model_verdicts": model_verdicts,
        "model_violations": model_violations,
        "controller_verdicts": controller_verdicts,
        "controller_overcommits": overcommits,
        "controller_invariant_problems": invariant_problems,
        "reproduced": bool(model_violations) if admit_on_full else (
            not model_violations
        ),
    }


def replay_batch_equivalence(
    cx: Counterexample, kernel=None
) -> Dict[str, Any]:
    """Replay a batch-equivalence counterexample against a kernel.

    ``kernel`` defaults to the real
    :func:`~repro.admission.batch.batch_slot_decisions`; pass a mutant
    (:mod:`repro.verify.mutants`) to confirm the decoded instance
    really splits it from the sequential reference.
    """
    from ..admission.batch import (
        PADDING_FREE,
        batch_slot_decisions,
        pad_server_matrix,
    )

    if cx.check != "batch_equivalence":
        raise VerificationError(
            f"expected a batch_equivalence counterexample, "
            f"got {cx.check!r}"
        )
    kernel = kernel or batch_slot_decisions
    pad = cx.servers
    rows = [
        np.arange(lo, hi, dtype=np.int64) for lo, hi in cx.routes
    ]
    matrix, _lengths = pad_server_matrix(rows, pad)
    free = np.empty(pad + 1, dtype=np.int64)
    free[:pad] = np.asarray(cx.capacities, dtype=np.int64)
    free[pad] = PADDING_FREE
    kernel_verdicts = [bool(v) for v in kernel(matrix, free)]
    sequential = sequential_slot_decisions(cx.routes, cx.capacities)
    return {
        "sequential_verdicts": sequential,
        "kernel_verdicts": kernel_verdicts,
        "diverged": kernel_verdicts != sequential,
    }
