"""One-call verification runs shared by the CLI and CI.

:func:`run_verify` dispatches the requested checks to a backend —
``"exhaustive"`` (pure Python, always available, runs the *real*
kernel and controller), ``"z3"`` (symbolic proof, optional
dependency), or ``"auto"`` (z3 when installed, exhaustive otherwise) —
and returns the results plus an assembled, already-validated
``repro-verify-report/v1`` document.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import VerificationError
from .bounded import (
    exhaustive_batch_equivalence,
    exhaustive_no_overcommit,
)
from .instances import CheckResult, VerifyBound
from .mutants import MUTANTS
from .report import build_verify_report, validate_verify_report
from .smt import HAVE_Z3, smt_batch_equivalence, smt_no_overcommit

__all__ = ["ALL_CHECKS", "run_verify"]

ALL_CHECKS = ("no_overcommit", "batch_equivalence")


def _resolve_backend(backend: str) -> str:
    if backend == "auto":
        return "z3" if HAVE_Z3 else "exhaustive"
    if backend not in ("exhaustive", "z3"):
        raise VerificationError(
            f"unknown backend {backend!r}; "
            "choose exhaustive, z3 or auto"
        )
    return backend


def run_verify(
    bound: VerifyBound,
    *,
    backend: str = "auto",
    checks: Sequence[str] = ALL_CHECKS,
    mutant: Optional[str] = None,
) -> Tuple[Dict[str, Any], List[CheckResult]]:
    """Run the bounded checks; returns ``(report, results)``.

    With ``mutant`` set, each check runs against the matching broken
    variant and must come back ``"violated"`` with a decoded
    counterexample (checks that have no variant of that mutant are
    skipped).  The returned report has already passed
    :func:`~repro.verify.report.validate_verify_report`.
    """
    resolved = _resolve_backend(backend)
    unknown = [c for c in checks if c not in ALL_CHECKS]
    if unknown:
        raise VerificationError(
            f"unknown checks {unknown!r}; choose from {ALL_CHECKS}"
        )
    if not checks:
        raise VerificationError("no checks requested")
    if mutant is not None and mutant not in MUTANTS:
        raise VerificationError(
            f"unknown mutant {mutant!r}; "
            f"choose from {tuple(MUTANTS)}"
        )
    start = time.perf_counter()
    results: List[CheckResult] = []
    for check in checks:
        if check == "no_overcommit":
            # Only the admission-rule mutant makes sense here;
            # ignore_contention is a batching bug.
            if mutant is not None and mutant != "admit_on_full":
                continue
            if resolved == "z3":
                results.append(
                    smt_no_overcommit(bound, mutant=mutant)
                )
            else:
                results.append(
                    exhaustive_no_overcommit(
                        bound, admit_on_full=mutant == "admit_on_full"
                    )
                )
        else:
            if resolved == "z3":
                results.append(
                    smt_batch_equivalence(bound, mutant=mutant)
                )
            else:
                results.append(
                    exhaustive_batch_equivalence(
                        bound,
                        kernel=(
                            None if mutant is None else MUTANTS[mutant]
                        ),
                    )
                )
    if not results:
        raise VerificationError(
            f"mutant {mutant!r} applies to none of the requested "
            f"checks {tuple(checks)}"
        )
    report = build_verify_report(
        bound,
        results,
        backend=resolved,
        mutant=mutant,
        elapsed_seconds=time.perf_counter() - start,
    )
    validate_verify_report(report)
    return report, results
