"""``repro-verify-report/v1`` — the verification run artifact.

CI consumes verification runs the same way it consumes benchmarks: a
schema-tagged JSON document that a later ``--validate`` step can audit
without re-running anything.  :func:`build_verify_report` assembles
the document and :func:`validate_verify_report` rejects malformed or
internally inconsistent reports (wrong schema, unknown statuses, a
"violated" check with no decodable counterexample, an ``ok`` flag that
contradicts the checks...).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Sequence

from .. import __version__
from ..errors import VerificationError
from .instances import CheckResult, Counterexample, VerifyBound

__all__ = [
    "VERIFY_REPORT_SCHEMA",
    "build_verify_report",
    "load_verify_report",
    "validate_verify_report",
    "write_verify_report",
]

VERIFY_REPORT_SCHEMA = "repro-verify-report/v1"

_CHECK_NAMES = ("no_overcommit", "batch_equivalence")
_BACKENDS = ("exhaustive", "z3")
_STATUSES = ("proved", "passed", "violated")


def build_verify_report(
    bound: VerifyBound,
    results: Sequence[CheckResult],
    *,
    backend: str,
    mutant: Optional[str] = None,
    elapsed_seconds: float = 0.0,
) -> Dict[str, Any]:
    """Assemble a schema-tagged report for one verification run.

    ``ok`` means the run did what it set out to do: without a mutant,
    every check proved/passed; with one, every check found (and
    decoded) a counterexample — a mutant surviving verification is a
    failure of the verifier.
    """
    if not results:
        raise VerificationError("a verify report needs at least one check")
    checks = [r.to_dict() for r in results]
    if mutant is None:
        ok = all(r.status in ("proved", "passed") for r in results)
    else:
        ok = all(
            r.status == "violated" and r.counterexample is not None
            for r in results
        )
    return {
        "schema": VERIFY_REPORT_SCHEMA,
        "version": __version__,
        "backend": backend,
        "mutant": mutant,
        "bound": bound.to_dict(),
        "checks": checks,
        "ok": ok,
        "elapsed_seconds": float(elapsed_seconds),
    }


def validate_verify_report(report: Dict[str, Any]) -> None:
    """Audit a report document; raises :class:`VerificationError`.

    The bench-smoke ``--validate`` contract: structural checks plus
    internal consistency, so a truncated or hand-edited report can
    never pass CI.
    """
    if not isinstance(report, dict):
        raise VerificationError("verify report must be a JSON object")
    if report.get("schema") != VERIFY_REPORT_SCHEMA:
        raise VerificationError(
            f"unsupported verify-report schema "
            f"{report.get('schema')!r} (expected "
            f"{VERIFY_REPORT_SCHEMA!r})"
        )
    if report.get("backend") not in _BACKENDS:
        raise VerificationError(
            f"unknown backend {report.get('backend')!r}"
        )
    bound = report.get("bound")
    if not isinstance(bound, dict):
        raise VerificationError("report is missing the bound object")
    # Re-constructing the bound re-runs its range validation.
    VerifyBound(
        flows=int(bound.get("flows", 0)),
        servers=int(bound.get("servers", 0)),
        max_capacity=int(bound.get("max_capacity", -1)),
    )
    checks = report.get("checks")
    if not isinstance(checks, list) or not checks:
        raise VerificationError("report carries no checks")
    mutant = report.get("mutant")
    for check in checks:
        if not isinstance(check, dict):
            raise VerificationError("each check must be an object")
        if check.get("name") not in _CHECK_NAMES:
            raise VerificationError(
                f"unknown check name {check.get('name')!r}"
            )
        if check.get("backend") not in _BACKENDS:
            raise VerificationError(
                f"unknown check backend {check.get('backend')!r}"
            )
        status = check.get("status")
        if status not in _STATUSES:
            raise VerificationError(
                f"unknown check status {status!r}"
            )
        elapsed = check.get("elapsed_seconds")
        if not isinstance(elapsed, (int, float)) or elapsed < 0:
            raise VerificationError(
                "check elapsed_seconds must be a non-negative number"
            )
        cx = check.get("counterexample")
        if status == "violated":
            if cx is None:
                raise VerificationError(
                    f"violated check {check['name']!r} carries no "
                    "counterexample"
                )
            Counterexample.from_dict(cx)  # raises when undecodable
        elif cx is not None:
            raise VerificationError(
                f"non-violated check {check['name']!r} carries a "
                "counterexample"
            )
    ok = report.get("ok")
    if not isinstance(ok, bool):
        raise VerificationError("report ok flag must be a boolean")
    if mutant is None:
        expected_ok = all(
            c["status"] in ("proved", "passed") for c in checks
        )
    else:
        expected_ok = all(c["status"] == "violated" for c in checks)
    if ok != expected_ok:
        raise VerificationError(
            f"report ok flag is {ok} but the checks imply "
            f"{expected_ok}"
        )
    elapsed = report.get("elapsed_seconds")
    if not isinstance(elapsed, (int, float)) or elapsed < 0:
        raise VerificationError(
            "report elapsed_seconds must be a non-negative number"
        )


def write_verify_report(path: str, report: Dict[str, Any]) -> None:
    """Write a report as canonical (sorted-key) JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


def load_verify_report(path: str) -> Dict[str, Any]:
    """Load a report document (no validation — pair with
    :func:`validate_verify_report`)."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            return json.load(fh)
        except json.JSONDecodeError as exc:
            raise VerificationError(
                f"malformed verify report {path}: {exc}"
            ) from None
