"""Deliberately broken admission kernels, for falsifiability.

A verifier that can only say "yes" is worthless: CI must also prove
the machinery *would* catch a real bug.  Each mutant here is a drop-in
replacement for :func:`~repro.admission.batch.batch_slot_decisions`
with one classic defect planted; the bounded checkers must decode a
replayable counterexample against every one of them, at the default
bound, or the verification job fails.

The mutants mirror the real kernel's calling convention — a padded
server-index matrix plus a free-slot vector whose last entry is the
virtual padding slot — but are written as plain loops so the planted
bug is the *only* difference from the sequential reference.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

__all__ = ["MUTANTS", "mutant_admit_on_full", "mutant_ignore_contention"]


def mutant_admit_on_full(
    matrix: np.ndarray, free: np.ndarray
) -> np.ndarray:
    """Admits when a server is exactly full (``<=`` where ``<`` belongs).

    The slot test must be strict — ``used < capacity`` — or one extra
    flow slips onto a saturated server and the deadline certificate is
    void.  This is the admission-control analogue of an off-by-one
    boundary bug.
    """
    n_requests = matrix.shape[0]
    admitted = np.zeros(n_requests, dtype=bool)
    crossings = np.zeros(free.size, dtype=np.int64)
    for i in range(n_requests):
        row = matrix[i]
        if np.all(crossings[row] <= free[row]):  # planted: <= not <
            admitted[i] = True
            np.add.at(crossings, row, 1)
    return admitted


def mutant_ignore_contention(
    matrix: np.ndarray, free: np.ndarray
) -> np.ndarray:
    """Decides every request against the pre-batch free counts.

    Forgets that earlier requests in the same batch already claimed
    slots — the bug batching introduces when intra-batch contention is
    not threaded through, and exactly what the kernel's prefix-sum
    crossing counts exist to prevent.
    """
    return np.asarray((free[matrix] > 0).all(axis=1))


#: CLI / CI registry: mutant name -> broken kernel.
MUTANTS: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "admit_on_full": mutant_admit_on_full,
    "ignore_contention": mutant_ignore_contention,
}
