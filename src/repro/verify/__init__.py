"""Machine-checked verification of the admission safety argument.

Two complementary backends over one bounded universe
(:class:`VerifyBound` — symbolic capacities, contiguous interval
routes on a chain, ordered arrivals with release points):

* :mod:`repro.verify.bounded` — exhaustive enumeration driving the
  **real** controller and batch kernel (tier-1, no dependencies);
* :mod:`repro.verify.smt` — z3 symbolic proof in the CCAC
  constraint-encoding style (optional ``smt`` extra, CI ``verify-smt``
  job).

Both decode violations into :class:`Counterexample` objects whose
:meth:`~Counterexample.to_trace_events` form is a concrete
``repro-workload-trace/v1`` stream — replayable through the loadgen,
the service, and the adversarial regression suite.  Deliberately
broken kernels (:mod:`repro.verify.mutants`) keep the verifier honest:
every mutant must be caught and decoded, or the run fails.

``repro-ubac verify --bound N`` is the CLI front end; runs emit
schema-validated ``repro-verify-report/v1`` documents
(:mod:`repro.verify.report`).
"""

from .bounded import (
    exhaustive_batch_equivalence,
    exhaustive_no_overcommit,
    iter_release_patterns,
)
from .instances import (
    INSTANCE_CLASS,
    CheckResult,
    Counterexample,
    VerifyBound,
    build_chain_controller,
    replay_batch_equivalence,
    replay_no_overcommit,
    sequential_slot_decisions,
    simulate_sequential,
)
from .mutants import MUTANTS, mutant_admit_on_full, mutant_ignore_contention
from .report import (
    VERIFY_REPORT_SCHEMA,
    build_verify_report,
    load_verify_report,
    validate_verify_report,
    write_verify_report,
)
from .runner import ALL_CHECKS, run_verify
from .smt import (
    HAVE_Z3,
    Z3_PIN,
    require_z3,
    smt_batch_equivalence,
    smt_no_overcommit,
)

__all__ = [
    "ALL_CHECKS",
    "CheckResult",
    "Counterexample",
    "HAVE_Z3",
    "INSTANCE_CLASS",
    "MUTANTS",
    "VERIFY_REPORT_SCHEMA",
    "VerifyBound",
    "Z3_PIN",
    "build_chain_controller",
    "build_verify_report",
    "exhaustive_batch_equivalence",
    "exhaustive_no_overcommit",
    "iter_release_patterns",
    "load_verify_report",
    "mutant_admit_on_full",
    "mutant_ignore_contention",
    "replay_batch_equivalence",
    "replay_no_overcommit",
    "require_z3",
    "run_verify",
    "sequential_slot_decisions",
    "simulate_sequential",
    "smt_batch_equivalence",
    "smt_no_overcommit",
    "validate_verify_report",
    "write_verify_report",
]
