"""Plain-text table rendering for experiment outputs."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_percent", "format_metrics_snapshot"]


def format_percent(value: float, digits: int = 0) -> str:
    """Render a fraction as a percentage string, e.g. 0.45 -> '45%'."""
    return f"{value * 100:.{digits}f}%"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str = "",
) -> str:
    """Monospace table with a header rule, in the style of the paper."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    cols = len(headers)
    for i, row in enumerate(str_rows):
        if len(row) != cols:
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {cols}"
            )
    widths = [
        max(len(headers[j]), *(len(r[j]) for r in str_rows))
        if str_rows
        else len(headers[j])
        for j in range(cols)
    ]

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    rule = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(rule)
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def format_metrics_snapshot(registry=None) -> str:
    """Render the active :mod:`repro.obs` registry as a monospace table.

    Counters and gauges show their value; histograms show count, mean and
    max-bucket occupancy.  Returns an explanatory one-liner when
    observability is disabled (empty registry), so callers can print the
    result unconditionally.
    """
    from .. import obs
    from ..obs.metrics import Histogram

    if registry is None:
        registry = obs.get_registry()
    series = registry.series()
    if not series:
        return "(no metrics collected; enable with repro.obs.enable())"
    rows: List[List[str]] = []
    for s in series:
        labels = ",".join(f"{k}={v}" for k, v in s.labels)
        if isinstance(s, Histogram):
            value = (
                f"count={s.count} sum={s.sum:.6g} mean={s.mean:.6g}"
                if s.count
                else "count=0"
            )
        else:
            value = f"{s.value:.6g}"
        rows.append([s.name, labels, s.kind, value])
    return format_table(
        ["metric", "labels", "kind", "value"],
        rows,
        title="Metrics snapshot",
    )
