"""Table 1 reproduction: maximum utilization by method.

The paper's single evaluation table compares, on the MCI backbone with the
VoIP class,

=============  =====================================================
Lower Bound    Theorem 4 left inequality            (paper: 0.30)
SP             binary search over shortest-path routes   (0.33)
Our Heuristic  binary search over Section 5.2 selection  (0.45)
Upper Bound    Theorem 4 right inequality           (paper: 0.61)
=============  =====================================================

:func:`run_table1` regenerates all four columns;
:func:`Table1Result.render` prints them in the paper's layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..config.bounds import UtilizationBounds, utilization_bounds
from ..config.maximize import (
    DEFAULT_RESOLUTION,
    MaximizationResult,
    max_utilization_heuristic,
    max_utilization_shortest_path,
)
from ..routing.heuristic import HeuristicOptions
from .reporting import format_percent, format_table
from .scenarios import PaperScenario, paper_scenario

__all__ = ["Table1Result", "run_table1", "PAPER_TABLE1"]

#: The values the paper reports (Table 1), for comparison in reports.
PAPER_TABLE1: Dict[str, float] = {
    "lower_bound": 0.30,
    "shortest_path": 0.33,
    "heuristic": 0.45,
    "upper_bound": 0.61,
}


@dataclass
class Table1Result:
    """All four columns of Table 1 plus the runs that produced them."""

    bounds: UtilizationBounds
    shortest_path: MaximizationResult
    heuristic: MaximizationResult
    scenario: PaperScenario

    @property
    def values(self) -> Dict[str, float]:
        return {
            "lower_bound": self.bounds.lower,
            "shortest_path": self.shortest_path.alpha,
            "heuristic": self.heuristic.alpha,
            "upper_bound": self.bounds.upper,
        }

    @property
    def ordering_holds(self) -> bool:
        """The qualitative claim: LB <= SP < heuristic <= UB."""
        v = self.values
        return (
            v["lower_bound"] <= v["shortest_path"] + 1e-9
            and v["shortest_path"] < v["heuristic"]
            and v["heuristic"] <= v["upper_bound"] + 1e-9
        )

    @property
    def improvement(self) -> float:
        """Heuristic over shortest-path ratio (paper: ~1.36x)."""
        return self.heuristic.alpha / self.shortest_path.alpha

    def render(self) -> str:
        v = self.values
        measured = [
            format_percent(v["lower_bound"], 1),
            format_percent(v["shortest_path"], 1),
            format_percent(v["heuristic"], 1),
            format_percent(v["upper_bound"], 1),
        ]
        paper = [
            format_percent(PAPER_TABLE1["lower_bound"]),
            format_percent(PAPER_TABLE1["shortest_path"]),
            format_percent(PAPER_TABLE1["heuristic"]),
            format_percent(PAPER_TABLE1["upper_bound"]),
        ]
        return format_table(
            ["", "Lower Bound", "SP", "Our Heuristics", "Upper Bound"],
            [["measured"] + measured, ["paper"] + paper],
            title="Table 1: Maximum Utilization",
        )


def run_table1(
    *,
    resolution: float = DEFAULT_RESOLUTION,
    options: HeuristicOptions = HeuristicOptions(),
    scenario: Optional[PaperScenario] = None,
) -> Table1Result:
    """Regenerate Table 1 end to end (topology, bounds, both searches)."""
    sc = scenario if scenario is not None else paper_scenario()
    bounds = utilization_bounds(
        fan_in=sc.fan_in,
        diameter=sc.diameter,
        burst=sc.voice.burst,
        rate=sc.voice.rate,
        deadline=sc.voice.deadline,
    )
    sp = max_utilization_shortest_path(
        sc.network, sc.pairs, sc.voice, resolution=resolution
    )
    heur = max_utilization_heuristic(
        sc.network, sc.pairs, sc.voice, options=options, resolution=resolution
    )
    return Table1Result(
        bounds=bounds, shortest_path=sp, heuristic=heur, scenario=sc
    )
