"""Command-line interface: ``repro-ubac <command>``.

Commands
--------
* ``bounds`` — print the Theorem 4 interval for given parameters.
* ``table1`` — regenerate the paper's Table 1 (may take ~10 s).
* ``verify`` — verify a utilization level on the MCI scenario with
  shortest-path routes.
* ``sweep`` — print a deadline or burst sensitivity sweep.
* ``serve`` — run the admission service on a TCP port or Unix socket.
* ``client`` — one-shot RPC against a running admission service.

Every command accepts ``--metrics-out FILE`` (Prometheus text; use a
``.jsonl`` suffix for JSON lines) and ``--trace-out FILE`` (Chrome-trace
JSON): either switch enables :mod:`repro.obs` for the run and writes the
collected data on exit.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .. import obs
from .._version import __version__
from ..config.bounds import utilization_bounds
from ..config.procedures import verify_safe_assignment
from ..routing.shortest import shortest_path_routes
from .reporting import format_metrics_snapshot, format_table
from .scenarios import paper_scenario
from .sweeps import sweep_burst, sweep_deadline
from .table1 import run_table1

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ubac",
        description=(
            "Utilization-based admission control for real-time networks "
            "(reproduction of Xuan et al., ICPP 2000)"
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    # Observability switches shared by every subcommand (they must sit on
    # the subparsers for "repro-ubac table1 --metrics-out m.prom" to parse).
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help=(
            "enable observability and write a metrics snapshot here "
            "(Prometheus text, or JSON lines with a .jsonl suffix)"
        ),
    )
    common.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="enable observability and write a Chrome-trace JSON here",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    b = sub.add_parser(
        "bounds", help="Theorem 4 utilization bounds", parents=[common]
    )
    b.add_argument("--fan-in", type=int, default=6, help="router fan-in N")
    b.add_argument("--diameter", type=int, default=4, help="hop diameter L")
    b.add_argument("--burst", type=float, default=640.0, help="T in bits")
    b.add_argument("--rate", type=float, default=32_000.0, help="rho in b/s")
    b.add_argument(
        "--deadline", type=float, default=0.1, help="D in seconds"
    )

    t = sub.add_parser(
        "table1", help="regenerate Table 1 (slow)", parents=[common]
    )
    t.add_argument(
        "--resolution",
        type=float,
        default=0.005,
        help="binary-search resolution on alpha",
    )

    v = sub.add_parser(
        "verify",
        help="verify alpha on MCI with shortest-path routes",
        parents=[common],
    )
    v.add_argument("alpha", type=float, help="utilization to verify")

    s = sub.add_parser(
        "sweep", help="bound sensitivity sweep", parents=[common]
    )
    s.add_argument(
        "parameter", choices=["deadline", "burst"], help="swept parameter"
    )
    s.add_argument(
        "--searches", action="store_true",
        help="also run the SP / heuristic searches per point",
    )
    s.add_argument(
        "--workers", type=int, default=None,
        help="evaluate sweep points in N parallel processes",
    )

    sim = sub.add_parser(
        "simulate",
        help="adversarial packet validation of an alpha on the MCI scenario",
        parents=[common],
    )
    sim.add_argument("alpha", type=float, help="utilization to validate")
    sim.add_argument(
        "--horizon", type=float, default=0.5, help="simulated seconds"
    )
    sim.add_argument(
        "--flows-per-route", type=int, default=1,
        help="greedy sources per configured route",
    )

    f = sub.add_parser(
        "faults",
        help=(
            "chaos run: replay a fault schedule against a live "
            "admission co-simulation on the MCI scenario"
        ),
        parents=[common],
    )
    f.add_argument(
        "--alpha", type=float, default=0.35,
        help="verified utilization for the configuration",
    )
    f.add_argument(
        "--controller", choices=["utilization", "sharded"],
        default="utilization", help="admission controller under test",
    )
    f.add_argument(
        "--horizon", type=float, default=2.0, help="simulated seconds"
    )
    f.add_argument("--seed", type=int, default=7, help="scenario seed")
    f.add_argument(
        "--arrival-rate", type=float, default=30.0,
        help="flow arrivals per second",
    )
    f.add_argument(
        "--mean-holding", type=float, default=1.0,
        help="mean flow holding time in seconds",
    )
    f.add_argument(
        "--schedule", default=None, metavar="FILE",
        help=(
            "fault-schedule JSON to replay; default fails the "
            "most-loaded configured link mid-run and restores it later"
        ),
    )
    f.add_argument(
        "--random-links", type=int, default=None, metavar="N",
        help="instead, generate a seeded random schedule of N link failures",
    )
    f.add_argument(
        "--alpha-factor", type=float, default=0.5,
        help="effective-alpha scale while in degraded mode",
    )
    f.add_argument(
        "--repair-latency", type=float, default=0.02,
        help="simulated seconds between a fault and its repair landing",
    )
    f.add_argument(
        "--report-out", default=None, metavar="FILE",
        help="write the deterministic transition report (JSON) here",
    )
    f.add_argument(
        "--no-packets", action="store_true",
        help="skip the packet replay phase (flow-level accounting only)",
    )

    lg = sub.add_parser(
        "loadgen",
        help=(
            "drive an admission controller with a deterministic "
            "open-loop workload (optionally record/replay a trace)"
        ),
        parents=[common],
    )
    lg.add_argument(
        "--topology", choices=["mci", "nsfnet"], default="nsfnet",
        help="backbone to load",
    )
    lg.add_argument(
        "--controller",
        choices=["utilization", "sharded", "flowaware"],
        default="utilization", help="admission controller under load",
    )
    lg.add_argument(
        "--alpha", type=float, default=0.3,
        help="per-class utilization assignment",
    )
    lg.add_argument(
        "--flows", type=int, default=100_000,
        help="number of flow arrivals to generate",
    )
    lg.add_argument(
        "--batch-size", type=int, default=1024,
        help="admissions per admit_batch call",
    )
    lg.add_argument(
        "--sequential", action="store_true",
        help="replay one admit/release call per event instead",
    )
    lg.add_argument(
        "--arrival-rate", type=float, default=1000.0,
        help="flow arrivals per (modeled) second",
    )
    lg.add_argument(
        "--mean-holding", type=float, default=10.0,
        help="mean flow holding time in (modeled) seconds",
    )
    lg.add_argument(
        "--zipf-skew", type=float, default=1.0,
        help="pair-popularity Zipf exponent (0 = uniform)",
    )
    lg.add_argument("--seed", type=int, default=7, help="workload seed")
    lg.add_argument(
        "--workers", type=int, default=None,
        help="generate workload chunks with N threads (same output)",
    )
    lg.add_argument(
        "--record", default=None, metavar="FILE",
        help="write the generated event stream as a JSON-lines trace",
    )
    lg.add_argument(
        "--replay", default=None, metavar="FILE",
        help="replay a previously recorded trace instead of generating",
    )
    lg.add_argument(
        "--target", default=None, metavar="HOST:PORT",
        help=(
            "drive a running admission service over TCP instead of an "
            "in-process controller"
        ),
    )
    lg.add_argument(
        "--socket", default=None, metavar="PATH",
        help="drive a running admission service over this Unix socket",
    )

    srv = sub.add_parser(
        "serve",
        help=(
            "run the admission service (micro-batch coalescing, "
            "backpressure, crash-safe snapshots)"
        ),
        parents=[common],
    )
    srv.add_argument(
        "--socket", default=None, metavar="PATH",
        help="listen on this Unix socket",
    )
    srv.add_argument(
        "--host", default="127.0.0.1", help="TCP bind address"
    )
    srv.add_argument(
        "--port", type=int, default=None,
        help="TCP port (0 picks a free one; ignored with --socket)",
    )
    srv.add_argument(
        "--topology", choices=["mci", "nsfnet"], default="nsfnet",
        help="backbone to serve admission for",
    )
    srv.add_argument(
        "--controller", choices=["utilization", "sharded"],
        default="utilization", help="admission controller to front",
    )
    srv.add_argument(
        "--alpha", type=float, default=0.3,
        help="per-class utilization assignment",
    )
    srv.add_argument(
        "--max-batch", type=int, default=1024,
        help="requests coalesced into one batch kernel call",
    )
    srv.add_argument(
        "--max-delay-ms", type=float, default=2.0,
        help="coalescing window in milliseconds",
    )
    srv.add_argument(
        "--high-water", type=int, default=8192,
        help="queue depth that starts load shedding",
    )
    srv.add_argument(
        "--low-water", type=int, default=4096,
        help="queue depth at which shedding stops (hysteresis)",
    )
    srv.add_argument(
        "--snapshot", default=None, metavar="FILE",
        help=(
            "crash-safe snapshot path; restored on startup, written on "
            "drain and every --snapshot-interval seconds"
        ),
    )
    srv.add_argument(
        "--snapshot-interval", type=float, default=None, metavar="SEC",
        help="periodic snapshot period in seconds (needs --snapshot)",
    )
    srv.add_argument(
        # Test/CI hook: drain automatically after a fixed wall-clock
        # budget instead of waiting for a signal.
        "--serve-seconds", type=float, default=None,
        help=argparse.SUPPRESS,
    )

    cl = sub.add_parser(
        "client",
        help="one-shot RPC against a running admission service",
        parents=[common],
    )
    cl.add_argument(
        "op",
        choices=["health", "stats", "snapshot", "query", "admit", "release"],
        help="operation to perform",
    )
    cl.add_argument(
        "--target", default=None, metavar="HOST:PORT",
        help="TCP address of the service",
    )
    cl.add_argument(
        "--socket", default=None, metavar="PATH",
        help="Unix socket of the service",
    )
    cl.add_argument(
        "--flow-id", default=None,
        help="flow id (admit, release, query)",
    )
    cl.add_argument("--cls", default="voice", help="flow class (admit)")
    cl.add_argument("--src", default=None, help="source router (admit)")
    cl.add_argument("--dst", default=None, help="destination router (admit)")

    r = sub.add_parser(
        "report",
        help="regenerate the reproduction report (Table 1 + sweeps)",
        parents=[common],
    )
    r.add_argument(
        "--output", default="reproduction-report.md",
        help="Markdown report path",
    )
    r.add_argument(
        "--records", default=None,
        help="optional JSON records path",
    )
    r.add_argument(
        "--resolution", type=float, default=0.01,
        help="binary-search resolution for the Table 1 columns",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    metrics_out = getattr(args, "metrics_out", None)
    trace_out = getattr(args, "trace_out", None)
    capture = metrics_out is not None or trace_out is not None
    for path in (metrics_out, trace_out):
        # Fail fast: the snapshot is written *after* the (possibly long)
        # command, so reject an unwritable destination up front.
        if path is not None:
            parent = os.path.dirname(path) or "."
            if not os.path.isdir(parent):
                parser.error(f"cannot write to {path!r}: "
                             f"directory {parent!r} does not exist")
    if capture:
        obs.enable(fresh=True)
    try:
        return _dispatch(args)
    finally:
        if capture:
            if metrics_out:
                fmt = (
                    "jsonl" if metrics_out.endswith(".jsonl")
                    else "prometheus"
                )
                obs.write_metrics(metrics_out, fmt=fmt)
                print(f"wrote metrics snapshot to {metrics_out}")
            if trace_out:
                obs.write_trace(trace_out)
                print(f"wrote Chrome trace to {trace_out}")
            obs.disable()


def _measure_admission(result) -> None:
    """Replay a burst of admissions against the Table-1 heuristic routes.

    Exercises the run-time side of the paper's comparison so a
    ``table1 --metrics-out`` run captures admission-decision series
    (latency histogram, admit/reject counters) alongside the
    configuration-time fixed-point series.
    """
    from ..admission.utilization import UtilizationAdmissionController
    from ..traffic.flows import FlowSpec

    sc = result.scenario
    routes = result.heuristic.routes
    if not routes:
        return
    controller = UtilizationAdmissionController(
        sc.graph,
        sc.registry,
        {sc.voice.name: result.heuristic.alpha},
        routes,
    )
    pairs = list(routes)
    admitted = 0
    rejected = 0
    for i in range(200):
        src, dst = pairs[i % len(pairs)]
        decision = controller.admit(
            FlowSpec(f"table1-probe-{i}", sc.voice.name, src, dst)
        )
        if decision.admitted:
            admitted += 1
        else:
            rejected += 1
    print(
        f"admission replay at alpha={result.heuristic.alpha:.3f}: "
        f"{admitted} admitted, {rejected} rejected, "
        f"mean decision {controller.mean_decision_seconds() * 1e6:.1f} us"
    )


#: Demand pairs for the chaos scenario: a small coast-to-coast subset of
#: the MCI pair set that keeps configuration fast while still crossing
#: the backbone's most-loaded links.
_FAULTS_PAIRS = [
    ("Seattle", "Miami"),
    ("Boston", "Phoenix"),
    ("Chicago", "Dallas"),
    ("NewYork", "LosAngeles"),
    ("Denver", "WashingtonDC"),
]


def _run_faults(args: argparse.Namespace) -> int:
    from ..config.configured import configure
    from ..errors import ConfigurationError, FaultInjectionError
    from ..faults import (
        BackoffPolicy,
        ChaosHarness,
        DegradedModePolicy,
        FaultSchedule,
        configured_flow_schedule,
        default_link_failure_scenario,
        random_fault_schedule,
    )

    sc = paper_scenario()
    try:
        cfg = configure(
            sc.network,
            sc.registry,
            {sc.voice.name: args.alpha},
            pairs=_FAULTS_PAIRS,
            routing="shortest-path",
        )
    except ConfigurationError as exc:
        print(f"FAILURE: alpha={args.alpha} does not verify: {exc}")
        return 1

    try:
        if args.schedule is not None:
            faults = FaultSchedule.load(args.schedule, network=sc.network)
        elif args.random_links is not None:
            faults = random_fault_schedule(
                sc.network,
                seed=args.seed,
                horizon=args.horizon,
                link_failures=args.random_links,
            )
        else:
            faults = default_link_failure_scenario(
                cfg,
                horizon=args.horizon,
                down_at=0.3 * args.horizon,
                up_at=0.7 * args.horizon,
            )
        flows = configured_flow_schedule(
            cfg,
            sc.voice.name,
            arrival_rate=args.arrival_rate,
            mean_holding=args.mean_holding,
            horizon=args.horizon,
            seed=args.seed,
        )
        harness = ChaosHarness(
            cfg,
            controller=args.controller,
            policy=DegradedModePolicy(
                alpha_factor=args.alpha_factor,
                backoff=BackoffPolicy(),
                repair_latency=args.repair_latency,
            ),
        )
        report = harness.run(
            flows,
            faults,
            horizon=args.horizon,
            seed=args.seed,
            simulate_packets=not args.no_packets,
        )
    except FaultInjectionError as exc:
        print(f"FAILURE: {exc}")
        return 1
    print(report.render())
    if args.report_out:
        report.save(args.report_out)
        print(f"wrote transition report to {args.report_out}")
    held = report.survivors_held()
    print(
        "survivor guarantees held"
        if held
        else "SURVIVOR GUARANTEE VIOLATION"
    )
    return 0 if held else 1


def _admission_setup(topology: str):
    """(graph, registry, voice, pairs, routes) for a served topology."""
    from ..topology import LinkServerGraph, mci_backbone, nsfnet_backbone
    from ..traffic import ClassRegistry, voice_class
    from ..traffic.generators import all_ordered_pairs

    network = mci_backbone() if topology == "mci" else nsfnet_backbone()
    graph = LinkServerGraph(network)
    voice = voice_class()
    registry = ClassRegistry.two_class(voice)
    pairs = all_ordered_pairs(network)
    routes = shortest_path_routes(network, pairs)
    return graph, registry, voice, pairs, routes


def _connect_service_client(target, socket_path):
    """ServiceClient for ``--target HOST:PORT`` / ``--socket PATH``."""
    from ..service import ServiceClient

    if (target is None) == (socket_path is None):
        raise SystemExit(
            "specify exactly one of --target HOST:PORT or --socket PATH"
        )
    if socket_path is not None:
        return ServiceClient(socket_path=socket_path)
    host, _, port = target.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"--target must be HOST:PORT, got {target!r}")
    return ServiceClient(host=host, port=int(port))


def _run_loadgen(args: argparse.Namespace) -> int:
    from ..admission import (
        FlowAwareAdmissionController,
        ShardedAdmissionController,
        UtilizationAdmissionController,
    )
    from ..workload import (
        ZipfPairPopularity,
        drive,
        open_loop_schedule,
        read_trace,
        schedule_events,
        write_trace,
    )

    service_mode = args.target is not None or args.socket is not None
    graph, registry, voice, pairs, routes = _admission_setup(
        args.topology
    )

    if args.replay is not None:
        meta, events = read_trace(args.replay)
        print(
            f"replaying {len(events)} events from {args.replay} "
            f"(meta: {meta})"
        )
    else:
        popularity = ZipfPairPopularity(
            num_pairs=len(pairs),
            skew=args.zipf_skew,
            shuffle_seed=args.seed,
        )
        schedule = open_loop_schedule(
            args.flows,
            arrival_rate=args.arrival_rate,
            mean_holding=args.mean_holding,
            popularity=popularity,
            seed=args.seed,
            workers=args.workers,
        )
        events = schedule_events(schedule, pairs, voice.name)
    if args.record is not None:
        write_trace(
            args.record,
            events,
            meta={
                "topology": args.topology,
                "seed": args.seed,
                "flows": args.flows,
                "arrival_rate": args.arrival_rate,
                "mean_holding": args.mean_holding,
                "zipf_skew": args.zipf_skew,
            },
        )
        print(f"wrote {len(events)} events to {args.record}")

    if service_mode:
        from ..service.replay import replay_events

        with _connect_service_client(args.target, args.socket) as client:
            result = replay_events(
                client, events, frame_size=args.batch_size
            )
        where = args.socket or args.target
        print(
            f"admission service at {where} "
            f"(frames of {args.batch_size}): "
            f"{result.num_admitted} admitted / {result.num_rejected} "
            f"rejected of {result.num_arrivals} arrivals, "
            f"{result.num_released} released, "
            f"{result.num_skipped} skipped, {result.num_errors} errors"
        )
        print(
            f"{result.total_ops} ops in {result.elapsed_seconds:.3f} s "
            f"= {result.ops_per_second:,.0f} ops/s over the wire"
        )
        return 0 if result.num_errors == 0 else 1

    alphas = {voice.name: args.alpha}
    if args.controller == "utilization":
        controller = UtilizationAdmissionController(
            graph, registry, alphas, routes
        )
    elif args.controller == "sharded":
        controller = ShardedAdmissionController(
            graph, registry, alphas, routes
        )
    else:
        controller = FlowAwareAdmissionController(graph, registry, routes)
    result = drive(
        controller,
        events,
        batch_size=args.batch_size,
        mode="sequential" if args.sequential else "batch",
    )
    print(
        f"{args.controller} controller, {result.mode} mode "
        f"(batch={result.batch_size}): "
        f"{result.num_admitted} admitted / {result.num_rejected} "
        f"rejected of {result.num_arrivals} arrivals, "
        f"{result.num_released} released"
    )
    print(
        f"{result.total_ops} ops in {result.elapsed_seconds:.3f} s "
        f"= {result.ops_per_second:,.0f} ops/s; mean decision "
        f"{controller.mean_decision_seconds() * 1e6:.2f} us/request"
    )
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    import asyncio

    from ..admission import (
        ShardedAdmissionController,
        UtilizationAdmissionController,
    )
    from ..errors import ServiceError
    from ..service import AdmissionService, ServiceConfig

    graph, registry, voice, _pairs, routes = _admission_setup(
        args.topology
    )
    alphas = {voice.name: args.alpha}
    if args.controller == "utilization":
        controller = UtilizationAdmissionController(
            graph, registry, alphas, routes
        )
    else:
        controller = ShardedAdmissionController(
            graph, registry, alphas, routes
        )
    try:
        config = ServiceConfig(
            max_batch=args.max_batch,
            max_delay=args.max_delay_ms / 1000.0,
            high_water=args.high_water,
            low_water=args.low_water,
            snapshot_path=args.snapshot,
            snapshot_interval=args.snapshot_interval,
        )
    except ServiceError as exc:
        print(f"FAILURE: {exc}")
        return 2
    if args.socket is None and args.port is None:
        print("FAILURE: specify --socket PATH or --port N")
        return 2

    async def _serve() -> int:
        service = AdmissionService(controller, config)
        if args.socket is not None:
            restored = await service.start_unix(args.socket)
            where = args.socket
        else:
            restored = await service.start_tcp(args.host, args.port)
            where = f"{args.host}:{service.port}"
        service.install_signal_handlers()
        print(
            f"admission service ({args.controller}, "
            f"{args.topology}, alpha={args.alpha:g}) listening on "
            f"{where}; restored {restored} flows",
            flush=True,
        )
        if args.serve_seconds is not None:
            async def _auto_drain() -> None:
                await asyncio.sleep(args.serve_seconds)
                await service.drain()

            asyncio.get_running_loop().create_task(_auto_drain())
        await service.serve_forever()
        stats = service.stats()
        print(
            f"drained after {stats['requests']} requests "
            f"({stats['admitted']} admitted, {stats['rejected']} "
            f"rejected, {stats['released']} released, "
            f"{stats['shed']} shed) in {stats['batches']} batches "
            f"(mean fill {stats['mean_batch_fill']:.1f})"
        )
        return 0

    return asyncio.run(_serve())


def _run_client(args: argparse.Namespace) -> int:
    import json

    from ..errors import ReproError, ServiceError
    from ..traffic.flows import FlowSpec, fresh_flow_id

    try:
        client = _connect_service_client(args.target, args.socket)
    except ServiceError as exc:
        print(f"FAILURE: {exc}")
        return 1
    try:
        with client:
            if args.op in ("query", "release") and args.flow_id is None:
                print(f"FAILURE: {args.op} needs --flow-id")
                return 2
            if args.op == "health":
                result = client.health()
            elif args.op == "stats":
                result = client.stats()
            elif args.op == "snapshot":
                result = client.snapshot()
            elif args.op == "query":
                result = {"established": client.query(args.flow_id)}
            elif args.op == "release":
                result = {"released": client.release(args.flow_id)}
            else:  # admit
                if args.src is None or args.dst is None:
                    print("FAILURE: admit needs --src and --dst")
                    return 2
                decision = client.admit(
                    FlowSpec(
                        flow_id=(
                            args.flow_id
                            if args.flow_id is not None
                            else f"cli-{fresh_flow_id()}"
                        ),
                        class_name=args.cls,
                        source=args.src,
                        destination=args.dst,
                    )
                )
                result = {
                    "flow_id": decision.flow_id,
                    "admitted": decision.admitted,
                    "reason": decision.reason,
                    "batch_size": decision.batch_size,
                }
            print(json.dumps(result, sort_keys=True))
            return 0
    except ReproError as exc:
        print(f"FAILURE: {exc}")
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "bounds":
        bounds = utilization_bounds(
            args.fan_in, args.diameter, args.burst, args.rate, args.deadline
        )
        print(
            format_table(
                ["Lower Bound", "Upper Bound"],
                [[f"{bounds.lower:.4f}", f"{bounds.upper:.4f}"]],
                title=(
                    f"Theorem 4 bounds (N={args.fan_in}, L={args.diameter}, "
                    f"T={args.burst:g} b, rho={args.rate:g} b/s, "
                    f"D={args.deadline:g} s)"
                ),
            )
        )
        return 0

    if args.command == "table1":
        result = run_table1(resolution=args.resolution)
        print(result.render())
        print(
            f"\nordering LB <= SP < heuristic <= UB: "
            f"{'holds' if result.ordering_holds else 'VIOLATED'}"
        )
        print(f"heuristic / SP improvement: {result.improvement:.2f}x")
        if obs.is_enabled():
            # Run-time side of the paper's cost comparison, then the
            # snapshot of everything the regeneration recorded.
            _measure_admission(result)
            print()
            print(format_metrics_snapshot())
        return 0

    if args.command == "verify":
        sc = paper_scenario()
        routes = shortest_path_routes(sc.network, sc.pairs)
        result = verify_safe_assignment(
            sc.network,
            list(routes.values()),
            sc.registry,
            {sc.voice.name: args.alpha},
        )
        verdict = "SUCCESS" if result.success else "FAILURE"
        print(f"{verdict}: alpha={args.alpha}")
        worst = result.worst_route_delay[sc.voice.name]
        print(
            f"worst route bound {worst * 1e3:.2f} ms "
            f"(deadline {sc.voice.deadline * 1e3:.0f} ms)"
        )
        if not result.success:
            print(result.reason)
        return 0 if result.success else 1

    if args.command == "sweep":
        run = sweep_deadline if args.parameter == "deadline" else sweep_burst
        sweep = run(
            include_searches=args.searches, workers=args.workers
        )
        print(sweep.render())
        return 0

    if args.command == "simulate":
        from ..config.configured import configure
        from ..errors import ConfigurationError

        sc = paper_scenario()
        try:
            cfg = configure(
                sc.network,
                sc.registry,
                {sc.voice.name: args.alpha},
                routing="shortest-path",
            )
        except ConfigurationError as exc:
            print(f"FAILURE: alpha={args.alpha} does not verify: {exc}")
            return 1
        misses = cfg.validate_by_simulation(
            flows_per_route=args.flows_per_route, horizon=args.horizon
        )
        print(
            f"alpha={args.alpha} verified; adversarial simulation over "
            f"{args.horizon:g} s: deadline misses = {misses}"
        )
        ok = all(v == 0 for v in misses.values())
        print("guarantees held" if ok else "GUARANTEE VIOLATION")
        return 0 if ok else 1

    if args.command == "faults":
        return _run_faults(args)

    if args.command == "loadgen":
        return _run_loadgen(args)

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "client":
        return _run_client(args)

    if args.command == "report":
        from .persistence import (
            render_markdown_report,
            save_records,
            sweep_record,
            table1_record,
        )

        print("regenerating Table 1 (this runs both searches)...")
        table1 = run_table1(resolution=args.resolution)
        records = [
            table1_record(table1),
            sweep_record(sweep_deadline(), "sweep-deadline"),
            sweep_record(sweep_burst(), "sweep-burst"),
        ]
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(render_markdown_report(records))
        print(f"wrote {args.output}")
        if args.records:
            save_records(records, args.records)
            print(f"wrote {args.records}")
        return 0

    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
