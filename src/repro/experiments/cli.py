"""Command-line interface: ``repro-ubac <command>``.

Commands
--------
* ``bounds`` — print the Theorem 4 interval for given parameters.
* ``table1`` — regenerate the paper's Table 1 (may take ~10 s).
* ``verify`` — verify a utilization level on the MCI scenario with
  shortest-path routes, or (with ``--bound``/no alpha) run the bounded
  machine-checked admission invariants and emit a
  ``repro-verify-report/v1`` document.
* ``sweep`` — print a deadline or burst sensitivity sweep.
* ``serve`` — run the admission service on a TCP port or Unix socket.
* ``client`` — one-shot RPC against a running admission service.
* ``audit`` — inspect or verify a service decision audit log.
* ``top`` — live terminal view of a serving admission service.

Every command accepts ``--metrics-out FILE`` (Prometheus text; use a
``.jsonl`` suffix for JSON lines) and ``--trace-out FILE`` (Chrome-trace
JSON): either switch enables :mod:`repro.obs` for the run and writes the
collected data on exit.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .. import obs
from .._version import __version__
from ..config.bounds import utilization_bounds
from ..config.procedures import verify_safe_assignment
from ..routing.shortest import shortest_path_routes
from .reporting import format_metrics_snapshot, format_table
from .scenarios import paper_scenario
from .sweeps import sweep_burst, sweep_deadline
from .table1 import run_table1

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ubac",
        description=(
            "Utilization-based admission control for real-time networks "
            "(reproduction of Xuan et al., ICPP 2000)"
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
    )
    # Observability switches shared by every subcommand (they must sit on
    # the subparsers for "repro-ubac table1 --metrics-out m.prom" to parse).
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help=(
            "enable observability and write a metrics snapshot here "
            "(Prometheus text, or JSON lines with a .jsonl suffix)"
        ),
    )
    common.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="enable observability and write a Chrome-trace JSON here",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    b = sub.add_parser(
        "bounds", help="Theorem 4 utilization bounds", parents=[common]
    )
    b.add_argument("--fan-in", type=int, default=6, help="router fan-in N")
    b.add_argument("--diameter", type=int, default=4, help="hop diameter L")
    b.add_argument("--burst", type=float, default=640.0, help="T in bits")
    b.add_argument("--rate", type=float, default=32_000.0, help="rho in b/s")
    b.add_argument(
        "--deadline", type=float, default=0.1, help="D in seconds"
    )

    t = sub.add_parser(
        "table1", help="regenerate Table 1 (slow)", parents=[common]
    )
    t.add_argument(
        "--resolution",
        type=float,
        default=0.005,
        help="binary-search resolution on alpha",
    )

    v = sub.add_parser(
        "verify",
        help=(
            "verify alpha on MCI with shortest-path routes, or run "
            "the bounded machine-checked admission invariants"
        ),
        parents=[common],
    )
    v.add_argument(
        "alpha", type=float, nargs="?", default=None,
        help=(
            "utilization to verify on the paper scenario; omit to run "
            "the bounded model checker instead"
        ),
    )
    v.add_argument(
        "--bound", type=int, default=None, metavar="N",
        help=(
            "bounded-checker universe: instances of up to N flows "
            "(default 3 when no alpha is given)"
        ),
    )
    v.add_argument(
        "--servers", type=int, default=2, metavar="S",
        help="chain link servers in the bounded universe",
    )
    v.add_argument(
        "--max-capacity", type=int, default=2, metavar="C",
        help="largest verified slot capacity per server",
    )
    v.add_argument(
        "--backend", choices=["auto", "exhaustive", "z3"],
        default="auto",
        help=(
            "bounded-checker backend (auto = z3 when installed, "
            "exhaustive otherwise)"
        ),
    )
    v.add_argument(
        "--check", dest="checks", action="append",
        choices=["no_overcommit", "batch_equivalence"], default=None,
        help="run only this check (repeatable; default: all)",
    )
    v.add_argument(
        "--mutant",
        choices=["admit_on_full", "ignore_contention"], default=None,
        help=(
            "verify the verifier: run against this deliberately broken "
            "kernel, which must be caught, decoded, and replayed"
        ),
    )
    v.add_argument(
        "--out", default=None, metavar="FILE",
        help="write the repro-verify-report/v1 document here",
    )
    v.add_argument(
        "--cx-dir", default=None, metavar="DIR",
        help=(
            "write decoded counterexamples here as replayable "
            "repro-workload-trace/v1 files"
        ),
    )
    v.add_argument(
        "--validate", default=None, metavar="FILE",
        help="instead, audit an existing verify report and exit",
    )

    s = sub.add_parser(
        "sweep", help="bound sensitivity sweep", parents=[common]
    )
    s.add_argument(
        "parameter", choices=["deadline", "burst"], help="swept parameter"
    )
    s.add_argument(
        "--searches", action="store_true",
        help="also run the SP / heuristic searches per point",
    )
    s.add_argument(
        "--workers", type=int, default=None,
        help="evaluate sweep points in N parallel processes",
    )

    sim = sub.add_parser(
        "simulate",
        help="adversarial packet validation of an alpha on the MCI scenario",
        parents=[common],
    )
    sim.add_argument("alpha", type=float, help="utilization to validate")
    sim.add_argument(
        "--horizon", type=float, default=0.5, help="simulated seconds"
    )
    sim.add_argument(
        "--flows-per-route", type=int, default=1,
        help="greedy sources per configured route",
    )

    f = sub.add_parser(
        "faults",
        help=(
            "chaos run: replay a fault schedule against a live "
            "admission co-simulation on the MCI scenario"
        ),
        parents=[common],
    )
    f.add_argument(
        "--alpha", type=float, default=0.35,
        help="verified utilization for the configuration",
    )
    f.add_argument(
        "--controller", choices=["utilization", "sharded"],
        default="utilization", help="admission controller under test",
    )
    f.add_argument(
        "--horizon", type=float, default=2.0, help="simulated seconds"
    )
    f.add_argument("--seed", type=int, default=7, help="scenario seed")
    f.add_argument(
        "--arrival-rate", type=float, default=30.0,
        help="flow arrivals per second",
    )
    f.add_argument(
        "--mean-holding", type=float, default=1.0,
        help="mean flow holding time in seconds",
    )
    f.add_argument(
        "--adversarial", action="store_true",
        help=(
            "drive the run with the extremal (w, b)-bounded adversarial "
            "workload (synchronized bursts on the hottest configured "
            "links) instead of Poisson arrivals"
        ),
    )
    f.add_argument(
        "--burst", type=int, default=8, metavar="B",
        help="adversary burst allowance (with --adversarial)",
    )
    f.add_argument(
        "--schedule", default=None, metavar="FILE",
        help=(
            "fault-schedule JSON to replay; default fails the "
            "most-loaded configured link mid-run and restores it later"
        ),
    )
    f.add_argument(
        "--random-links", type=int, default=None, metavar="N",
        help="instead, generate a seeded random schedule of N link failures",
    )
    f.add_argument(
        "--alpha-factor", type=float, default=0.5,
        help="effective-alpha scale while in degraded mode",
    )
    f.add_argument(
        "--repair-latency", type=float, default=0.02,
        help="simulated seconds between a fault and its repair landing",
    )
    f.add_argument(
        "--report-out", default=None, metavar="FILE",
        help="write the deterministic transition report (JSON) here",
    )
    f.add_argument(
        "--no-packets", action="store_true",
        help="skip the packet replay phase (flow-level accounting only)",
    )

    lg = sub.add_parser(
        "loadgen",
        help=(
            "drive an admission controller with a deterministic "
            "open-loop workload (optionally record/replay a trace)"
        ),
        parents=[common],
    )
    lg.add_argument(
        "--topology", choices=["mci", "nsfnet"], default="nsfnet",
        help="backbone to load",
    )
    lg.add_argument(
        "--controller",
        choices=["utilization", "sharded", "flowaware"],
        default="utilization", help="admission controller under load",
    )
    lg.add_argument(
        "--alpha", type=float, default=0.3,
        help="per-class utilization assignment",
    )
    lg.add_argument(
        "--flows", type=int, default=100_000,
        help="number of flow arrivals to generate",
    )
    lg.add_argument(
        "--batch-size", type=int, default=1024,
        help="admissions per admit_batch call",
    )
    lg.add_argument(
        "--sequential", action="store_true",
        help="replay one admit/release call per event instead",
    )
    lg.add_argument(
        "--arrival-rate", type=float, default=1000.0,
        help="flow arrivals per (modeled) second",
    )
    lg.add_argument(
        "--mean-holding", type=float, default=10.0,
        help="mean flow holding time in (modeled) seconds",
    )
    lg.add_argument(
        "--zipf-skew", type=float, default=1.0,
        help="pair-popularity Zipf exponent (0 = uniform)",
    )
    lg.add_argument(
        "--adversarial", action="store_true",
        help=(
            "generate the extremal (w, b)-bounded adversarial workload "
            "(synchronized burst packing on the hottest link servers, "
            "thundering-herd releases) instead of the Poisson open loop"
        ),
    )
    lg.add_argument(
        "--burst", type=int, default=64, metavar="B",
        help="adversary burst allowance (with --adversarial)",
    )
    lg.add_argument(
        "--window", type=float, default=1.0, metavar="SEC",
        help="adversary envelope window in seconds (with --adversarial)",
    )
    lg.add_argument(
        "--hot-edges", type=int, default=1, metavar="K",
        help=(
            "number of hottest link servers the adversary targets "
            "(with --adversarial)"
        ),
    )
    lg.add_argument(
        "--ramp", choices=["linear", "step"], default=None,
        help=(
            "ramp the open-loop arrival rate from --arrival-rate up to "
            "--ramp-factor times it across the run (overload profile; "
            "same holdings/pairs as the constant-rate schedule)"
        ),
    )
    lg.add_argument(
        "--ramp-factor", type=float, default=2.0, metavar="X",
        help="terminal arrival-rate multiplier for --ramp",
    )
    lg.add_argument(
        "--priority-mix", default=None, metavar="SPEC",
        help=(
            "stamp arrivals with weighted priorities, e.g. "
            "'hard_rt=1,soft_rt=2,elastic=7' (deterministic per "
            "--seed; enables the per-priority outcome summary)"
        ),
    )
    lg.add_argument("--seed", type=int, default=7, help="workload seed")
    lg.add_argument(
        "--workers", type=int, default=None,
        help="generate workload chunks with N threads (same output)",
    )
    lg.add_argument(
        "--record", default=None, metavar="FILE",
        help="write the generated event stream as a JSON-lines trace",
    )
    lg.add_argument(
        "--replay", default=None, metavar="FILE",
        help="replay a previously recorded trace instead of generating",
    )
    lg.add_argument(
        "--target", default=None, metavar="HOST:PORT",
        help=(
            "drive a running admission service over TCP instead of an "
            "in-process controller"
        ),
    )
    lg.add_argument(
        "--socket", default=None, metavar="PATH",
        help="drive a running admission service over this Unix socket",
    )
    lg.add_argument(
        "--summary-out", default=None, metavar="FILE",
        help=(
            "write a repro-bench-summary/v1 JSON summary of the run "
            "(throughput, outcome counts, client-side latency)"
        ),
    )
    lg.add_argument(
        "--connections", type=int, default=1, metavar="N",
        help=(
            "drive the service over N concurrent connections; flows "
            "are partitioned by the cluster's consistent hash so "
            "per-flow ordering is preserved and a --workers N cluster "
            "sees every shard loaded in parallel"
        ),
    )
    lg.add_argument(
        "--protocol", choices=["v1", "v2"], default="v1",
        help=(
            "wire protocol for --target/--socket runs: v1 JSON lines "
            "(default) or the v2 binary framing (negotiated; falls "
            "back to v1 against an older server)"
        ),
    )

    srv = sub.add_parser(
        "serve",
        help=(
            "run the admission service (micro-batch coalescing, "
            "backpressure, crash-safe snapshots)"
        ),
        parents=[common],
    )
    srv.add_argument(
        "--socket", default=None, metavar="PATH",
        help="listen on this Unix socket",
    )
    srv.add_argument(
        "--host", default="127.0.0.1", help="TCP bind address"
    )
    srv.add_argument(
        "--port", type=int, default=None,
        help="TCP port (0 picks a free one; ignored with --socket)",
    )
    srv.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help=(
            "run a cluster of N admission workers (separate "
            "processes, each owning 1/N of the verified slot "
            "capacity) behind a consistent-hash front door on "
            "--socket; the wire protocol is unchanged"
        ),
    )
    srv.add_argument(
        # Internal: this process is worker N of a cluster; swap the
        # controller for a SlotShardController over shard N of
        # --shard-count.  Set by the cluster supervisor, not by hand.
        "--shard-index", type=int, default=None,
        help=argparse.SUPPRESS,
    )
    srv.add_argument(
        "--shard-count", type=int, default=None,
        help=argparse.SUPPRESS,
    )
    srv.add_argument(
        "--topology", choices=["mci", "nsfnet"], default="nsfnet",
        help="backbone to serve admission for",
    )
    srv.add_argument(
        "--controller", choices=["utilization", "sharded"],
        default="utilization", help="admission controller to front",
    )
    srv.add_argument(
        "--alpha", type=float, default=0.3,
        help="per-class utilization assignment",
    )
    srv.add_argument(
        "--governor", action="store_true",
        help=(
            "close the overload loop at runtime: degrade the effective "
            "alpha down a pre-certified ladder under queue pressure "
            "and restore it when drained (every rung re-verified "
            "through the fixed-point procedure at startup)"
        ),
    )
    srv.add_argument(
        "--alpha-ladder", default=None, metavar="A1,A2,...",
        help=(
            "comma-separated candidate effective alphas below --alpha "
            "for the governor's ladder (default: 0.5, 0.625, 0.75 and "
            "0.875 of --alpha); uncertifiable candidates are rejected "
            "at startup, never applied"
        ),
    )
    srv.add_argument(
        "--governor-interval", type=float, default=0.05, metavar="SEC",
        help="governor sampling period in seconds (with --governor)",
    )
    srv.add_argument(
        "--preempt", action="store_true",
        help=(
            "admit rejected hard-RT arrivals by evicting established "
            "lower-priority flows of the same class (never hard_rt) "
            "through the ordinary release path"
        ),
    )
    srv.add_argument(
        "--preempt-max-victims", type=int, default=8, metavar="N",
        help=(
            "cap on flows evicted for one preempted admit (with "
            "--preempt); shard workers see a slice of each link's "
            "slots, so deficits run deeper there and may need a "
            "higher cap than a whole-network controller"
        ),
    )
    srv.add_argument(
        "--max-batch", type=int, default=1024,
        help="requests coalesced into one batch kernel call",
    )
    srv.add_argument(
        "--max-delay-ms", type=float, default=2.0,
        help="coalescing window in milliseconds",
    )
    srv.add_argument(
        "--high-water", type=int, default=8192,
        help="queue depth that starts load shedding",
    )
    srv.add_argument(
        "--low-water", type=int, default=4096,
        help="queue depth at which shedding stops (hysteresis)",
    )
    srv.add_argument(
        "--snapshot", default=None, metavar="FILE",
        help=(
            "crash-safe snapshot path; restored on startup, written on "
            "drain and every --snapshot-interval seconds"
        ),
    )
    srv.add_argument(
        "--snapshot-interval", type=float, default=None, metavar="SEC",
        help="periodic snapshot period in seconds (needs --snapshot)",
    )
    srv.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help=(
            "serve /metrics, /healthz, /stats over HTTP on this port "
            "(0 picks a free one; enables observability)"
        ),
    )
    srv.add_argument(
        "--metrics-host", default="127.0.0.1",
        help="bind address of the telemetry endpoint",
    )
    srv.add_argument(
        "--audit", default=None, metavar="FILE",
        help=(
            "append every admit/release decision to this JSON-lines "
            "audit log (repro-admission-audit/v1)"
        ),
    )
    srv.add_argument(
        "--audit-fsync-every", type=int, default=256, metavar="N",
        help="fsync the audit log every N records (1 = every decision)",
    )
    srv.add_argument(
        "--audit-max-bytes", type=int, default=None, metavar="BYTES",
        help="rotate the audit log once it grows past this size",
    )
    srv.add_argument(
        "--audit-keep", type=int, default=4, metavar="N",
        help="rotated audit files to keep",
    )
    srv.add_argument(
        "--span-out", default=None, metavar="FILE",
        help=(
            "stream request/batch spans to this JSON-lines file "
            "(repro-span/v1; enables observability)"
        ),
    )
    srv.add_argument(
        "--slo-p50-ms", type=float, default=None, metavar="MS",
        help="rolling-window p50 latency objective (enables SLO tracking)",
    )
    srv.add_argument(
        "--slo-p99-ms", type=float, default=None, metavar="MS",
        help="rolling-window p99 latency objective (enables SLO tracking)",
    )
    srv.add_argument(
        "--slo-shed-rate", type=float, default=None, metavar="FRAC",
        help="shed-rate objective in [0, 1] (enables SLO tracking)",
    )
    srv.add_argument(
        "--slo-window", type=float, default=None, metavar="SEC",
        help="rolling SLO window in seconds (enables SLO tracking)",
    )
    srv.add_argument(
        "--drain-grace", type=float, default=0.0, metavar="SEC",
        help=(
            "keep listeners answering (healthz 503) this long after a "
            "drain starts, so load balancers observe the flip"
        ),
    )
    srv.add_argument(
        "--protocol", choices=["v1", "v2"], default="v2",
        help=(
            "highest wire protocol to negotiate: v2 (default) accepts "
            "hello upgrades to the binary framing; v1 answers hello "
            "with unknown_op exactly like a pre-v2 build (clients fall "
            "back transparently)"
        ),
    )
    srv.add_argument(
        "--uvloop", action="store_true",
        help=(
            "run on the uvloop event loop when importable "
            "(falls back to stdlib asyncio with a warning)"
        ),
    )
    srv.add_argument(
        # Test/CI hook: drain automatically after a fixed wall-clock
        # budget instead of waiting for a signal.
        "--serve-seconds", type=float, default=None,
        help=argparse.SUPPRESS,
    )

    cl = sub.add_parser(
        "client",
        help="one-shot RPC against a running admission service",
        parents=[common],
    )
    cl.add_argument(
        "op",
        choices=["health", "stats", "snapshot", "query", "admit", "release"],
        help="operation to perform",
    )
    cl.add_argument(
        "--target", default=None, metavar="HOST:PORT",
        help="TCP address of the service",
    )
    cl.add_argument(
        "--socket", default=None, metavar="PATH",
        help="Unix socket of the service",
    )
    cl.add_argument(
        "--flow-id", default=None,
        help="flow id (admit, release, query)",
    )
    cl.add_argument(
        "--protocol", choices=["v1", "v2"], default="v1",
        help="wire protocol (v2 negotiates the binary framing)",
    )
    cl.add_argument("--cls", default="voice", help="flow class (admit)")
    cl.add_argument("--src", default=None, help="source router (admit)")
    cl.add_argument("--dst", default=None, help="destination router (admit)")

    au = sub.add_parser(
        "audit",
        help=(
            "inspect or verify a service decision audit log "
            "(repro-admission-audit/v1)"
        ),
        parents=[common],
    )
    au.add_argument(
        "log", metavar="FILE",
        help="audit log path (rotated siblings are read automatically)",
    )
    au.add_argument(
        "--verify", action="store_true",
        help="replay the log and check its integrity invariants",
    )
    au.add_argument(
        "--snapshot", default=None, metavar="FILE",
        help=(
            "snapshot file that must match a durable audit marker "
            "(implies --verify)"
        ),
    )
    au.add_argument(
        "--kind",
        choices=["admit", "release", "snapshot", "restore"],
        default=None, help="only list records of this kind",
    )
    au.add_argument(
        "--flow-id", default=None,
        help="only list records touching this flow id",
    )
    au.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="list at most the last N matching records",
    )
    au.add_argument(
        "--json", action="store_true",
        help="print matching records as raw JSON lines",
    )
    au.add_argument(
        "--to-trace", default=None, metavar="FILE",
        help=(
            "write the committed decisions as a replayable "
            "repro-workload-trace/v1 file"
        ),
    )

    tp = sub.add_parser(
        "top",
        help="live terminal view of a serving admission service",
        parents=[common],
    )
    tp.add_argument(
        "--target", default=None, metavar="HOST:PORT",
        help="TCP address of the service",
    )
    tp.add_argument(
        "--socket", default=None, metavar="PATH",
        help="Unix socket of the service",
    )
    tp.add_argument(
        "--interval", type=float, default=2.0, metavar="SEC",
        help="seconds between refreshes",
    )
    tp.add_argument(
        "--count", type=int, default=None, metavar="N",
        help="exit after N refreshes (default: run until interrupted)",
    )
    tp.add_argument(
        "--no-clear", action="store_true",
        help="append refreshes instead of redrawing the screen",
    )

    r = sub.add_parser(
        "report",
        help="regenerate the reproduction report (Table 1 + sweeps)",
        parents=[common],
    )
    r.add_argument(
        "--output", default="reproduction-report.md",
        help="Markdown report path",
    )
    r.add_argument(
        "--records", default=None,
        help="optional JSON records path",
    )
    r.add_argument(
        "--resolution", type=float, default=0.01,
        help="binary-search resolution for the Table 1 columns",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    metrics_out = getattr(args, "metrics_out", None)
    trace_out = getattr(args, "trace_out", None)
    capture = metrics_out is not None or trace_out is not None
    for path in (metrics_out, trace_out):
        # Fail fast: the snapshot is written *after* the (possibly long)
        # command, so reject an unwritable destination up front.
        if path is not None:
            parent = os.path.dirname(path) or "."
            if not os.path.isdir(parent):
                parser.error(f"cannot write to {path!r}: "
                             f"directory {parent!r} does not exist")
    if capture:
        obs.enable(fresh=True)
    try:
        return _dispatch(args)
    finally:
        if capture:
            if metrics_out:
                fmt = (
                    "jsonl" if metrics_out.endswith(".jsonl")
                    else "prometheus"
                )
                obs.write_metrics(metrics_out, fmt=fmt)
                print(f"wrote metrics snapshot to {metrics_out}")
            if trace_out:
                obs.write_trace(trace_out)
                print(f"wrote Chrome trace to {trace_out}")
            obs.disable()


def _measure_admission(result) -> None:
    """Replay a burst of admissions against the Table-1 heuristic routes.

    Exercises the run-time side of the paper's comparison so a
    ``table1 --metrics-out`` run captures admission-decision series
    (latency histogram, admit/reject counters) alongside the
    configuration-time fixed-point series.
    """
    from ..admission.utilization import UtilizationAdmissionController
    from ..traffic.flows import FlowSpec

    sc = result.scenario
    routes = result.heuristic.routes
    if not routes:
        return
    controller = UtilizationAdmissionController(
        sc.graph,
        sc.registry,
        {sc.voice.name: result.heuristic.alpha},
        routes,
    )
    pairs = list(routes)
    admitted = 0
    rejected = 0
    for i in range(200):
        src, dst = pairs[i % len(pairs)]
        decision = controller.admit(
            FlowSpec(f"table1-probe-{i}", sc.voice.name, src, dst)
        )
        if decision.admitted:
            admitted += 1
        else:
            rejected += 1
    print(
        f"admission replay at alpha={result.heuristic.alpha:.3f}: "
        f"{admitted} admitted, {rejected} rejected, "
        f"mean decision {controller.mean_decision_seconds() * 1e6:.1f} us"
    )


#: Demand pairs for the chaos scenario: a small coast-to-coast subset of
#: the MCI pair set that keeps configuration fast while still crossing
#: the backbone's most-loaded links.
_FAULTS_PAIRS = [
    ("Seattle", "Miami"),
    ("Boston", "Phoenix"),
    ("Chicago", "Dallas"),
    ("NewYork", "LosAngeles"),
    ("Denver", "WashingtonDC"),
]


def _run_faults(args: argparse.Namespace) -> int:
    from ..config.configured import configure
    from ..errors import ConfigurationError, FaultInjectionError
    from ..faults import (
        BackoffPolicy,
        ChaosHarness,
        DegradedModePolicy,
        FaultSchedule,
        adversarial_flow_schedule,
        configured_flow_schedule,
        default_link_failure_scenario,
        random_fault_schedule,
    )
    from ..workload import AdversaryModel

    sc = paper_scenario()
    try:
        cfg = configure(
            sc.network,
            sc.registry,
            {sc.voice.name: args.alpha},
            pairs=_FAULTS_PAIRS,
            routing="shortest-path",
        )
    except ConfigurationError as exc:
        print(f"FAILURE: alpha={args.alpha} does not verify: {exc}")
        return 1

    try:
        if args.schedule is not None:
            faults = FaultSchedule.load(args.schedule, network=sc.network)
        elif args.random_links is not None:
            faults = random_fault_schedule(
                sc.network,
                seed=args.seed,
                horizon=args.horizon,
                link_failures=args.random_links,
            )
        else:
            faults = default_link_failure_scenario(
                cfg,
                horizon=args.horizon,
                down_at=0.3 * args.horizon,
                up_at=0.7 * args.horizon,
            )
        if args.adversarial:
            flows = adversarial_flow_schedule(
                cfg,
                sc.voice.name,
                horizon=args.horizon,
                seed=args.seed,
                model=AdversaryModel(
                    rate=args.arrival_rate, burst=args.burst
                ),
            )
        else:
            flows = configured_flow_schedule(
                cfg,
                sc.voice.name,
                arrival_rate=args.arrival_rate,
                mean_holding=args.mean_holding,
                horizon=args.horizon,
                seed=args.seed,
            )
        harness = ChaosHarness(
            cfg,
            controller=args.controller,
            policy=DegradedModePolicy(
                alpha_factor=args.alpha_factor,
                backoff=BackoffPolicy(),
                repair_latency=args.repair_latency,
            ),
        )
        report = harness.run(
            flows,
            faults,
            horizon=args.horizon,
            seed=args.seed,
            simulate_packets=not args.no_packets,
        )
    except FaultInjectionError as exc:
        print(f"FAILURE: {exc}")
        return 1
    print(report.render())
    if args.report_out:
        report.save(args.report_out)
        print(f"wrote transition report to {args.report_out}")
    held = report.survivors_held()
    print(
        "survivor guarantees held"
        if held
        else "SURVIVOR GUARANTEE VIOLATION"
    )
    return 0 if held else 1


def _run_verify_bounded(args: argparse.Namespace) -> int:
    """``repro-ubac verify [--bound N ...]`` — the machine checker."""
    from ..errors import VerificationError
    from ..verify import (
        MUTANTS,
        VERIFY_REPORT_SCHEMA,
        VerifyBound,
        load_verify_report,
        replay_batch_equivalence,
        replay_no_overcommit,
        run_verify,
        validate_verify_report,
        write_verify_report,
    )

    if args.validate is not None:
        try:
            validate_verify_report(load_verify_report(args.validate))
        except VerificationError as exc:
            print(f"FAILURE: {exc}")
            return 1
        print(f"{args.validate}: valid {VERIFY_REPORT_SCHEMA} document")
        return 0

    try:
        bound = VerifyBound(
            flows=3 if args.bound is None else args.bound,
            servers=args.servers,
            max_capacity=args.max_capacity,
        )
        report, results = run_verify(
            bound,
            backend=args.backend,
            checks=(
                tuple(args.checks) if args.checks else ("no_overcommit",
                                                        "batch_equivalence")
            ),
            mutant=args.mutant,
        )
    except VerificationError as exc:
        print(f"FAILURE: {exc}")
        return 1

    print(
        f"bounded universe: up to {bound.flows} flows, "
        f"{bound.servers} chain servers, capacities 0.."
        f"{bound.max_capacity}"
    )
    replayed_ok = True
    for res in results:
        print(
            f"{res.name} [{res.backend}]: {res.status} "
            f"({res.instances} instances, {res.elapsed_seconds:.3f} s)"
        )
        cx = res.counterexample
        if cx is None:
            continue
        print(f"  counterexample: {cx.detail}")
        # Decoded counterexamples must reproduce through the real
        # implementations, or the decoding itself is broken.
        if res.name == "no_overcommit":
            replay = replay_no_overcommit(
                cx, admit_on_full=args.mutant == "admit_on_full"
            )
            reproduced = bool(replay["reproduced"])
        else:
            replay = replay_batch_equivalence(
                cx,
                kernel=None if args.mutant is None else MUTANTS[args.mutant],
            )
            reproduced = bool(replay["diverged"])
        replayed_ok = replayed_ok and reproduced
        print(
            "  replay reproduces the violation"
            if reproduced
            else "  replay DOES NOT reproduce the violation"
        )
        if args.cx_dir is not None:
            from ..workload import write_trace

            os.makedirs(args.cx_dir, exist_ok=True)
            path = os.path.join(args.cx_dir, f"cx_{res.name}.jsonl")
            write_trace(
                path,
                cx.to_trace_events(),
                meta={
                    "check": res.name,
                    "backend": res.backend,
                    "mutant": args.mutant,
                    "bound": bound.to_dict(),
                    "detail": cx.detail,
                },
            )
            print(f"  wrote replayable counterexample to {path}")
    if args.out is not None:
        write_verify_report(args.out, report)
        print(f"wrote verify report to {args.out}")
    if args.mutant is None:
        ok = bool(report["ok"])
        print(
            "all invariants hold within the bound"
            if ok
            else "INVARIANT VIOLATION within the bound"
        )
    else:
        ok = bool(report["ok"]) and replayed_ok
        print(
            f"mutant {args.mutant!r} caught, decoded, and replayed"
            if ok
            else f"MUTANT {args.mutant!r} SURVIVED verification"
        )
    return 0 if ok else 1


def _admission_setup(topology: str):
    """(graph, registry, voice, pairs, routes) for a served topology."""
    from ..topology import LinkServerGraph, mci_backbone, nsfnet_backbone
    from ..traffic import ClassRegistry, voice_class
    from ..traffic.generators import all_ordered_pairs

    network = mci_backbone() if topology == "mci" else nsfnet_backbone()
    graph = LinkServerGraph(network)
    voice = voice_class()
    registry = ClassRegistry.two_class(voice)
    pairs = all_ordered_pairs(network)
    routes = shortest_path_routes(network, pairs)
    return graph, registry, voice, pairs, routes


def _connect_service_client(target, socket_path, protocol="v1"):
    """ServiceClient for ``--target HOST:PORT`` / ``--socket PATH``."""
    from ..service import ServiceClient

    if (target is None) == (socket_path is None):
        raise SystemExit(
            "specify exactly one of --target HOST:PORT or --socket PATH"
        )
    if socket_path is not None:
        return ServiceClient(socket_path=socket_path, protocol=protocol)
    host, _, port = target.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(f"--target must be HOST:PORT, got {target!r}")
    return ServiceClient(host=host, port=int(port), protocol=protocol)


def _run_loadgen(args: argparse.Namespace) -> int:
    from ..admission import (
        FlowAwareAdmissionController,
        ShardedAdmissionController,
        UtilizationAdmissionController,
    )
    from ..workload import (
        ZipfPairPopularity,
        drive,
        open_loop_schedule,
        read_trace,
        schedule_events,
        write_trace,
    )

    service_mode = args.target is not None or args.socket is not None
    graph, registry, voice, pairs, routes = _admission_setup(
        args.topology
    )

    if args.replay is not None:
        meta, events = read_trace(args.replay)
        bound = meta.get("bound")
        if isinstance(bound, dict) and "servers" in bound:
            # Decoded bounded-checker counterexample: its routes live on
            # the verification chain, not a backbone.
            from ..verify.instances import chain_fixture

            graph, registry, routes = chain_fixture(int(bound["servers"]))
        print(
            f"replaying {len(events)} events from {args.replay} "
            f"(meta: {meta})"
        )
    elif args.adversarial:
        from ..workload import AdversaryModel, adversarial_events

        events = adversarial_events(
            graph,
            routes,
            voice.name,
            num_flows=args.flows,
            model=AdversaryModel(
                rate=args.arrival_rate,
                burst=args.burst,
                window=args.window,
            ),
            seed=args.seed,
            hot_edges=args.hot_edges,
        )
        print(
            f"adversarial workload: {args.flows} flows flushed against "
            f"the ({args.window:g} s, {args.burst}) envelope at "
            f"{args.arrival_rate:g} flows/s, targeting the "
            f"{args.hot_edges} hottest link server"
            f"{'' if args.hot_edges == 1 else 's'}"
        )
    else:
        popularity = ZipfPairPopularity(
            num_pairs=len(pairs),
            skew=args.zipf_skew,
            shuffle_seed=args.seed,
        )
        if args.ramp is not None:
            from ..workload import ramp_schedule

            schedule = ramp_schedule(
                args.flows,
                arrival_rate=args.arrival_rate,
                ramp_factor=args.ramp_factor,
                mean_holding=args.mean_holding,
                popularity=popularity,
                shape=args.ramp,
                seed=args.seed,
            )
            print(
                f"{args.ramp} ramp: {args.arrival_rate:g} -> "
                f"{args.arrival_rate * args.ramp_factor:g} flows/s "
                f"across {args.flows} arrivals"
            )
        else:
            schedule = open_loop_schedule(
                args.flows,
                arrival_rate=args.arrival_rate,
                mean_holding=args.mean_holding,
                popularity=popularity,
                seed=args.seed,
                workers=args.workers,
            )
        events = schedule_events(schedule, pairs, voice.name)
    if args.priority_mix is not None:
        from ..errors import TrafficError
        from ..workload import assign_priorities, parse_priority_mix

        try:
            mix = parse_priority_mix(args.priority_mix)
        except TrafficError as exc:
            raise SystemExit(f"bad --priority-mix: {exc}")
        events = assign_priorities(events, mix, seed=args.seed)
    if args.record is not None:
        meta = {
            "topology": args.topology,
            "seed": args.seed,
            "flows": args.flows,
            "arrival_rate": args.arrival_rate,
            "mean_holding": args.mean_holding,
            "zipf_skew": args.zipf_skew,
        }
        if args.adversarial:
            meta.update(
                adversarial=True,
                burst=args.burst,
                window=args.window,
                hot_edges=args.hot_edges,
            )
        if args.ramp is not None:
            meta.update(ramp=args.ramp, ramp_factor=args.ramp_factor)
        if args.priority_mix is not None:
            meta.update(priority_mix=args.priority_mix)
        write_trace(args.record, events, meta=meta)
        print(f"wrote {len(events)} events to {args.record}")

    if service_mode:
        from ..service.replay import replay_events_concurrent

        if args.connections < 1:
            raise SystemExit(
                f"--connections must be >= 1, got {args.connections}"
            )
        result = replay_events_concurrent(
            lambda _index: _connect_service_client(
                args.target, args.socket, args.protocol
            ),
            events,
            connections=args.connections,
            frame_size=args.batch_size,
        )
        where = args.socket or args.target
        print(
            f"admission service at {where} "
            f"({args.protocol} frames of {args.batch_size}, "
            f"{args.connections} connection"
            f"{'' if args.connections == 1 else 's'}): "
            f"{result.num_admitted} admitted / {result.num_rejected} "
            f"rejected of {result.num_arrivals} arrivals, "
            f"{result.num_released} released, "
            f"{result.num_skipped} skipped, {result.num_errors} errors"
        )
        print(
            f"{result.total_ops} ops in {result.elapsed_seconds:.3f} s "
            f"= {result.ops_per_second:,.0f} ops/s over the wire"
        )
        latency = result.latency_summary()
        print(
            f"frame latency p50 {latency['p50_ms']:.2f} ms, "
            f"p90 {latency['p90_ms']:.2f} ms, "
            f"p99 {latency['p99_ms']:.2f} ms "
            f"({result.frames} frames of {args.batch_size})"
        )
        _print_per_priority(result.per_priority)
        if args.summary_out is not None:
            _write_bench_summary(
                args.summary_out,
                args,
                mode="service",
                target=where,
                ops=result.total_ops,
                elapsed=result.elapsed_seconds,
                admitted=result.num_admitted,
                rejected=result.num_rejected,
                released=result.num_released,
                errors=result.num_errors,
                latency_ms=latency,
                frames=result.frames,
                connections=args.connections,
                per_priority=result.per_priority,
            )
        return 0 if result.num_errors == 0 else 1

    alphas = {voice.name: args.alpha}
    if args.controller == "utilization":
        controller = UtilizationAdmissionController(
            graph, registry, alphas, routes
        )
    elif args.controller == "sharded":
        controller = ShardedAdmissionController(
            graph, registry, alphas, routes
        )
    else:
        controller = FlowAwareAdmissionController(graph, registry, routes)
    result = drive(
        controller,
        events,
        batch_size=args.batch_size,
        mode="sequential" if args.sequential else "batch",
    )
    print(
        f"{args.controller} controller, {result.mode} mode "
        f"(batch={result.batch_size}): "
        f"{result.num_admitted} admitted / {result.num_rejected} "
        f"rejected of {result.num_arrivals} arrivals, "
        f"{result.num_released} released"
    )
    print(
        f"{result.total_ops} ops in {result.elapsed_seconds:.3f} s "
        f"= {result.ops_per_second:,.0f} ops/s; mean decision "
        f"{controller.mean_decision_seconds() * 1e6:.2f} us/request"
    )
    _print_per_priority(result.per_priority)
    if args.summary_out is not None:
        _write_bench_summary(
            args.summary_out,
            args,
            mode="sequential" if args.sequential else "batch",
            target=f"in-process:{args.controller}",
            ops=result.total_ops,
            elapsed=result.elapsed_seconds,
            admitted=result.num_admitted,
            rejected=result.num_rejected,
            released=result.num_released,
            errors=0,
            per_priority=result.per_priority,
        )
    return 0


def _print_per_priority(per_priority) -> None:
    """Highest-priority-first outcome line (no-op without priorities)."""
    if not per_priority:
        return
    from ..traffic.flows import priority_rank

    cells = []
    for name in sorted(per_priority, key=priority_rank, reverse=True):
        counts = per_priority[name]
        cells.append(
            f"{name} {counts['admitted']}/{counts['arrivals']} admitted "
            f"({counts['rejected']} rejected)"
        )
    print("per-priority: " + "   ".join(cells))


def _write_bench_summary(
    path: str,
    args: argparse.Namespace,
    *,
    mode: str,
    target: str,
    ops: int,
    elapsed: float,
    admitted: int,
    rejected: int,
    released: int,
    errors: int,
    latency_ms=None,
    frames=None,
    connections=None,
    per_priority=None,
) -> None:
    """Write a machine-readable ``repro-bench-summary/v1`` run summary."""
    import json

    summary = {
        "schema": "repro-bench-summary/v1",
        "mode": mode,
        "target": target,
        "topology": args.topology,
        "batch_size": args.batch_size,
        "seed": args.seed,
        "ops": ops,
        "elapsed_seconds": elapsed,
        "ops_per_second": (ops / elapsed) if elapsed > 0 else 0.0,
        "admitted": admitted,
        "rejected": rejected,
        "released": released,
        "errors": errors,
        "protocol": getattr(args, "protocol", "v1"),
    }
    if latency_ms is not None:
        summary["latency_ms"] = latency_ms
    if frames is not None:
        summary["frames"] = frames
    if connections is not None:
        summary["connections"] = connections
    if per_priority:
        summary["per_priority"] = per_priority
    if getattr(args, "ramp", None) is not None:
        summary["ramp"] = args.ramp
        summary["ramp_factor"] = args.ramp_factor
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, sort_keys=True, indent=2)
        fh.write("\n")
    print(f"wrote run summary to {path}")


def _serve_slo_config(args: argparse.Namespace):
    """SLOConfig from the --slo-* flags (None when none were given)."""
    from ..obs import SLOConfig

    overrides = {
        "p50_ms": args.slo_p50_ms,
        "p99_ms": args.slo_p99_ms,
        "shed_rate": args.slo_shed_rate,
        "window_seconds": args.slo_window,
    }
    set_values = {k: v for k, v in overrides.items() if v is not None}
    if not set_values:
        return None
    return SLOConfig(**set_values)


def _run_serve_cluster(args: argparse.Namespace) -> int:
    """``serve --workers N``: shard workers behind one front door."""
    import asyncio

    from ..errors import ReproError, ServiceError
    from ..service.cluster import (
        ClusterConfig,
        ClusterSupervisor,
        worker_serve_command,
    )

    if args.workers < 1:
        print(f"FAILURE: --workers must be >= 1, got {args.workers}")
        return 2
    if args.socket is None or args.port is not None:
        print(
            "FAILURE: --workers serves over a Unix socket only "
            "(use --socket PATH, not --port)"
        )
        return 2
    if args.shard_index is not None or args.shard_count is not None:
        print(
            "FAILURE: --workers spawns its own shard workers; "
            "--shard-index/--shard-count are per-worker flags"
        )
        return 2
    if args.controller != "utilization":
        print(
            "FAILURE: a cluster always shards the utilization "
            "controller (drop --controller)"
        )
        return 2
    unsupported = {
        "--span-out": args.span_out,
        "--slo-p50-ms": args.slo_p50_ms,
        "--slo-p99-ms": args.slo_p99_ms,
        "--slo-shed-rate": args.slo_shed_rate,
        "--slo-window": args.slo_window,
    }
    for flag, value in unsupported.items():
        if value is not None:
            print(
                f"FAILURE: {flag} is per-worker state and is not "
                "plumbed through --workers yet; run shard workers "
                "individually to use it"
            )
            return 2

    try:
        config = ClusterConfig(
            workers=args.workers,
            socket_path=args.socket,
            snapshot_path=args.snapshot,
            snapshot_interval=args.snapshot_interval,
            metrics_host=args.metrics_host,
            metrics_port=args.metrics_port,
            drain_grace=args.drain_grace,
            protocol=args.protocol,
        )
    except (ServiceError, ReproError, ValueError) as exc:
        print(f"FAILURE: {exc}")
        return 2
    worker_extra = ["--protocol", args.protocol]
    if args.uvloop:
        worker_extra.append("--uvloop")
    if args.alpha_ladder is not None and not args.governor:
        print("FAILURE: --alpha-ladder needs --governor")
        return 2
    if args.governor:
        worker_extra += [
            "--governor", "--governor-interval",
            str(args.governor_interval),
        ]
        if args.alpha_ladder is not None:
            worker_extra += ["--alpha-ladder", args.alpha_ladder]
    if args.preempt:
        worker_extra += [
            "--preempt",
            "--preempt-max-victims", str(args.preempt_max_victims),
        ]
    if args.audit is not None:
        worker_extra += [
            "--audit-fsync-every", str(args.audit_fsync_every),
            "--audit-keep", str(args.audit_keep),
        ]
        if args.audit_max_bytes is not None:
            worker_extra += [
                "--audit-max-bytes", str(args.audit_max_bytes)
            ]
    command = worker_serve_command(
        shard_count=args.workers,
        topology=args.topology,
        alpha=args.alpha,
        max_batch=args.max_batch,
        max_delay_ms=args.max_delay_ms,
        snapshot_interval=args.snapshot_interval,
        high_water=args.high_water,
        low_water=args.low_water,
        audit_path=args.audit,
        extra_args=worker_extra,
    )

    async def _serve() -> int:
        supervisor = ClusterSupervisor(config, command)
        restored = await supervisor.start()
        supervisor.install_signal_handlers()
        print(
            f"admission cluster ({args.workers} workers, "
            f"{args.topology}, alpha={args.alpha:g}) listening on "
            f"{args.socket}; restored {restored} flows",
            flush=True,
        )
        if args.audit is not None:
            print(
                f"per-worker audit logs at {args.audit}.w0.."
                f"w{args.workers - 1}",
                flush=True,
            )
        if supervisor.metrics_endpoint is not None:
            print(
                f"telemetry endpoint on http://{args.metrics_host}:"
                f"{supervisor.metrics_endpoint.port}/metrics",
                flush=True,
            )
        if args.serve_seconds is not None:
            async def _auto_drain() -> None:
                await asyncio.sleep(args.serve_seconds)
                await supervisor.drain()

            asyncio.get_running_loop().create_task(_auto_drain())
        await supervisor.serve_forever()
        counts = supervisor.router.counts
        print(
            f"cluster drained after {counts['requests']} front-door "
            f"requests ({counts['forwarded']} forwarded, "
            f"{counts['errors']} errors, "
            f"{supervisor.restarts} worker restarts, "
            f"{supervisor.merges} manifest merges)"
        )
        return 0

    try:
        return asyncio.run(_serve())
    except (ServiceError, ReproError) as exc:
        print(f"FAILURE: {exc}")
        return 1


def _run_serve(args: argparse.Namespace) -> int:
    import asyncio

    from ..admission import (
        ShardedAdmissionController,
        SlotShardController,
        UtilizationAdmissionController,
    )
    from ..errors import ReproError, ServiceError
    from ..service import AdmissionService, ServiceConfig

    if args.workers is not None:
        return _run_serve_cluster(args)

    shard_mode = (
        args.shard_index is not None or args.shard_count is not None
    )
    if shard_mode and (
        args.shard_index is None or args.shard_count is None
    ):
        print("FAILURE: --shard-index and --shard-count go together")
        return 2
    if shard_mode and args.controller != "utilization":
        print(
            "FAILURE: a shard worker always fronts the utilization "
            "controller (drop --controller)"
        )
        return 2

    graph, registry, voice, _pairs, routes = _admission_setup(
        args.topology
    )
    alphas = {voice.name: args.alpha}
    try:
        if shard_mode:
            controller = SlotShardController(
                graph,
                registry,
                alphas,
                routes,
                shard_index=args.shard_index,
                shard_count=args.shard_count,
            )
        elif args.controller == "utilization":
            controller = UtilizationAdmissionController(
                graph, registry, alphas, routes
            )
        else:
            controller = ShardedAdmissionController(
                graph, registry, alphas, routes
            )
        config = ServiceConfig(
            max_batch=args.max_batch,
            max_delay=args.max_delay_ms / 1000.0,
            high_water=args.high_water,
            low_water=args.low_water,
            snapshot_path=args.snapshot,
            snapshot_interval=args.snapshot_interval,
            metrics_host=args.metrics_host,
            metrics_port=args.metrics_port,
            audit_path=args.audit,
            audit_fsync_every=args.audit_fsync_every,
            audit_max_bytes=args.audit_max_bytes,
            audit_keep=args.audit_keep,
            slo=_serve_slo_config(args),
            negotiate_v2=args.protocol != "v1",
            drain_grace=args.drain_grace,
            worker_index=args.shard_index,
            governor_interval=args.governor_interval,
        )
        governor = None
        preemptor = None
        if args.governor:
            from ..control import AlphaGovernor, certify_ladder

            if args.alpha_ladder is not None:
                try:
                    candidates = [
                        float(tok)
                        for tok in args.alpha_ladder.split(",")
                        if tok.strip()
                    ]
                except ValueError:
                    print(
                        "FAILURE: --alpha-ladder must be "
                        "comma-separated floats, got "
                        f"{args.alpha_ladder!r}"
                    )
                    return 2
            else:
                candidates = [
                    args.alpha * f for f in (0.5, 0.625, 0.75, 0.875)
                ]
            # Certification always runs against the full backbone: a
            # shard worker's quota is a partition of the certified
            # slots, so a rung safe for the whole network is safe for
            # every shard of it.
            ladder = certify_ladder(
                graph, list(routes.values()), registry, alphas, candidates
            )
            governor = AlphaGovernor(ladder)
        elif args.alpha_ladder is not None:
            print("FAILURE: --alpha-ladder needs --governor")
            return 2
        if args.preempt:
            from ..control import PreemptionPolicy, Preemptor

            preemptor = Preemptor(
                controller,
                policy=PreemptionPolicy(
                    max_victims=args.preempt_max_victims
                ),
            )
    except (ServiceError, ReproError, ValueError) as exc:
        print(f"FAILURE: {exc}")
        return 2
    if args.socket is None and args.port is None:
        print("FAILURE: specify --socket PATH or --port N")
        return 2

    # A live scrape endpoint or span stream is pointless without
    # collection: either flag opts the server process into obs (the
    # --metrics-out/--trace-out switches still control exit snapshots).
    if (
        args.metrics_port is not None or args.span_out is not None
    ) and not obs.is_enabled():
        obs.enable(fresh=True)
    span_sink = None
    if args.span_out is not None:
        from ..obs import JsonLinesSpanSink

        tracer = obs.get_tracer()
        if tracer is not None:
            span_sink = JsonLinesSpanSink(args.span_out)
            span_sink.attach(tracer)

    if args.uvloop:
        from ..service.eventloop import install_uvloop

        # The library logs through the silenced "repro" logger; the CLI
        # must tell the operator when the opt-in didn't take effect.
        if not install_uvloop():
            print(
                "uvloop requested but not importable; "
                "staying on the stdlib asyncio event loop"
            )

    async def _serve() -> int:
        service = AdmissionService(
            controller, config, governor=governor, preemptor=preemptor
        )
        if args.socket is not None:
            restored = await service.start_unix(args.socket)
            where = args.socket
        else:
            restored = await service.start_tcp(args.host, args.port)
            where = f"{args.host}:{service.port}"
        service.install_signal_handlers()
        what = (
            f"shard {args.shard_index}/{args.shard_count}"
            if shard_mode
            else args.controller
        )
        print(
            f"admission service ({what}, "
            f"{args.topology}, alpha={args.alpha:g}) listening on "
            f"{where}; restored {restored} flows",
            flush=True,
        )
        if governor is not None:
            ladder = governor.ladder
            rungs = ", ".join(f"{a:g}" for a in ladder.rungs)
            line = f"alpha governor: {len(ladder)} certified rungs [{rungs}]"
            if ladder.rejected:
                bad = ", ".join(f"{a:g}" for a in ladder.rejected)
                line += f"; rejected [{bad}]"
            print(line, flush=True)
        if preemptor is not None:
            print(
                "priority preemption on: hard-RT arrivals may evict "
                "lower-priority flows",
                flush=True,
            )
        if service.metrics_endpoint is not None:
            print(
                f"telemetry endpoint on http://{args.metrics_host}:"
                f"{service.metrics_endpoint.port}/metrics",
                flush=True,
            )
        if args.serve_seconds is not None:
            async def _auto_drain() -> None:
                await asyncio.sleep(args.serve_seconds)
                await service.drain()

            asyncio.get_running_loop().create_task(_auto_drain())
        await service.serve_forever()
        stats = service.stats()
        print(
            f"drained after {stats['requests']} requests "
            f"({stats['admitted']} admitted, {stats['rejected']} "
            f"rejected, {stats['released']} released, "
            f"{stats['shed']} shed) in {stats['batches']} batches "
            f"(mean fill {stats['mean_batch_fill']:.1f})"
        )
        pre = stats.get("preemption")
        if pre is not None and pre.get("preempted_admits"):
            print(
                f"preemption: {pre['preempted_admits']} hard-RT admits "
                f"evicted {pre['preempted_flows']} lower-priority flows"
            )
        gov = stats.get("governor")
        if gov is not None:
            print(
                f"governor: rung {gov['rung'] + 1}/{gov['rungs']} "
                f"(effective alpha {gov['effective_alpha']:g}), "
                f"{gov['dec']} dec / {gov['inc']} inc moves"
            )
        return 0

    try:
        return asyncio.run(_serve())
    finally:
        if span_sink is not None:
            span_sink.close()
            print(f"wrote span stream to {args.span_out}")


def _run_client(args: argparse.Namespace) -> int:
    import json

    from ..errors import ReproError, ServiceError
    from ..traffic.flows import FlowSpec, fresh_flow_id

    try:
        client = _connect_service_client(
            args.target, args.socket, args.protocol
        )
    except ServiceError as exc:
        print(f"FAILURE: {exc}")
        return 1
    try:
        with client:
            if args.op in ("query", "release") and args.flow_id is None:
                print(f"FAILURE: {args.op} needs --flow-id")
                return 2
            if args.op == "health":
                result = client.health()
            elif args.op == "stats":
                result = client.stats()
            elif args.op == "snapshot":
                result = client.snapshot()
            elif args.op == "query":
                result = {"established": client.query(args.flow_id)}
            elif args.op == "release":
                result = {"released": client.release(args.flow_id)}
            else:  # admit
                if args.src is None or args.dst is None:
                    print("FAILURE: admit needs --src and --dst")
                    return 2
                decision = client.admit(
                    FlowSpec(
                        flow_id=(
                            args.flow_id
                            if args.flow_id is not None
                            else f"cli-{fresh_flow_id()}"
                        ),
                        class_name=args.cls,
                        source=args.src,
                        destination=args.dst,
                    )
                )
                result = {
                    "flow_id": decision.flow_id,
                    "admitted": decision.admitted,
                    "reason": decision.reason,
                    "batch_size": decision.batch_size,
                }
            print(json.dumps(result, sort_keys=True))
            return 0
    except ReproError as exc:
        print(f"FAILURE: {exc}")
        return 1


def _audit_record_matches(record, kind, flow_id) -> bool:
    if kind is not None and record.get("kind") != kind:
        return False
    if flow_id is not None:
        fid = record.get("flow_id")
        if fid is None and isinstance(record.get("flow"), dict):
            fid = record["flow"].get("id")
        if fid is None or str(fid) != flow_id:
            return False
    return True


def _audit_record_line(record) -> str:
    seq = record.get("seq", "?")
    kind = record.get("kind", "?")
    if kind == "admit":
        flow = record.get("flow", {})
        verdict = (
            f"error: {record['error']}"
            if record.get("error") is not None
            else ("admitted" if record.get("admitted") else "rejected")
        )
        parts = [
            f"#{seq} admit {flow.get('id')!r} {flow.get('cls')} "
            f"{flow.get('src')}->{flow.get('dst')}: {verdict}"
        ]
        if record.get("route") is not None:
            parts.append(f"route={'-'.join(map(str, record['route']))}")
        if record.get("headroom") is not None:
            parts.append(f"headroom={record['headroom']}")
        if record.get("reason"):
            parts.append(f"reason={record['reason']!r}")
    elif kind == "release":
        verdict = (
            f"error: {record['error']}"
            if record.get("error") is not None
            else ("released" if record.get("released") else "failed")
        )
        parts = [f"#{seq} release {record.get('flow_id')!r}: {verdict}"]
        if record.get("reason"):
            parts.append(f"reason={record['reason']}")
    elif kind in ("snapshot", "restore"):
        count = record.get(
            "established" if kind == "snapshot" else "restored"
        )
        parts = [
            f"#{seq} {kind} marker: {count} flows, "
            f"digest {record.get('digest')}"
        ]
    else:
        parts = [f"#{seq} {kind}?"]
    trace = record.get("trace")
    if isinstance(trace, dict) and trace.get("trace_id"):
        parts.append(f"trace={trace['trace_id']}")
    return "  ".join(parts)


def _run_audit(args: argparse.Namespace) -> int:
    import json

    from ..errors import ReproError
    from ..service import audit_to_trace_events, iter_audit, verify_audit

    try:
        records = list(iter_audit(args.log))
    except (ReproError, OSError) as exc:
        print(f"FAILURE: {exc}")
        return 1
    matching = [
        r
        for r in records
        if _audit_record_matches(r, args.kind, args.flow_id)
    ]
    shown = (
        matching[-args.limit:] if args.limit is not None else matching
    )
    for record in shown:
        if args.json:
            print(json.dumps(record, sort_keys=True))
        else:
            print(_audit_record_line(record))
    if not args.json:
        print(
            f"{len(records)} records in {args.log} "
            f"({len(matching)} matching, {len(shown)} shown)"
        )
    if args.to_trace is not None:
        from ..workload import write_trace

        events = audit_to_trace_events(records)
        write_trace(
            args.to_trace,
            events,
            meta={"source": "audit-log", "log": args.log},
        )
        print(
            f"wrote {len(events)} replayable events to {args.to_trace}"
        )
    if args.verify or args.snapshot is not None:
        try:
            report = verify_audit(records, snapshot=args.snapshot)
        except (ReproError, OSError, json.JSONDecodeError) as exc:
            print(f"FAILURE: {exc}")
            return 1
        print(
            f"verify: {report['admits']} admits "
            f"({report['admitted']} admitted, {report['rejected']} "
            f"rejected, {report['admit_errors']} errors), "
            f"{report['releases']} releases, "
            f"{report['snapshots']} snapshot markers, "
            f"{report['restores']} restores; "
            f"{len(report['established'])} established at end"
        )
        if report["ok"]:
            print("audit log is consistent")
            return 0
        for problem in report["problems"]:
            print(f"PROBLEM: {problem}")
        return 1
    return 0


def _render_top(stats, prev, interval) -> str:
    """One refresh of the ``top`` view from a ``stats`` response."""
    lines = []
    status = stats.get("status", "?")
    uptime = stats.get("uptime_seconds", 0.0)
    lines.append(
        f"repro-ubac top — {stats.get('controller', '?')} "
        f"status: {status}   uptime: {uptime:.1f} s"
    )
    rate = ""
    if prev is not None and interval > 0:
        delta = stats.get("requests", 0) - prev.get("requests", 0)
        rate = f" ({delta / interval:,.0f}/s)"
    lines.append(
        f"requests {stats.get('requests', 0):,}{rate}   "
        f"admitted {stats.get('admitted', 0):,}   "
        f"rejected {stats.get('rejected', 0):,}   "
        f"released {stats.get('released', 0):,}   "
        f"shed {stats.get('shed', 0):,}   "
        f"errors {stats.get('errors', 0):,}"
    )
    age = stats.get("snapshot_age_seconds")
    lines.append(
        f"queue {stats.get('queue_depth', 0)}   "
        f"established {stats.get('established', 0):,}   "
        f"batches {stats.get('batches', 0):,} "
        f"(fill {stats.get('mean_batch_fill', 0.0):.1f})   "
        f"snapshot age "
        + (f"{age:.1f} s" if age is not None else "n/a")
    )
    gov = stats.get("governor")
    if isinstance(gov, dict):
        line = (
            f"governor rung {gov.get('rung', 0) + 1}/"
            f"{gov.get('rungs', '?')}   "
            f"effective alpha {gov.get('effective_alpha', 0.0):g} "
            f"(base {gov.get('base_alpha', 0.0):g})   "
            f"signal {gov.get('signal', '?')}   "
            f"moves {gov.get('dec', 0)} dec / {gov.get('inc', 0)} inc"
        )
        pre = stats.get("preemption")
        if isinstance(pre, dict):
            line += (
                f"   preempted {pre.get('preempted_flows', 0):,} "
                f"(for {pre.get('preempted_admits', 0):,} admits)"
            )
        lines.append(line)
    elif isinstance(stats.get("preemption"), dict):
        pre = stats["preemption"]
        lines.append(
            f"preempted {pre.get('preempted_flows', 0):,} flows "
            f"(for {pre.get('preempted_admits', 0):,} hard-RT admits)"
        )
    slo = stats.get("slo")
    if isinstance(slo, dict):
        burn = slo.get("burn_rates", {})
        lines.append(
            f"SLO p50 {slo.get('p50_ms', 0.0):.1f} ms "
            f"(burn {burn.get('p50', 0.0):.2f})   "
            f"p99 {slo.get('p99_ms', 0.0):.1f} ms "
            f"(burn {burn.get('p99', 0.0):.2f})   "
            f"shed {100 * slo.get('shed_rate', 0.0):.2f}% "
            f"(burn {burn.get('shed_rate', 0.0):.2f})   "
            + ("BREACHING" if slo.get("breaching") else "within targets")
        )
    return "\n".join(lines)


def _run_top(args: argparse.Namespace) -> int:
    import time as _time

    from ..errors import ReproError, ServiceError

    try:
        client = _connect_service_client(args.target, args.socket)
    except ServiceError as exc:
        print(f"FAILURE: {exc}")
        return 1
    prev = None
    refreshes = 0
    try:
        with client:
            while True:
                try:
                    stats = client.stats()
                except ReproError as exc:
                    print(f"FAILURE: {exc}")
                    return 1
                if not args.no_clear and refreshes:
                    # Cursor home + clear-to-end redraw (same shape
                    # every refresh, so no full-screen flicker).
                    sys.stdout.write("\x1b[H\x1b[J")
                print(_render_top(stats, prev, args.interval))
                sys.stdout.flush()
                prev = stats
                refreshes += 1
                if args.count is not None and refreshes >= args.count:
                    return 0
                _time.sleep(max(args.interval, 0.0))
    except KeyboardInterrupt:
        return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "bounds":
        bounds = utilization_bounds(
            args.fan_in, args.diameter, args.burst, args.rate, args.deadline
        )
        print(
            format_table(
                ["Lower Bound", "Upper Bound"],
                [[f"{bounds.lower:.4f}", f"{bounds.upper:.4f}"]],
                title=(
                    f"Theorem 4 bounds (N={args.fan_in}, L={args.diameter}, "
                    f"T={args.burst:g} b, rho={args.rate:g} b/s, "
                    f"D={args.deadline:g} s)"
                ),
            )
        )
        return 0

    if args.command == "table1":
        result = run_table1(resolution=args.resolution)
        print(result.render())
        print(
            f"\nordering LB <= SP < heuristic <= UB: "
            f"{'holds' if result.ordering_holds else 'VIOLATED'}"
        )
        print(f"heuristic / SP improvement: {result.improvement:.2f}x")
        if obs.is_enabled():
            # Run-time side of the paper's cost comparison, then the
            # snapshot of everything the regeneration recorded.
            _measure_admission(result)
            print()
            print(format_metrics_snapshot())
        return 0

    if args.command == "verify":
        bounded_flags = (
            args.bound is not None
            or args.validate is not None
            or args.mutant is not None
            or args.out is not None
            or args.cx_dir is not None
            or args.checks is not None
        )
        if args.alpha is None:
            return _run_verify_bounded(args)
        if bounded_flags:
            raise SystemExit(
                "give either an alpha (paper-scenario check) or the "
                "bounded-checker flags, not both"
            )
        sc = paper_scenario()
        routes = shortest_path_routes(sc.network, sc.pairs)
        result = verify_safe_assignment(
            sc.network,
            list(routes.values()),
            sc.registry,
            {sc.voice.name: args.alpha},
        )
        verdict = "SUCCESS" if result.success else "FAILURE"
        print(f"{verdict}: alpha={args.alpha}")
        worst = result.worst_route_delay[sc.voice.name]
        print(
            f"worst route bound {worst * 1e3:.2f} ms "
            f"(deadline {sc.voice.deadline * 1e3:.0f} ms)"
        )
        if not result.success:
            print(result.reason)
        return 0 if result.success else 1

    if args.command == "sweep":
        run = sweep_deadline if args.parameter == "deadline" else sweep_burst
        sweep = run(
            include_searches=args.searches, workers=args.workers
        )
        print(sweep.render())
        return 0

    if args.command == "simulate":
        from ..config.configured import configure
        from ..errors import ConfigurationError

        sc = paper_scenario()
        try:
            cfg = configure(
                sc.network,
                sc.registry,
                {sc.voice.name: args.alpha},
                routing="shortest-path",
            )
        except ConfigurationError as exc:
            print(f"FAILURE: alpha={args.alpha} does not verify: {exc}")
            return 1
        misses = cfg.validate_by_simulation(
            flows_per_route=args.flows_per_route, horizon=args.horizon
        )
        print(
            f"alpha={args.alpha} verified; adversarial simulation over "
            f"{args.horizon:g} s: deadline misses = {misses}"
        )
        ok = all(v == 0 for v in misses.values())
        print("guarantees held" if ok else "GUARANTEE VIOLATION")
        return 0 if ok else 1

    if args.command == "faults":
        return _run_faults(args)

    if args.command == "loadgen":
        return _run_loadgen(args)

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "client":
        return _run_client(args)

    if args.command == "audit":
        return _run_audit(args)

    if args.command == "top":
        return _run_top(args)

    if args.command == "report":
        from .persistence import (
            render_markdown_report,
            save_records,
            sweep_record,
            table1_record,
        )

        print("regenerating Table 1 (this runs both searches)...")
        table1 = run_table1(resolution=args.resolution)
        records = [
            table1_record(table1),
            sweep_record(sweep_deadline(), "sweep-deadline"),
            sweep_record(sweep_burst(), "sweep-burst"),
        ]
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(render_markdown_report(records))
        print(f"wrote {args.output}")
        if args.records:
            save_records(records, args.records)
            print(f"wrote {args.records}")
        return 0

    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
