"""Experiment result persistence and report generation.

Reproduction hygiene: every headline experiment can dump its numbers to a
JSON record (with the library version and the paper's reference values),
and a Markdown report in the style of ``EXPERIMENTS.md`` can be
regenerated from such records — so the shipped comparison tables are
artifacts of code, not hand-maintained prose.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from .._version import __version__
from ..errors import ConfigurationError
from .sweeps import SweepResult
from .table1 import PAPER_TABLE1, Table1Result

__all__ = [
    "ExperimentRecord",
    "table1_record",
    "sweep_record",
    "render_markdown_report",
    "save_records",
    "load_records",
]

_SCHEMA_VERSION = 1


@dataclass
class ExperimentRecord:
    """One experiment's regenerated numbers plus references.

    Attributes
    ----------
    experiment_id:
        Stable identifier (e.g. ``"table1"``, ``"sweep-deadline"``).
    measured:
        The regenerated values (JSON-compatible).
    reference:
        The paper's values where the paper reports them (may be empty
        for extension experiments).
    notes:
        Free-form caveats (e.g. topology-reconstruction sensitivity).
    """

    experiment_id: str
    title: str
    measured: Dict[str, Any]
    reference: Dict[str, Any] = field(default_factory=dict)
    notes: str = ""
    library_version: str = __version__

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": _SCHEMA_VERSION,
            "experiment_id": self.experiment_id,
            "title": self.title,
            "measured": self.measured,
            "reference": self.reference,
            "notes": self.notes,
            "library_version": self.library_version,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentRecord":
        if data.get("schema_version") != _SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported record schema {data.get('schema_version')!r}"
            )
        return cls(
            experiment_id=str(data["experiment_id"]),
            title=str(data["title"]),
            measured=dict(data["measured"]),
            reference=dict(data.get("reference", {})),
            notes=str(data.get("notes", "")),
            library_version=str(data.get("library_version", "?")),
        )


def table1_record(result: Table1Result) -> ExperimentRecord:
    """Record the Table 1 reproduction (with the paper's reference row)."""
    return ExperimentRecord(
        experiment_id="table1",
        title="Table 1: Maximum Utilization",
        measured={k: round(v, 4) for k, v in result.values.items()},
        reference=dict(PAPER_TABLE1),
        notes=(
            "Analytic endpoints match exactly; SP/heuristic columns are "
            "topology-list dependent (the paper's Figure 4 is a picture). "
            f"Ordering holds: {result.ordering_holds}; "
            f"improvement {result.improvement:.2f}x."
        ),
    )


def sweep_record(sweep: SweepResult, experiment_id: str) -> ExperimentRecord:
    """Record a sensitivity sweep."""
    measured = {
        "parameter": sweep.name,
        "unit": sweep.unit,
        "points": [
            {
                "value": p.parameter,
                "lower_bound": round(p.lower_bound, 4),
                "upper_bound": round(p.upper_bound, 4),
                "shortest_path": (
                    None if p.shortest_path is None
                    else round(p.shortest_path, 4)
                ),
                "heuristic": (
                    None if p.heuristic is None else round(p.heuristic, 4)
                ),
            }
            for p in sweep.points
        ],
    }
    return ExperimentRecord(
        experiment_id=experiment_id,
        title=f"Sweep: max utilization vs {sweep.name}",
        measured=measured,
    )


def render_markdown_report(records: Sequence[ExperimentRecord]) -> str:
    """A Markdown report comparing measured vs reference per record."""
    lines: List[str] = ["# Reproduction report", ""]
    for record in records:
        lines.append(f"## {record.title}")
        lines.append("")
        lines.append(f"*experiment id:* `{record.experiment_id}` · "
                     f"*library:* {record.library_version}")
        lines.append("")
        if record.reference:
            keys = [k for k in record.measured if k in record.reference]
            extra = [k for k in record.measured if k not in record.reference]
            lines.append("| quantity | paper | measured |")
            lines.append("|---|---|---|")
            for key in keys:
                lines.append(
                    f"| {key} | {record.reference[key]} | "
                    f"{record.measured[key]} |"
                )
            for key in extra:
                lines.append(f"| {key} | — | {record.measured[key]} |")
        elif "points" in record.measured:
            lines.append(
                f"| {record.measured['parameter']} "
                f"({record.measured['unit']}) | LB | SP | heuristic | UB |"
            )
            lines.append("|---|---|---|---|---|")
            for point in record.measured["points"]:
                sp = point["shortest_path"]
                heur = point["heuristic"]
                lines.append(
                    f"| {point['value']} | {point['lower_bound']} | "
                    f"{'—' if sp is None else sp} | "
                    f"{'—' if heur is None else heur} | "
                    f"{point['upper_bound']} |"
                )
        else:
            lines.append("| quantity | measured |")
            lines.append("|---|---|")
            for key, value in record.measured.items():
                lines.append(f"| {key} | {value} |")
        if record.notes:
            lines.append("")
            lines.append(f"> {record.notes}")
        lines.append("")
    return "\n".join(lines)


def save_records(records: Sequence[ExperimentRecord], path: str) -> None:
    """Write records to a JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(
            [r.to_dict() for r in records], fh, indent=2, sort_keys=True
        )


def load_records(path: str) -> List[ExperimentRecord]:
    """Read records back from :func:`save_records` output."""
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    if not isinstance(data, list):
        raise ConfigurationError("record file must contain a JSON list")
    return [ExperimentRecord.from_dict(d) for d in data]
