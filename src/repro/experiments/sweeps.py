"""Parameter sweeps (extension experiments Ext-A/B of DESIGN.md).

The paper reports a single operating point; these sweeps trace how the
Theorem 4 bounds and the achieved maximum utilizations move with the
deadline ``D``, the burst ``T``, and the network diameter ``L`` — the
sensitivity analysis a deployment would need.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Optional, Sequence

from ..config.bounds import theorem4_lower_bound, theorem4_upper_bound
from ..config.maximize import (
    max_utilization_heuristic,
    max_utilization_shortest_path,
)
from ..errors import InfeasibleUtilization
from ..traffic.classes import TrafficClass
from .reporting import format_table
from .scenarios import PaperScenario, paper_scenario

__all__ = ["SweepPoint", "SweepResult", "sweep_deadline", "sweep_burst",
           "bounds_vs_diameter"]


@dataclass(frozen=True)
class SweepPoint:
    """One row of a sweep: parameter value and the four Table 1 columns.

    ``shortest_path`` / ``heuristic`` are None when the search was skipped
    (``include_searches=False``) or infeasible even at the lower bound.
    """

    parameter: float
    lower_bound: float
    upper_bound: float
    shortest_path: Optional[float] = None
    heuristic: Optional[float] = None


@dataclass
class SweepResult:
    name: str
    unit: str
    points: List[SweepPoint]

    def render(self) -> str:
        def fmt(v: Optional[float]) -> str:
            return f"{v:.3f}" if v is not None else "-"

        rows = [
            [
                f"{p.parameter:g}",
                fmt(p.lower_bound),
                fmt(p.shortest_path),
                fmt(p.heuristic),
                fmt(p.upper_bound),
            ]
            for p in self.points
        ]
        return format_table(
            [f"{self.name} ({self.unit})", "LB", "SP", "heuristic", "UB"],
            rows,
            title=f"Sweep: max utilization vs {self.name}",
        )

    def monotone_lower_bound(self, increasing: bool) -> bool:
        """Check LB monotonicity along the sweep (used by tests)."""
        vals = [p.lower_bound for p in self.points]
        pairs = zip(vals, vals[1:])
        if increasing:
            return all(a <= b + 1e-12 for a, b in pairs)
        return all(a + 1e-12 >= b for a, b in pairs)


def _sweep(
    name: str,
    unit: str,
    values: Sequence[float],
    make_class: Callable[[float], TrafficClass],
    scenario: PaperScenario,
    include_searches: bool,
    resolution: float,
) -> SweepResult:
    points: List[SweepPoint] = []
    for value in values:
        cls = make_class(value)
        lb = theorem4_lower_bound(
            scenario.fan_in, scenario.diameter, cls.burst, cls.rate,
            cls.deadline,
        )
        ub = theorem4_upper_bound(
            scenario.fan_in, scenario.diameter, cls.burst, cls.rate,
            cls.deadline,
        )
        sp = heur = None
        if include_searches:
            try:
                sp = max_utilization_shortest_path(
                    scenario.network, scenario.pairs, cls,
                    resolution=resolution,
                ).alpha
                heur = max_utilization_heuristic(
                    scenario.network, scenario.pairs, cls,
                    resolution=resolution,
                ).alpha
            except InfeasibleUtilization:
                sp = heur = None
        points.append(
            SweepPoint(
                parameter=value,
                lower_bound=lb,
                upper_bound=ub,
                shortest_path=sp,
                heuristic=heur,
            )
        )
    return SweepResult(name=name, unit=unit, points=points)


def sweep_deadline(
    deadlines: Sequence[float] = (0.04, 0.06, 0.08, 0.10, 0.15, 0.2, 0.3, 0.4),
    *,
    scenario: Optional[PaperScenario] = None,
    include_searches: bool = False,
    resolution: float = 0.01,
) -> SweepResult:
    """Max utilization vs end-to-end deadline ``D`` (seconds)."""
    sc = scenario if scenario is not None else paper_scenario()

    def make(deadline: float) -> TrafficClass:
        return replace(sc.voice, deadline=deadline)

    return _sweep(
        "deadline", "s", deadlines, make, sc, include_searches, resolution
    )


def sweep_burst(
    bursts: Sequence[float] = (160, 320, 640, 1280, 2560, 5120),
    *,
    scenario: Optional[PaperScenario] = None,
    include_searches: bool = False,
    resolution: float = 0.01,
) -> SweepResult:
    """Max utilization vs leaky-bucket burst ``T`` (bits)."""
    sc = scenario if scenario is not None else paper_scenario()

    def make(burst: float) -> TrafficClass:
        return replace(sc.voice, burst=burst)

    return _sweep("burst", "bits", bursts, make, sc, include_searches,
                  resolution)


def bounds_vs_diameter(
    diameters: Sequence[int] = (1, 2, 3, 4, 5, 6, 8, 10),
    *,
    fan_in: int = 6,
    traffic_class: Optional[TrafficClass] = None,
) -> SweepResult:
    """Theorem 4 bounds as a function of the network diameter ``L``.

    Purely analytic (no topology needed): shows how fast the guaranteed
    utilization decays with path length.
    """
    from ..traffic.generators import voice_class

    cls = traffic_class if traffic_class is not None else voice_class()
    points = [
        SweepPoint(
            parameter=float(l),
            lower_bound=theorem4_lower_bound(
                fan_in, l, cls.burst, cls.rate, cls.deadline
            ),
            upper_bound=theorem4_upper_bound(
                fan_in, l, cls.burst, cls.rate, cls.deadline
            ),
        )
        for l in diameters
    ]
    return SweepResult(name="diameter", unit="hops", points=points)
