"""Parameter sweeps (extension experiments Ext-A/B of DESIGN.md).

The paper reports a single operating point; these sweeps trace how the
Theorem 4 bounds and the achieved maximum utilizations move with the
deadline ``D``, the burst ``T``, and the network diameter ``L`` — the
sensitivity analysis a deployment would need.

Sweep points are independent, so every sweep (and the cross-topology
table) accepts ``workers=N`` to fan the points out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Results keep the input
order regardless of completion order, so parallel runs are
bit-for-bit identical to serial ones.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import (
    Callable,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..config.bounds import theorem4_lower_bound, theorem4_upper_bound
from ..config.maximize import (
    max_utilization_heuristic,
    max_utilization_shortest_path,
)
from ..errors import ConfigurationError, InfeasibleUtilization
from ..obs import OBS
from ..topology.network import Network
from ..topology.properties import analyze
from ..traffic.classes import TrafficClass
from .reporting import format_table
from .scenarios import PaperScenario, paper_scenario

__all__ = ["SweepPoint", "SweepResult", "CrossTopologyRow", "sweep_deadline",
           "sweep_burst", "bounds_vs_diameter", "cross_topology_table"]


@dataclass(frozen=True)
class SweepPoint:
    """One row of a sweep: parameter value and the four Table 1 columns.

    ``shortest_path`` / ``heuristic`` are None when the search was skipped
    (``include_searches=False``) or infeasible even at the lower bound.
    """

    parameter: float
    lower_bound: float
    upper_bound: float
    shortest_path: Optional[float] = None
    heuristic: Optional[float] = None


@dataclass
class SweepResult:
    name: str
    unit: str
    points: List[SweepPoint]

    def render(self) -> str:
        def fmt(v: Optional[float]) -> str:
            return f"{v:.3f}" if v is not None else "-"

        rows = [
            [
                f"{p.parameter:g}",
                fmt(p.lower_bound),
                fmt(p.shortest_path),
                fmt(p.heuristic),
                fmt(p.upper_bound),
            ]
            for p in self.points
        ]
        return format_table(
            [f"{self.name} ({self.unit})", "LB", "SP", "heuristic", "UB"],
            rows,
            title=f"Sweep: max utilization vs {self.name}",
        )

    def monotone_lower_bound(self, increasing: bool) -> bool:
        """Check LB monotonicity along the sweep (used by tests)."""
        vals = [p.lower_bound for p in self.points]
        pairs = zip(vals, vals[1:])
        if increasing:
            return all(a <= b + 1e-12 for a, b in pairs)
        return all(a + 1e-12 >= b for a, b in pairs)


# ---------------------------------------------------------------------------
# Point evaluators.  These must stay top-level functions taking one
# picklable argument tuple: ``workers=N`` ships them to a
# ProcessPoolExecutor, where closures and lambdas cannot travel.
# ---------------------------------------------------------------------------


def _sweep_point_task(
    payload: Tuple[
        float, TrafficClass, str, int, int,
        Network, Sequence[Tuple[Hashable, Hashable]], bool, float,
    ]
) -> SweepPoint:
    """Evaluate one sweep point: Theorem 4 bounds plus optional searches."""
    (value, base_class, field, fan_in, diameter, network, pairs,
     include_searches, resolution) = payload
    cls = replace(base_class, **{field: value})
    lb = theorem4_lower_bound(
        fan_in, diameter, cls.burst, cls.rate, cls.deadline
    )
    ub = theorem4_upper_bound(
        fan_in, diameter, cls.burst, cls.rate, cls.deadline
    )
    sp = heur = None
    if include_searches:
        try:
            sp = max_utilization_shortest_path(
                network, pairs, cls, resolution=resolution
            ).alpha
            heur = max_utilization_heuristic(
                network, pairs, cls, resolution=resolution
            ).alpha
        except InfeasibleUtilization:
            sp = heur = None
    return SweepPoint(
        parameter=value,
        lower_bound=lb,
        upper_bound=ub,
        shortest_path=sp,
        heuristic=heur,
    )


def _map_points(
    task: Callable, payloads: Sequence, workers: Optional[int]
) -> List:
    """Run ``task`` over ``payloads``, serially or across processes.

    ``executor.map`` yields results in submission order, so output order
    is deterministic either way.
    """
    if workers is not None and workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    parallel = workers is not None and workers > 1 and len(payloads) > 1
    if parallel:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            points = list(pool.map(task, payloads))
    else:
        points = [task(p) for p in payloads]
    if OBS.enabled:
        OBS.registry.counter(
            "repro_sweep_points_total",
            mode="parallel" if parallel else "serial",
        ).inc(len(payloads))
    return points


def _sweep(
    name: str,
    unit: str,
    values: Sequence[float],
    field: str,
    scenario: PaperScenario,
    include_searches: bool,
    resolution: float,
    workers: Optional[int],
) -> SweepResult:
    base = getattr(scenario, "voice")
    payloads = [
        (
            float(value), base, field, scenario.fan_in, scenario.diameter,
            scenario.network, scenario.pairs, include_searches, resolution,
        )
        for value in values
    ]
    points = _map_points(_sweep_point_task, payloads, workers)
    return SweepResult(name=name, unit=unit, points=points)


def sweep_deadline(
    deadlines: Sequence[float] = (0.04, 0.06, 0.08, 0.10, 0.15, 0.2, 0.3, 0.4),
    *,
    scenario: Optional[PaperScenario] = None,
    include_searches: bool = False,
    resolution: float = 0.01,
    workers: Optional[int] = None,
) -> SweepResult:
    """Max utilization vs end-to-end deadline ``D`` (seconds)."""
    sc = scenario if scenario is not None else paper_scenario()
    return _sweep(
        "deadline", "s", deadlines, "deadline", sc, include_searches,
        resolution, workers,
    )


def sweep_burst(
    bursts: Sequence[float] = (160, 320, 640, 1280, 2560, 5120),
    *,
    scenario: Optional[PaperScenario] = None,
    include_searches: bool = False,
    resolution: float = 0.01,
    workers: Optional[int] = None,
) -> SweepResult:
    """Max utilization vs leaky-bucket burst ``T`` (bits)."""
    sc = scenario if scenario is not None else paper_scenario()
    return _sweep(
        "burst", "bits", bursts, "burst", sc, include_searches, resolution,
        workers,
    )


def _diameter_point_task(
    payload: Tuple[int, int, TrafficClass]
) -> SweepPoint:
    diameter, fan_in, cls = payload
    return SweepPoint(
        parameter=float(diameter),
        lower_bound=theorem4_lower_bound(
            fan_in, diameter, cls.burst, cls.rate, cls.deadline
        ),
        upper_bound=theorem4_upper_bound(
            fan_in, diameter, cls.burst, cls.rate, cls.deadline
        ),
    )


def bounds_vs_diameter(
    diameters: Sequence[int] = (1, 2, 3, 4, 5, 6, 8, 10),
    *,
    fan_in: int = 6,
    traffic_class: Optional[TrafficClass] = None,
    workers: Optional[int] = None,
) -> SweepResult:
    """Theorem 4 bounds as a function of the network diameter ``L``.

    Purely analytic (no topology needed): shows how fast the guaranteed
    utilization decays with path length.
    """
    from ..traffic.generators import voice_class

    cls = traffic_class if traffic_class is not None else voice_class()
    payloads = [(int(l), int(fan_in), cls) for l in diameters]
    points = _map_points(_diameter_point_task, payloads, workers)
    return SweepResult(name="diameter", unit="hops", points=points)


@dataclass(frozen=True)
class CrossTopologyRow:
    """Table 1 columns for one topology (Ext-H)."""

    name: str
    diameter: int
    fan_in: int
    lower_bound: float
    upper_bound: float
    shortest_path: Optional[float]
    heuristic: Optional[float]

    @property
    def ordering_holds(self) -> bool:
        """LB <= SP <= heuristic <= UB (when both searches ran)."""
        if self.shortest_path is None or self.heuristic is None:
            return False
        return (
            self.lower_bound - 1e-9 <= self.shortest_path
            <= self.heuristic + 1e-9
            and self.heuristic <= self.upper_bound + 1e-9
        )


def _cross_topology_task(
    payload: Tuple[str, Network, TrafficClass, Optional[Sequence], float]
) -> CrossTopologyRow:
    name, network, cls, pairs, resolution = payload
    from ..traffic.generators import all_ordered_pairs

    report = analyze(network)
    if pairs is None:
        pairs = all_ordered_pairs(network)
    lb = theorem4_lower_bound(
        report.max_degree, report.diameter, cls.burst, cls.rate, cls.deadline
    )
    ub = theorem4_upper_bound(
        report.max_degree, report.diameter, cls.burst, cls.rate, cls.deadline
    )
    sp = heur = None
    try:
        sp = max_utilization_shortest_path(
            network, pairs, cls, resolution=resolution
        ).alpha
        heur = max_utilization_heuristic(
            network, pairs, cls, resolution=resolution
        ).alpha
    except InfeasibleUtilization:
        sp = heur = None
    return CrossTopologyRow(
        name=name,
        diameter=report.diameter,
        fan_in=report.max_degree,
        lower_bound=lb,
        upper_bound=ub,
        shortest_path=sp,
        heuristic=heur,
    )


def cross_topology_table(
    topologies: Sequence[Tuple[str, Network]],
    traffic_class: TrafficClass,
    *,
    resolution: float = 0.01,
    workers: Optional[int] = None,
) -> List[CrossTopologyRow]:
    """The Table 1 experiment on several topologies (Ext-H).

    Each topology is independent, so rows parallelize with ``workers=N``;
    row order always matches ``topologies`` order.
    """
    payloads = [
        (name, network, traffic_class, None, resolution)
        for name, network in topologies
    ]
    return _map_points(_cross_topology_task, payloads, workers)
