"""Experiment pipelines: the paper's evaluation plus extension sweeps."""

from .persistence import (
    ExperimentRecord,
    load_records,
    render_markdown_report,
    save_records,
    sweep_record,
    table1_record,
)
from .reporting import format_percent, format_table
from .scenarios import PaperScenario, paper_scenario
from .sweeps import (
    CrossTopologyRow,
    SweepPoint,
    SweepResult,
    bounds_vs_diameter,
    cross_topology_table,
    sweep_burst,
    sweep_deadline,
)
from .table1 import PAPER_TABLE1, Table1Result, run_table1

__all__ = [
    "PAPER_TABLE1",
    "CrossTopologyRow",
    "ExperimentRecord",
    "PaperScenario",
    "SweepPoint",
    "SweepResult",
    "Table1Result",
    "bounds_vs_diameter",
    "cross_topology_table",
    "format_percent",
    "load_records",
    "render_markdown_report",
    "format_table",
    "paper_scenario",
    "run_table1",
    "save_records",
    "sweep_record",
    "sweep_burst",
    "sweep_deadline",
    "table1_record",
]
