"""The paper's evaluation scenario (Section 6) as reusable objects.

One place holds every constant of the Table 1 experiment so the examples,
tests and benchmarks cannot drift apart:

* topology — the reconstructed MCI backbone, 100 Mbps links;
* traffic — the VoIP class: ``T = 640`` bits, ``rho = 32`` kbps,
  ``D = 100`` ms, highest priority, plus a best-effort class;
* demand — one flow route per ordered pair of routers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Tuple

from ..topology.builders import mci_backbone
from ..topology.network import Network
from ..topology.properties import TopologyReport, analyze
from ..topology.servergraph import LinkServerGraph
from ..traffic.classes import ClassRegistry, TrafficClass
from ..traffic.generators import all_ordered_pairs, voice_class

__all__ = ["PaperScenario", "paper_scenario"]

Pair = Tuple[Hashable, Hashable]


@dataclass
class PaperScenario:
    """Bundled evaluation setup of the paper."""

    network: Network
    graph: LinkServerGraph
    report: TopologyReport
    voice: TrafficClass
    registry: ClassRegistry
    pairs: List[Pair]

    @property
    def fan_in(self) -> int:
        """The paper's ``N`` (6 for the MCI backbone)."""
        return self.report.max_degree

    @property
    def diameter(self) -> int:
        """The paper's ``L`` (4 for the MCI backbone)."""
        return self.report.diameter

    @property
    def capacity(self) -> float:
        """Link capacity ``C`` (100 Mbps)."""
        return self.report.capacity


def paper_scenario(capacity: float = 100e6) -> PaperScenario:
    """Build the Section 6 evaluation setup."""
    network = mci_backbone(capacity)
    graph = LinkServerGraph(network)
    voice = voice_class()
    return PaperScenario(
        network=network,
        graph=graph,
        report=analyze(network),
        voice=voice,
        registry=ClassRegistry.two_class(voice),
        pairs=all_ordered_pairs(network),
    )
