"""Multi-class delay bounds (Section 5.4, Theorem 5).

With several real-time classes under class-based static priority, the
worst-case delay of class ``i`` at server ``k`` depends on every class of
the same or higher priority.  Writing ``A_l = (T_l + rho_l*Y_l,k) * alpha_l/rho_l``
and ``g_l = alpha_l*(T_l + rho_l*Y_l,k) / (rho_l*(N_k - alpha_l))``, our
reconstruction of Theorem 5 is::

    d_{i,k} = [ sum_{l<=i} A_l  +  (sum_{l<=i} alpha_l - 1) * min_{l<=i} g_l ]
              / (1 - sum_{l<i} alpha_l)

(classes indexed in priority order; ``l <= i`` are the classes that can
delay class ``i``).  The camera-ready formula has garbled indices; this
form is fixed by two requirements the paper states or implies:

* for a single real-time class it must reduce *exactly* to Theorem 3
  (checked by tests against :func:`repro.analysis.beta.theorem3_delay`);
* with the negative coefficient ``(sum alpha - 1)``, taking the
  ``min`` over the per-class busy-period terms ``g_l`` is the conservative
  (largest-delay) resolution of the ambiguity.

Interference is route-aware: class ``l`` contributes at server ``k`` only
if some class-``l`` route traverses ``k`` (admission control never lets
class-``l`` traffic appear elsewhere).

All classes are iterated *jointly* to the least fixed point; the update is
monotone for fan-in >= 2 (see the derivative analysis in DESIGN.md), which
the constructor enforces when more than one real-time class is present.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence

import numpy as np

from ..errors import AnalysisError
from ..topology.servergraph import LinkServerGraph
from ..traffic.classes import ClassRegistry, TrafficClass
from .delays import resolve_fan_in
from .fixedpoint import DEFAULT_TOLERANCE
from .routesystem import RouteSystem

__all__ = ["MultiClassResult", "ClassDelays", "multi_class_delays"]

_CEILING = 1e6  # seconds; divergence guard


@dataclass
class ClassDelays:
    """Per-class output of the multi-class analysis."""

    class_name: str
    deadline: float
    server_delays: np.ndarray
    route_delays: np.ndarray

    @property
    def worst_route_delay(self) -> float:
        return float(self.route_delays.max()) if self.route_delays.size else 0.0

    @property
    def meets_deadline(self) -> bool:
        return self.worst_route_delay <= self.deadline

    @property
    def slack(self) -> float:
        return self.deadline - self.worst_route_delay


@dataclass
class MultiClassResult:
    """Joint fixed-point outcome for all real-time classes."""

    per_class: Dict[str, ClassDelays]
    converged: bool
    deadline_violated: bool
    diverged: bool
    iterations: int
    residual: float

    @property
    def safe(self) -> bool:
        return (
            self.converged
            and not self.deadline_violated
            and all(c.meets_deadline for c in self.per_class.values())
        )

    def delay_matrix(self) -> np.ndarray:
        """Per-class server delays stacked in priority order.

        Suitable as ``warm_start`` for a later call with a superset of the
        routes (``per_class`` preserves priority order).
        """
        return np.stack(
            [c.server_delays for c in self.per_class.values()]
        )


def multi_class_delays(
    graph: LinkServerGraph,
    routes_by_class: Mapping[str, Sequence[Sequence[Hashable]]],
    registry: ClassRegistry,
    alphas: Mapping[str, float],
    *,
    n_mode: str = "uniform",
    early_deadline_exit: bool = True,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = 100_000,
    warm_start: Optional[np.ndarray] = None,
) -> MultiClassResult:
    """Configuration-time delay bounds for every real-time class.

    Parameters
    ----------
    routes_by_class:
        Router-level paths per class name.  Every real-time class in the
        registry must appear (possibly with an empty route list).
    alphas:
        Bandwidth fraction per real-time class; their sum must not
        exceed 1.
    warm_start:
        Optional ``float64[num_classes, num_servers]`` delay matrix known
        to lie below the least fixed point (classes in priority order).
        Adding routes only enlarges the monotone update, so the converged
        matrix of a route subset is a valid warm start — the multi-class
        route selector relies on this.
    """
    rt_classes: List[TrafficClass] = registry.realtime_classes()
    if not rt_classes:
        raise AnalysisError("registry has no real-time class")
    for cls in rt_classes:
        if cls.name not in routes_by_class:
            raise AnalysisError(f"missing routes for class {cls.name!r}")
        if cls.name not in alphas:
            raise AnalysisError(f"missing alpha for class {cls.name!r}")
    alpha_vec = np.asarray(
        [float(alphas[c.name]) for c in rt_classes], dtype=np.float64
    )
    if np.any(alpha_vec <= 0) or np.any(alpha_vec > 1):
        raise AnalysisError("every class alpha must be in (0, 1]")
    if alpha_vec.sum() > 1.0 + 1e-12:
        raise AnalysisError(
            f"total real-time utilization {alpha_vec.sum():.4f} exceeds 1"
        )

    fan_in = resolve_fan_in(graph, n_mode)
    if len(rt_classes) > 1 and np.any(fan_in < 2):
        raise AnalysisError(
            "multi-class analysis requires fan-in >= 2 at every server "
            "(monotonicity of the Theorem 5 update)"
        )

    systems = [
        RouteSystem(
            graph.routes_servers(routes_by_class[c.name]), graph.num_servers
        )
        for c in rt_classes
    ]
    touched = np.stack([s.touched_servers for s in systems])  # bool[i, k]
    bursts = np.asarray([c.burst for c in rt_classes])
    rates = np.asarray([c.rate for c in rt_classes])
    deadlines = np.asarray([c.deadline for c in rt_classes])

    n_classes = len(rt_classes)
    n_servers = graph.num_servers
    if warm_start is not None:
        d = np.asarray(warm_start, dtype=np.float64).copy()
        if d.shape != (n_classes, n_servers):
            raise AnalysisError(
                f"warm start has shape {d.shape}, expected "
                f"({n_classes}, {n_servers})"
            )
    else:
        d = np.zeros((n_classes, n_servers), dtype=np.float64)

    cum_incl = np.cumsum(alpha_vec)            # sum_{l<=i} alpha_l
    cum_excl = cum_incl - alpha_vec            # sum_{l<i} alpha_l

    def update(cur: np.ndarray) -> np.ndarray:
        # Upstream jitter per class along its own routes.
        y = np.stack(
            [systems[i].upstream_delays(cur[i]) for i in range(n_classes)]
        )
        base = bursts[:, None] + rates[:, None] * y          # T_l + rho_l*Y
        a_term = base * (alpha_vec / rates)[:, None]          # A_l
        g_term = base * (
            alpha_vec[:, None]
            / (rates[:, None] * (fan_in[None, :] - alpha_vec[:, None]))
        )
        # Mask classes absent from a server out of the interference sums.
        a_term = np.where(touched, a_term, 0.0)
        g_masked = np.where(touched, g_term, np.inf)

        out = np.empty_like(cur)
        for i in range(n_classes):
            a_sum = a_term[: i + 1].sum(axis=0)
            g_min = g_masked[: i + 1].min(axis=0)
            # Servers where no class <= i is present: delay 0.
            present = np.isfinite(g_min)
            g_min = np.where(present, g_min, 0.0)
            num = a_sum + (cum_incl[i] - 1.0) * g_min
            denom = 1.0 - cum_excl[i]
            d_i = np.where(present, num / denom, 0.0)
            # Class i's delay only matters where class i itself flows.
            out[i] = np.where(touched[i], np.maximum(d_i, 0.0), 0.0)
        return out

    residual = float("inf")
    converged = False
    violated = False
    diverged = False
    iterations = 0
    d_next = update(d)
    if warm_start is not None and np.any(d_next < d - tolerance):
        raise AnalysisError(
            "warm start is above the least fixed point "
            "(update decreased some delay); start from zero instead"
        )
    d = d_next
    for iterations in range(1, max_iterations + 1):
        if early_deadline_exit:
            for i in range(n_classes):
                rd = systems[i].route_delays(d[i])
                if rd.size and float(rd.max()) > deadlines[i]:
                    violated = True
                    break
            if violated:
                break
        if float(d.max(initial=0.0)) > _CEILING:
            diverged = True
            break
        d_next = update(d)
        residual = float(np.abs(d_next - d).max(initial=0.0))
        d = d_next
        if residual <= tolerance:
            converged = True
            break

    per_class = {}
    for i, cls in enumerate(rt_classes):
        per_class[cls.name] = ClassDelays(
            class_name=cls.name,
            deadline=float(deadlines[i]),
            server_delays=d[i],
            route_delays=systems[i].route_delays(d[i]),
        )
    if converged:
        violated = violated or any(
            not c.meets_deadline for c in per_class.values()
        )
    return MultiClassResult(
        per_class=per_class,
        converged=converged,
        deadline_violated=violated,
        diverged=diverged,
        iterations=iterations,
        residual=residual,
    )
