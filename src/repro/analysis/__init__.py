"""Delay analysis: the paper's configuration-time bounds and baselines.

* :mod:`~repro.analysis.beta` — Theorem 3 closed forms.
* :mod:`~repro.analysis.routesystem` — vectorized route compilation.
* :mod:`~repro.analysis.fixedpoint` — the eq. (14) monotone fixed point.
* :mod:`~repro.analysis.delays` — two-class (single real-time class) API.
* :mod:`~repro.analysis.multiclass` — Theorem 5 multi-class bounds.
* :mod:`~repro.analysis.netcalc` — flow-aware general delay formula.
* :mod:`~repro.analysis.verification` — the Figure 2 procedure.
"""

from .acyclic import dependency_topological_order, solve_acyclic
from .beta import (
    beta_coefficient,
    max_stable_alpha_uniform,
    theorem3_delay,
    uniform_worst_delay,
)
from .delays import (
    SingleClassResult,
    resolve_fan_in,
    single_class_delays,
    theorem3_update,
)
from .distribution import (
    aggregate_envelope_delay,
    busy_period_terms,
    even_split,
    lemma2_delay,
    theorem2_worst_delay,
)
from .fixedpoint import (
    DEFAULT_TOLERANCE,
    FixedPointResult,
    solve_fixed_point,
)
from .multiclass import ClassDelays, MultiClassResult, multi_class_delays
from .netcalc import FlowAwareResult, flow_aware_delays, static_priority_delay
from .reshaped import reshaped_delay_bound, reshaped_max_alpha
from .routesystem import GrowableRouteSystem, RouteSystem
from .scratch import FixedPointWorkspace, Theorem3Map
from .sensitivity import (
    RouteSlack,
    SensitivityReport,
    ServerLoad,
    critical_alpha,
    sensitivity_report,
)
from .verification import VerificationResult, verify_assignment

__all__ = [
    "DEFAULT_TOLERANCE",
    "ClassDelays",
    "FixedPointResult",
    "FixedPointWorkspace",
    "FlowAwareResult",
    "GrowableRouteSystem",
    "MultiClassResult",
    "RouteSlack",
    "RouteSystem",
    "SensitivityReport",
    "ServerLoad",
    "SingleClassResult",
    "Theorem3Map",
    "VerificationResult",
    "aggregate_envelope_delay",
    "beta_coefficient",
    "busy_period_terms",
    "dependency_topological_order",
    "critical_alpha",
    "even_split",
    "lemma2_delay",
    "flow_aware_delays",
    "max_stable_alpha_uniform",
    "multi_class_delays",
    "reshaped_delay_bound",
    "reshaped_max_alpha",
    "resolve_fan_in",
    "sensitivity_report",
    "single_class_delays",
    "solve_acyclic",
    "solve_fixed_point",
    "static_priority_delay",
    "theorem2_worst_delay",
    "theorem3_delay",
    "theorem3_update",
    "uniform_worst_delay",
    "verify_assignment",
]
