"""Preallocated scratch state for the delay fixed point.

The route-selection heuristic solves thousands of fixed points per
configuration run, each over nearly the same route system.  Two objects
let the solver run those solves without touching the allocator inside
the iteration loop:

* :class:`FixedPointWorkspace` — a bundle of reusable NumPy buffers
  sized by (servers, occurrences, routes).  ``ensure`` grows them
  geometrically and never shrinks, so a workspace owned by a selector
  amortizes to zero allocation across an entire binary search.
* :class:`Theorem3Map` — the eq. (14) update ``d = beta * (T + rho*Y)``
  as an object instead of a closure.  Calling it is the allocating
  reference path (unchanged semantics); its coefficient arrays are also
  readable by the scratch loop in :mod:`repro.analysis.fixedpoint`,
  which fuses the cumulative-sum pass shared by ``Y`` and the per-route
  delay sums.

The scratch loop performs the same floating-point operations in the
same order as the reference path, so results are bit-identical — the
property tests in ``tests/test_property_fastpaths.py`` assert exact
equality, not approximate.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["FixedPointWorkspace", "Theorem3Map"]


def _grown(size: int, current: int) -> int:
    """Geometric growth target covering ``size`` (amortized O(1) pushes)."""
    cap = max(current, 16)
    while cap < size:
        cap *= 2
    return cap


class FixedPointWorkspace:
    """Reusable buffers for allocation-free fixed-point iteration.

    One workspace serves any sequence of solves; ``ensure`` is called at
    the start of each solve and only reallocates when a dimension first
    exceeds the high-water mark.  Buffers are handed out as views of the
    live prefix, so callers must copy anything they keep (the solver
    copies its result vectors before returning).
    """

    __slots__ = (
        "_servers",
        "_occ",
        "_routes",
        "d",
        "d_next",
        "y",
        "work",
        "d_occ",
        "csum",
        "prefix",
        "base",
        "route_lo",
        "route_hi",
        "route_d",
        "route_cmp",
        "resizes",
    )

    def __init__(self):
        self._servers = 0
        self._occ = 0
        self._routes = 0
        self.resizes = 0
        self._alloc_servers(16)
        self._alloc_occ(64)
        self._alloc_routes(16)

    def _alloc_servers(self, n: int) -> None:
        self._servers = n
        self.d = np.empty(n, dtype=np.float64)
        self.d_next = np.empty(n, dtype=np.float64)
        self.y = np.empty(n, dtype=np.float64)
        self.work = np.empty(n, dtype=np.float64)

    def _alloc_occ(self, n: int) -> None:
        self._occ = n
        self.d_occ = np.empty(n, dtype=np.float64)
        self.csum = np.empty(n + 1, dtype=np.float64)
        self.prefix = np.empty(n, dtype=np.float64)
        self.base = np.empty(n, dtype=np.float64)

    def _alloc_routes(self, n: int) -> None:
        self._routes = n
        self.route_lo = np.empty(n, dtype=np.float64)
        self.route_hi = np.empty(n, dtype=np.float64)
        self.route_d = np.empty(n, dtype=np.float64)
        self.route_cmp = np.empty(n, dtype=bool)

    def ensure(self, num_servers: int, num_occ: int, num_routes: int) -> None:
        """Make every buffer large enough for the given system sizes."""
        if num_servers > self._servers:
            self._alloc_servers(_grown(num_servers, self._servers))
            self.resizes += 1
        if num_occ > self._occ:
            self._alloc_occ(_grown(num_occ, self._occ))
            self.resizes += 1
        if num_routes > self._routes:
            self._alloc_routes(_grown(num_routes, self._routes))
            self.resizes += 1


class Theorem3Map:
    """The monotone eq. (14) map ``Z(d) = beta * (T + rho * Y(d))``.

    ``beta`` is the per-server Theorem 3 coefficient already masked to
    zero on servers no route touches.  Calling the object evaluates the
    reference (allocating) path exactly as the previous closure did; the
    scratch solver reads ``burst``/``rate``/``beta`` directly and fuses
    the kernels instead.
    """

    __slots__ = ("system", "burst", "rate", "beta")

    def __init__(self, system, burst: float, rate: float, beta: np.ndarray):
        self.system = system
        self.burst = float(burst)
        self.rate = float(rate)
        self.beta = beta

    def __call__(self, d: np.ndarray) -> np.ndarray:
        y = self.system.upstream_delays(d)
        return self.beta * (self.burst + self.rate * y)
