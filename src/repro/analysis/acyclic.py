"""Direct (one-pass) delay solution for acyclic route systems.

The Section 5.2 heuristic prefers routes that keep the link-server
dependency graph acyclic precisely because feedback is what makes the
delay system implicit.  This module cashes in the other half of that
observation: **when the dependency graph is acyclic, the least fixed
point of eq. (14) is computable exactly in one topological pass** — no
iteration, no tolerance.

In topological order of the dependency DAG, every server's ``Y_k``
depends only on already-finalized servers:

    Y_k = max over occurrences (r, i) with server(r, i) = k of
          sum_{j < i} d_{server(r, j)}          (all upstream of k in DAG)
    d_k = beta_k * (T + rho * Y_k).

The per-route prefix sums are maintained incrementally while walking each
route, so the pass costs O(total occurrences + E log V) overall.

``solve_acyclic`` raises :class:`AnalysisError` on cyclic systems; use
:func:`repro.analysis.fixedpoint.solve_fixed_point` there.  The
equivalence of the two solvers on acyclic systems is pinned by tests.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import AnalysisError
from .routesystem import RouteSystem

__all__ = ["dependency_topological_order", "solve_acyclic"]


def dependency_topological_order(system: RouteSystem) -> Optional[np.ndarray]:
    """Topological order of the servers under the dependency edges.

    Dependency edge ``a -> b`` exists when some route visits ``a``
    immediately before ``b``.  Returns an ``int64`` permutation of the
    server indices (servers untouched by routes come first), or ``None``
    if the dependency graph contains a cycle.  Kahn's algorithm on CSR-ish
    adjacency built from the occurrence arrays.
    """
    n = system.num_servers
    occ = system.occ_server
    starts = system.route_start
    # Collect unique dependency edges.
    if occ.size:
        tails = []
        heads = []
        for r in range(system.num_routes):
            lo, hi = starts[r], starts[r + 1]
            if hi - lo >= 2:
                tails.append(occ[lo:hi - 1])
                heads.append(occ[lo + 1:hi])
        if tails:
            tail = np.concatenate(tails)
            head = np.concatenate(heads)
            edges = np.unique(
                tail.astype(np.int64) * n + head.astype(np.int64)
            )
            tail = (edges // n).astype(np.int64)
            head = (edges % n).astype(np.int64)
        else:
            tail = head = np.empty(0, dtype=np.int64)
    else:
        tail = head = np.empty(0, dtype=np.int64)

    indegree = np.zeros(n, dtype=np.int64)
    np.add.at(indegree, head, 1)
    # adjacency via sorting by tail
    order_by_tail = np.argsort(tail, kind="stable")
    tail_sorted = tail[order_by_tail]
    head_sorted = head[order_by_tail]
    # index ranges per tail
    first = np.searchsorted(tail_sorted, np.arange(n), side="left")
    last = np.searchsorted(tail_sorted, np.arange(n), side="right")

    stack = list(np.nonzero(indegree == 0)[0])
    out = np.empty(n, dtype=np.int64)
    filled = 0
    while stack:
        v = int(stack.pop())
        out[filled] = v
        filled += 1
        for idx in range(first[v], last[v]):
            w = int(head_sorted[idx])
            indegree[w] -= 1
            if indegree[w] == 0:
                stack.append(w)
    if filled != n:
        return None  # cycle
    return out


def solve_acyclic(
    system: RouteSystem,
    burst: float,
    rate: float,
    beta: np.ndarray,
) -> np.ndarray:
    """Exact per-server delays for an acyclic route system.

    Parameters
    ----------
    beta:
        Per-server Theorem 3 coefficients (zeros for untouched servers
        are fine; see :func:`repro.analysis.delays.theorem3_update`).

    Raises
    ------
    AnalysisError
        If the dependency graph is cyclic.
    """
    if burst < 0 or rate <= 0:
        raise AnalysisError("need burst >= 0 and rate > 0")
    beta = np.asarray(beta, dtype=np.float64)
    if beta.shape != (system.num_servers,):
        raise AnalysisError(
            f"beta has shape {beta.shape}, expected "
            f"({system.num_servers},)"
        )
    order = dependency_topological_order(system)
    if order is None:
        raise AnalysisError(
            "route system has cyclic dependencies; "
            "use the iterative fixed point"
        )
    rank = np.empty(system.num_servers, dtype=np.int64)
    rank[order] = np.arange(system.num_servers)

    occ = system.occ_server
    y = np.zeros(system.num_servers, dtype=np.float64)
    d = np.zeros(system.num_servers, dtype=np.float64)
    if occ.size == 0:
        return d

    # Key facts in a DAG:
    # * every route is a *simple* path (revisiting a server would close a
    #   cycle), so a route has at most one occurrence per server;
    # * consecutive route servers satisfy rank(s_i) < rank(s_{i+1}), so
    #   walking occurrences in server-rank order visits each route's
    #   positions in order — a per-route running prefix is exact.
    # Each rank "group" is therefore all occurrences of ONE server; we
    # finalize Y and d for the whole group before adding d to any route's
    # running prefix, which keeps every contribution final-valued.
    occ_order = np.argsort(rank[occ], kind="stable")
    sorted_servers = occ[occ_order]
    group_bounds = np.concatenate(
        [[0], np.nonzero(np.diff(sorted_servers))[0] + 1,
         [sorted_servers.size]]
    )
    route_running = np.zeros(system.num_routes, dtype=np.float64)
    occ_route = system.occ_route
    for gi in range(group_bounds.size - 1):
        group = occ_order[group_bounds[gi]:group_bounds[gi + 1]]
        s = int(occ[group[0]])
        routes_here = occ_route[group]
        y_s = float(route_running[routes_here].max(initial=0.0))
        y[s] = y_s
        d_s = beta[s] * (burst + rate * y_s)
        d[s] = d_s
        route_running[routes_here] += d_s
    d[~system.touched_servers] = 0.0
    return d
