"""Configuration-time delay bounds for the two-class system (Section 5.1).

This is the paper's base model: one real-time class (plus implicit
best-effort traffic, which static priority makes invisible to the analysis).
:func:`single_class_delays` runs the full Figure 2 pipeline for a set of
routes:

1. build the Theorem 3 update map ``d_k = beta_k * (T + rho * Y_k)``,
2. iterate to the least fixed point (:mod:`repro.analysis.fixedpoint`),
3. report per-server and per-route end-to-end delay bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, List, Optional, Sequence

import numpy as np

from ..errors import AnalysisError
from ..topology.servergraph import LinkServerGraph
from ..traffic.classes import TrafficClass
from .beta import beta_coefficient
from .fixedpoint import (
    DEFAULT_TOLERANCE,
    FixedPointResult,
    solve_fixed_point,
)
from .routesystem import RouteSystem
from .scratch import FixedPointWorkspace, Theorem3Map

__all__ = [
    "resolve_fan_in",
    "theorem3_update",
    "SingleClassResult",
    "single_class_delays",
]


def resolve_fan_in(
    graph: LinkServerGraph, n_mode: str = "uniform"
) -> np.ndarray:
    """Per-server fan-in vector under the chosen convention.

    ``"uniform"`` (paper): every server uses the network-wide maximum
    fan-in ``N``.  ``"per_server"`` (extension): each server uses its own
    router's actual input-link count — a tighter, still-safe bound.
    """
    if n_mode == "uniform":
        n = graph.uniform_fan_in()
        return np.full(graph.num_servers, n, dtype=np.float64)
    if n_mode == "per_server":
        return graph.fan_in.astype(np.float64)
    raise AnalysisError(
        f"unknown n_mode {n_mode!r}; expected 'uniform' or 'per_server'"
    )


def theorem3_update(
    system: RouteSystem,
    burst: float,
    rate: float,
    alpha: float,
    fan_in: np.ndarray,
    *,
    beta_full: Optional[np.ndarray] = None,
) -> Theorem3Map:
    """The monotone map ``Z`` of eq. (14) for the two-class system.

    Servers not traversed by any route carry no real-time traffic and keep
    zero delay; this keeps reported vectors clean and does not affect any
    route sum.

    Returns a callable :class:`~repro.analysis.scratch.Theorem3Map`; the
    fixed-point solver recognizes it and, when handed a workspace, runs
    the allocation-free scratch path.  ``beta_full`` optionally supplies a
    precomputed unmasked ``beta_coefficient(alpha, rate, fan_in)`` so
    callers probing many route sets at one utilization skip recomputing it
    per trial.
    """
    if burst < 0 or rate <= 0:
        raise AnalysisError("need burst >= 0 and rate > 0")
    if beta_full is None:
        beta_full = np.asarray(beta_coefficient(alpha, rate, fan_in))
    if beta_full.shape != (system.num_servers,):
        raise AnalysisError(
            f"fan_in shape {beta_full.shape} does not match "
            f"{system.num_servers} servers"
        )
    beta = np.where(system.touched_servers, beta_full, 0.0)
    return Theorem3Map(system, burst, rate, beta)


@dataclass
class SingleClassResult:
    """Delay bounds for the real-time class over a fixed route set.

    Wraps the raw :class:`FixedPointResult` with the route/server context
    needed to interpret it.
    """

    fixed_point: FixedPointResult
    system: RouteSystem
    alpha: float
    deadline: float

    @property
    def safe(self) -> bool:
        """All routes converged under the deadline."""
        return self.fixed_point.safe

    @property
    def server_delays(self) -> np.ndarray:
        return self.fixed_point.delays

    @property
    def route_delays(self) -> np.ndarray:
        return self.fixed_point.route_delays

    @property
    def worst_route_delay(self) -> float:
        rd = self.fixed_point.route_delays
        return float(rd.max()) if rd.size else 0.0

    @property
    def slack(self) -> float:
        """Deadline minus worst end-to-end delay (negative if violated)."""
        return self.deadline - self.worst_route_delay

    def violating_routes(self) -> np.ndarray:
        """Indices of routes whose bound exceeds the deadline."""
        return np.nonzero(self.fixed_point.route_delays > self.deadline)[0]


def single_class_delays(
    graph: LinkServerGraph,
    router_paths: Sequence[Sequence[Hashable]],
    traffic_class: TrafficClass,
    alpha: float,
    *,
    n_mode: str = "uniform",
    warm_start: Optional[np.ndarray] = None,
    early_deadline_exit: bool = True,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = 100_000,
    workspace: Optional[FixedPointWorkspace] = None,
) -> SingleClassResult:
    """Compute configuration-time delay bounds for one real-time class.

    Parameters
    ----------
    graph:
        Link-server expansion of the topology.
    router_paths:
        One router-level path per (source, destination) pair.
    traffic_class:
        The real-time class (must have a finite deadline).
    alpha:
        Link-bandwidth fraction allocated to the class.
    n_mode:
        ``"uniform"`` (paper) or ``"per_server"`` fan-in convention.
    warm_start:
        Optional per-server delay vector known to lie below the least
        fixed point (e.g. the solution for a subset of the routes, or for
        the same routes at a lower ``alpha``).
    early_deadline_exit:
        Stop as soon as some route provably misses the deadline.
    workspace:
        Optional scratch buffers enabling the allocation-free solver path
        (reused across calls, e.g. by the binary search over ``alpha``).
    """
    if not traffic_class.is_realtime:
        raise AnalysisError(
            f"class {traffic_class.name!r} has no finite deadline"
        )
    server_routes = graph.routes_servers(router_paths)
    system = RouteSystem(server_routes, graph.num_servers)
    fan_in = resolve_fan_in(graph, n_mode)
    update = theorem3_update(
        system, traffic_class.burst, traffic_class.rate, alpha, fan_in
    )
    deadlines = (
        np.full(system.num_routes, traffic_class.deadline)
        if early_deadline_exit
        else None
    )
    result = solve_fixed_point(
        system,
        update,
        initial=warm_start,
        deadlines=deadlines,
        tolerance=tolerance,
        max_iterations=max_iterations,
        workspace=workspace,
    )
    if not early_deadline_exit and result.converged:
        # Deadline check still applies; record it on the result.
        result.deadline_violated = bool(
            np.any(result.route_delays > traffic_class.deadline)
        )
    return SingleClassResult(
        fixed_point=result,
        system=system,
        alpha=alpha,
        deadline=traffic_class.deadline,
    )
