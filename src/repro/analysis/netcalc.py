"""Flow-aware delay analysis (the paper's *general delay formula*).

Equations (2)-(3) — and (24) for multiple classes — compute worst-case
delays from the **actual** set of established flows: each flow's envelope is
propagated along its route (shifted by the upstream delays it accumulates,
Cruz's Theorem 2.1), aggregated per server and class, and the static-priority
delay is extracted.  The paper's point is that this analysis *needs run-time
flow information*, which makes IntServ-style admission control expensive;
it is implemented here as

* the correctness baseline the utilization-based bound must dominate
  (a configuration-time bound can never be smaller than the flow-aware
  delay of a compliant flow population), and
* the cost baseline for the scalability benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError
from ..topology.servergraph import LinkServerGraph
from ..traffic.classes import ClassRegistry, TrafficClass
from ..traffic.envelope import Envelope
from ..traffic.flows import FlowSpec

__all__ = ["FlowAwareResult", "flow_aware_delays", "static_priority_delay"]

_CEILING = 1e5  # seconds
_TOL = 1e-9


def static_priority_delay(
    higher: Sequence[Envelope],
    own: Envelope,
    capacity: float,
    *,
    tolerance: float = _TOL,
    max_iterations: int = 10_000,
) -> float:
    """Worst-case delay of one class under static priority (eq. 24).

    Solves the scalar fixed point
    ``d = (1/C) * max_I ( sum_l H_l(I + d) + F(I) - C*I )``
    where ``H_l`` are the higher-priority aggregate envelopes and ``F`` the
    class's own aggregate.  With no higher-priority traffic this reduces to
    the FIFO bound ``F.max_delay(C)`` (eq. 3).
    """
    if capacity <= 0:
        raise AnalysisError(f"capacity must be positive, got {capacity}")
    total_rate = own.long_term_rate + sum(h.long_term_rate for h in higher)
    if total_rate > capacity * (1 + 1e-9):
        raise AnalysisError(
            f"unstable server: aggregate rate {total_rate:.3e} exceeds "
            f"capacity {capacity:.3e}"
        )
    if not higher:
        return own.max_delay(capacity)
    d = 0.0
    for _ in range(max_iterations):
        shifted = sum((h.shift(d) for h in higher), Envelope.zero())
        d_next = (shifted + own).max_delay(capacity)
        if d_next > _CEILING:
            raise AnalysisError(
                "static-priority delay iteration diverged "
                f"(exceeded {_CEILING} s)"
            )
        if abs(d_next - d) <= tolerance:
            return d_next
        d = d_next
    raise AnalysisError(
        f"static-priority delay did not converge in {max_iterations} "
        "iterations"
    )


@dataclass
class FlowAwareResult:
    """Outcome of the flow-aware (IntServ-style) analysis.

    Attributes
    ----------
    server_delays:
        ``{class_name: float64[S]}`` worst-case queueing delay per server.
    flow_delays:
        ``{flow_id: float}`` end-to-end worst-case delay per flow.
    iterations:
        Outer propagation iterations until the network-wide fixed point.
    """

    server_delays: Dict[str, np.ndarray]
    flow_delays: Dict[Hashable, float]
    iterations: int
    converged: bool

    def meets_deadlines(self, registry: ClassRegistry,
                        flows: Sequence[FlowSpec]) -> bool:
        """True if every flow's bound is within its class deadline."""
        if not self.converged:
            return False
        for flow in flows:
            deadline = registry.get(flow.class_name).deadline
            if self.flow_delays[flow.flow_id] > deadline:
                return False
        return True


def flow_aware_delays(
    graph: LinkServerGraph,
    flows: Sequence[FlowSpec],
    registry: ClassRegistry,
    *,
    clamp_ingress: bool = True,
    tolerance: float = 1e-7,
    max_iterations: int = 1_000,
) -> FlowAwareResult:
    """Run the iterative flow-aware analysis over an explicit flow set.

    Every flow must carry an explicit ``route``.  Only real-time classes
    are analyzed (best-effort traffic cannot delay them under static
    priority).

    The outer iteration propagates per-flow upstream delays and recomputes
    aggregate envelopes until the per-server delays stabilize; like the
    utilization-based fixed point it is monotone from zero, so it converges
    to the least fixed point when one exists and reports
    ``converged=False`` on divergence.
    """
    rt_classes = registry.realtime_classes()
    rt_names = [c.name for c in rt_classes]
    for f in flows:
        if f.route is None:
            raise AnalysisError(f"flow {f.flow_id!r} has no route")
        if f.class_name not in registry:
            raise AnalysisError(
                f"flow {f.flow_id!r} references unknown class "
                f"{f.class_name!r}"
            )

    rt_flows = [f for f in flows if f.class_name in rt_names]
    # Pre-translate routes and source envelopes.
    flow_servers: List[np.ndarray] = []
    flow_env: List[Envelope] = []
    flow_cls_idx: List[int] = []
    for f in rt_flows:
        servers = graph.route_servers(f.route)
        cls = registry.get(f.class_name)
        line = (
            float(graph.capacities[servers[0]]) if clamp_ingress else None
        )
        flow_servers.append(servers)
        flow_env.append(cls.envelope(line))
        flow_cls_idx.append(rt_names.index(f.class_name))

    n_servers = graph.num_servers
    n_classes = len(rt_classes)
    d = np.zeros((n_classes, n_servers), dtype=np.float64)

    # Which (class, server) pairs carry traffic at all.
    active: Dict[Tuple[int, int], bool] = {}
    for ci, servers in zip(flow_cls_idx, flow_servers):
        for s in servers:
            active[(ci, int(s))] = True

    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        # 1. Aggregate shifted envelopes per (class, server, input link):
        #    eq. (2) sums flows per input link, and no input link can
        #    deliver faster than its wire, so each per-input aggregate is
        #    clamped at the input link's capacity before summing over
        #    links (the structure behind eq. (3)).
        per_input: Dict[Tuple[int, int, int], Envelope] = {}
        input_caps: Dict[Tuple[int, int, int], float] = {}
        for ci, servers, env in zip(flow_cls_idx, flow_servers, flow_env):
            upstream = 0.0
            prev = -1  # ingress (host side)
            for s in servers:
                s = int(s)
                shifted = env.shift(upstream)
                key = (ci, s, prev)
                agg = per_input.get(key)
                per_input[key] = shifted if agg is None else agg + shifted
                input_caps[key] = float(
                    graph.capacities[prev if prev >= 0 else s]
                )
                upstream += float(d[ci, s])
                prev = s
        aggregates: Dict[Tuple[int, int], Envelope] = {}
        for (ci, s, _prev), env_sum in per_input.items():
            clamped = env_sum.clamp_rate(input_caps[(ci, s, _prev)])
            agg = aggregates.get((ci, s))
            aggregates[(ci, s)] = (
                clamped if agg is None else agg + clamped
            )

        # 2. Per-server static-priority delays.
        d_next = np.zeros_like(d)
        for (ci, s) in active:
            own = aggregates.get((ci, s))
            if own is None:
                continue
            higher = [
                aggregates[(lj, s)]
                for lj in range(ci)
                if (lj, s) in aggregates
            ]
            d_next[ci, s] = static_priority_delay(
                higher, own, float(graph.capacities[s])
            )

        residual = float(np.abs(d_next - d).max(initial=0.0))
        d = d_next
        if float(d.max(initial=0.0)) > _CEILING:
            break
        if residual <= tolerance:
            converged = True
            break

    flow_delays: Dict[Hashable, float] = {}
    for f, ci, servers in zip(rt_flows, flow_cls_idx, flow_servers):
        flow_delays[f.flow_id] = float(d[ci, servers].sum())
    server_delays = {name: d[i] for i, name in enumerate(rt_names)}
    return FlowAwareResult(
        server_delays=server_delays,
        flow_delays=flow_delays,
        iterations=iterations,
        converged=converged,
    )
