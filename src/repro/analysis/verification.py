"""Verification of safe utilization assignments (Figure 2).

The first of the paper's three configuration procedures: given a topology,
a set of routes and a utilization assignment, decide whether every class's
end-to-end deadline is guaranteed.  This module is the user-facing wrapper
over :mod:`repro.analysis.delays` (two-class systems) and
:mod:`repro.analysis.multiclass` (general systems); it always runs the
multi-class machinery when more than one real-time class is registered and
the fast single-class path otherwise — tests pin both paths to each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..errors import AnalysisError, ConfigurationError
from ..topology.network import Network
from ..topology.servergraph import LinkServerGraph
from ..traffic.classes import ClassRegistry, TrafficClass
from .delays import single_class_delays
from .multiclass import multi_class_delays

__all__ = ["VerificationResult", "verify_assignment"]

RoutesInput = Union[
    Sequence[Sequence[Hashable]],
    Mapping[str, Sequence[Sequence[Hashable]]],
]


@dataclass
class VerificationResult:
    """Outcome of the Figure 2 procedure.

    Attributes
    ----------
    success:
        ``True`` iff all deadline requirements are guaranteed (the
        procedure's SUCCESS/FAILURE verdict).
    reason:
        Human-readable explanation on failure ("" on success).
    worst_route_delay:
        ``{class_name: worst end-to-end bound in seconds}``.
    slack:
        ``{class_name: deadline - worst bound}`` (negative when violated).
    iterations:
        Fixed-point iterations spent.
    """

    success: bool
    reason: str
    worst_route_delay: Dict[str, float]
    slack: Dict[str, float]
    iterations: int
    server_delays: Dict[str, np.ndarray] = field(repr=False, default_factory=dict)
    route_delays: Dict[str, np.ndarray] = field(repr=False, default_factory=dict)


def _normalize_routes(
    routes: RoutesInput, rt_classes: List[TrafficClass]
) -> Dict[str, List[Sequence[Hashable]]]:
    """Accept a shared route list or a per-class mapping."""
    if isinstance(routes, Mapping):
        out = {}
        for cls in rt_classes:
            if cls.name not in routes:
                raise ConfigurationError(
                    f"no routes given for class {cls.name!r}"
                )
            out[cls.name] = list(routes[cls.name])
        return out
    shared = list(routes)
    return {cls.name: shared for cls in rt_classes}


def verify_assignment(
    network: Union[Network, LinkServerGraph],
    routes: RoutesInput,
    registry: ClassRegistry,
    alphas: Mapping[str, float],
    *,
    n_mode: str = "uniform",
    tolerance: float = 1e-9,
    max_iterations: int = 100_000,
) -> VerificationResult:
    """Run the Figure 2 verification procedure.

    Parameters
    ----------
    network:
        Topology (or its pre-built link-server expansion).
    routes:
        Either one route list shared by all classes, or a per-class-name
        mapping of route lists.  Routes are router-level paths.
    registry:
        Traffic classes; at least one must be real-time.
    alphas:
        Per-class utilization assignment for every real-time class.

    Returns
    -------
    VerificationResult
        With ``success=True`` iff every class's worst-case end-to-end
        delay bound is within its deadline for every route.
    """
    graph = (
        network
        if isinstance(network, LinkServerGraph)
        else LinkServerGraph(network)
    )
    rt_classes = registry.realtime_classes()
    if not rt_classes:
        raise ConfigurationError("registry has no real-time class to verify")
    for cls in rt_classes:
        if cls.name not in alphas:
            raise ConfigurationError(f"missing alpha for class {cls.name!r}")
        a = float(alphas[cls.name])
        if not (0.0 < a <= 1.0):
            raise ConfigurationError(
                f"alpha for class {cls.name!r} must be in (0, 1], got {a}"
            )
    routes_by_class = _normalize_routes(routes, rt_classes)

    if len(rt_classes) == 1:
        cls = rt_classes[0]
        result = single_class_delays(
            graph,
            routes_by_class[cls.name],
            cls,
            float(alphas[cls.name]),
            n_mode=n_mode,
            tolerance=tolerance,
            max_iterations=max_iterations,
        )
        fp = result.fixed_point
        if fp.diverged:
            reason = (
                f"delay fixed point diverged for class {cls.name!r}: "
                "utilization too high for this route set"
            )
        elif fp.deadline_violated:
            reason = (
                f"class {cls.name!r} misses its deadline: worst route "
                f"bound {result.worst_route_delay * 1e3:.2f} ms "
                f"> {cls.deadline * 1e3:.2f} ms"
            )
        elif not fp.converged:
            reason = "fixed point did not converge within iteration budget"
        else:
            reason = ""
        return VerificationResult(
            success=fp.safe,
            reason=reason,
            worst_route_delay={cls.name: result.worst_route_delay},
            slack={cls.name: result.slack},
            iterations=fp.iterations,
            server_delays={cls.name: fp.delays},
            route_delays={cls.name: fp.route_delays},
        )

    mc = multi_class_delays(
        graph,
        routes_by_class,
        registry,
        alphas,
        n_mode=n_mode,
        tolerance=tolerance,
        max_iterations=max_iterations,
    )
    worst = {n: c.worst_route_delay for n, c in mc.per_class.items()}
    slack = {n: c.slack for n, c in mc.per_class.items()}
    if mc.diverged:
        reason = "multi-class delay fixed point diverged"
    elif mc.deadline_violated or not mc.safe:
        misses = [
            n for n, c in mc.per_class.items() if not c.meets_deadline
        ]
        reason = (
            f"classes miss deadlines: {misses}"
            if misses
            else "deadline violated during iteration"
        )
    elif not mc.converged:
        reason = "fixed point did not converge within iteration budget"
    else:
        reason = ""
    return VerificationResult(
        success=mc.safe,
        reason=reason,
        worst_route_delay=worst,
        slack=slack,
        iterations=mc.iterations,
        server_delays={n: c.server_delays for n, c in mc.per_class.items()},
        route_delays={n: c.route_delays for n, c in mc.per_class.items()},
    )
