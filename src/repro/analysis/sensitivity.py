"""What-if analysis of a verified configuration.

Operators of a configured network want to know more than SUCCESS/FAILURE:

* which routes are *critical* (least deadline slack)?
* which servers carry the delay (bottlenecks)?
* how much higher could the utilization go before the certificate breaks
  (:func:`critical_alpha`), and how sensitive is the worst delay to small
  utilization changes?

Everything here is built from the same fixed point as verification, so
the numbers are certificates, not estimates.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError
from ..topology.servergraph import LinkServerGraph
from ..traffic.classes import TrafficClass
from .delays import SingleClassResult, single_class_delays

__all__ = [
    "RouteSlack",
    "ServerLoad",
    "SensitivityReport",
    "sensitivity_report",
    "critical_alpha",
]


@dataclass(frozen=True)
class RouteSlack:
    """Deadline slack of one route under the verified bound."""

    route_index: int
    path: Tuple[Hashable, ...]
    delay_bound: float
    slack: float

    @property
    def utilization_of_deadline(self) -> float:
        """Fraction of the deadline budget this route's bound consumes."""
        return self.delay_bound / (self.delay_bound + self.slack)


@dataclass(frozen=True)
class ServerLoad:
    """One server's contribution to the configured delays."""

    server_index: int
    link: Tuple[Hashable, Hashable]
    delay_bound: float
    routes_through: int


@dataclass
class SensitivityReport:
    """Bundled what-if view of a single-class configuration."""

    alpha: float
    deadline: float
    critical_routes: List[RouteSlack]
    bottleneck_servers: List[ServerLoad]
    min_slack: float
    worst_delay: float

    def render(self) -> str:
        lines = [
            f"sensitivity at alpha = {self.alpha:.3f} "
            f"(deadline {self.deadline * 1e3:.0f} ms)",
            f"  worst route bound : {self.worst_delay * 1e3:.2f} ms",
            f"  minimum slack     : {self.min_slack * 1e3:.2f} ms",
            "  tightest routes:",
        ]
        for r in self.critical_routes:
            lines.append(
                f"    #{r.route_index}  "
                f"{' -> '.join(str(p) for p in r.path)}  "
                f"bound {r.delay_bound * 1e3:.2f} ms "
                f"(slack {r.slack * 1e3:.2f} ms)"
            )
        lines.append("  hottest servers:")
        for s in self.bottleneck_servers:
            lines.append(
                f"    {s.link[0]} -> {s.link[1]}  "
                f"d_k {s.delay_bound * 1e3:.3f} ms, "
                f"{s.routes_through} routes"
            )
        return "\n".join(lines)


def sensitivity_report(
    graph: LinkServerGraph,
    router_paths: Sequence[Sequence[Hashable]],
    traffic_class: TrafficClass,
    alpha: float,
    *,
    n_mode: str = "uniform",
    top: int = 5,
) -> SensitivityReport:
    """Critical routes and bottleneck servers of a verified assignment."""
    result = single_class_delays(
        graph, router_paths, traffic_class, alpha, n_mode=n_mode
    )
    if not result.safe:
        raise AnalysisError(
            "sensitivity analysis requires a safe configuration; "
            "verification failed at this alpha"
        )
    deadline = traffic_class.deadline
    slacks = deadline - result.route_delays
    order = np.argsort(slacks)
    critical = [
        RouteSlack(
            route_index=int(i),
            path=tuple(router_paths[int(i)]),
            delay_bound=float(result.route_delays[int(i)]),
            slack=float(slacks[int(i)]),
        )
        for i in order[:top]
    ]
    counts = result.system.server_route_count()
    hot = np.argsort(result.server_delays)[::-1]
    bottlenecks = [
        ServerLoad(
            server_index=int(k),
            link=graph.server_key(int(k)),
            delay_bound=float(result.server_delays[int(k)]),
            routes_through=int(counts[int(k)]),
        )
        for k in hot[:top]
        if result.server_delays[int(k)] > 0
    ]
    return SensitivityReport(
        alpha=alpha,
        deadline=deadline,
        critical_routes=critical,
        bottleneck_servers=bottlenecks,
        min_slack=float(slacks.min()) if slacks.size else deadline,
        worst_delay=result.worst_route_delay,
    )


def critical_alpha(
    graph: LinkServerGraph,
    router_paths: Sequence[Sequence[Hashable]],
    traffic_class: TrafficClass,
    *,
    n_mode: str = "uniform",
    low: float = 1e-3,
    high: float = 1.0,
    resolution: float = 1e-3,
) -> float:
    """Largest utilization for which these fixed routes verify.

    Bisection on the (monotone) verification verdict.  Returns ``low``'s
    floor if even that fails (raises) and ``high`` if everything passes.
    """
    if not (0 < low < high <= 1.0):
        raise AnalysisError("need 0 < low < high <= 1")

    def safe(alpha: float) -> bool:
        return single_class_delays(
            graph, router_paths, traffic_class, alpha, n_mode=n_mode
        ).safe

    if not safe(low):
        raise AnalysisError(
            f"routes do not verify even at alpha = {low}"
        )
    if safe(high):
        return high
    lo, hi = low, high
    while hi - lo > resolution:
        mid = 0.5 * (lo + hi)
        if safe(mid):
            lo = mid
        else:
            hi = mid
    return lo
