"""Closed-form pieces of the configuration-time delay bound.

Theorem 3 of the paper bounds the worst-case queueing delay of the
real-time class at a server with ``N`` input links, class utilization
``alpha`` and class envelope ``(T, rho)`` as

    d_k  <=  (T + rho*Y_k) * alpha/rho  +  (alpha - 1) * alpha*(T + rho*Y_k) / (rho*(N - alpha))

which factors into the form used throughout this library::

    d_k = beta * (T + rho * Y_k),      beta = alpha*(N - 1) / (rho*(N - alpha))

``beta`` captures everything about the server (fan-in and allocated
utilization); the traffic term ``T + rho*Y_k`` captures the class envelope
inflated by upstream jitter ``Y_k`` (Theorem 1).
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..errors import AnalysisError

__all__ = [
    "beta_coefficient",
    "theorem3_delay",
    "uniform_worst_delay",
    "max_stable_alpha_uniform",
]

ArrayLike = Union[float, np.ndarray]


def _validate_alpha(alpha: float) -> float:
    alpha = float(alpha)
    if not (0.0 < alpha <= 1.0):
        raise AnalysisError(
            f"class utilization must be in (0, 1], got {alpha}"
        )
    return alpha


def beta_coefficient(
    alpha: float, rho: float, fan_in: ArrayLike
) -> ArrayLike:
    """The Theorem 3 coefficient ``beta = alpha*(N-1)/(rho*(N-alpha))``.

    Accepts scalar or array ``fan_in`` (per-server ``N_k``); returns the
    matching shape.  ``fan_in = 1`` yields ``beta = 0`` — a single input
    link at most fills the output link, so no queueing builds up.
    """
    alpha = _validate_alpha(alpha)
    if rho <= 0:
        raise AnalysisError(f"rate rho must be positive, got {rho}")
    n = np.asarray(fan_in, dtype=np.float64)
    if np.any(n < 1):
        raise AnalysisError("server fan-in must be >= 1")
    out = alpha * (n - 1.0) / (rho * (n - alpha))
    return float(out) if np.isscalar(fan_in) else out


def theorem3_delay(
    burst: float, rate: float, alpha: float, fan_in: ArrayLike, y: ArrayLike
) -> ArrayLike:
    """Theorem 3: ``d_k = beta * (T + rho * Y_k)`` (vectorized)."""
    if burst < 0:
        raise AnalysisError(f"burst must be >= 0, got {burst}")
    beta = beta_coefficient(alpha, rate, fan_in)
    y_arr = np.asarray(y, dtype=np.float64)
    if np.any(y_arr < 0):
        raise AnalysisError("upstream delay Y must be >= 0")
    out = np.asarray(beta) * (burst + rate * y_arr)
    if np.isscalar(y) and np.isscalar(fan_in):
        return float(out)
    return out


def uniform_worst_delay(
    burst: float,
    rate: float,
    alpha: float,
    fan_in: int,
    diameter: int,
) -> float:
    """Topology-independent per-server worst-case delay (paper eq. 17).

    Solves ``d = beta * (T + rho * (L - 1) * d)`` — the uniform bound used
    in the Theorem 4 lower-bound derivation, valid when
    ``beta * rho * (L - 1) < 1``.  Returns ``inf`` when the recursion
    diverges (the utilization is too high for any route selection of
    diameter ``L`` to be provably safe by this bound).
    """
    if diameter < 1:
        raise AnalysisError(f"diameter must be >= 1, got {diameter}")
    beta = beta_coefficient(alpha, rate, fan_in)
    feedback = beta * rate * (diameter - 1)
    if feedback >= 1.0:
        return float("inf")
    return beta * burst / (1.0 - feedback)


def max_stable_alpha_uniform(
    rate: float, fan_in: int, diameter: int
) -> float:
    """Largest ``alpha`` for which :func:`uniform_worst_delay` is finite.

    Solves ``beta(alpha) * rho * (L - 1) = 1`` for ``alpha``:
    ``alpha*(N-1)*(L-1) = N - alpha`` gives
    ``alpha = N / ((N-1)*(L-1) + 1)``.  For ``L = 1`` every
    ``alpha <= 1`` is stable (no feedback), so 1.0 is returned.
    """
    if diameter < 1:
        raise AnalysisError(f"diameter must be >= 1, got {diameter}")
    if fan_in < 1:
        raise AnalysisError(f"fan-in must be >= 1, got {fan_in}")
    if rate <= 0:
        raise AnalysisError(f"rate must be positive, got {rate}")
    if diameter == 1 or fan_in == 1:
        return 1.0
    return min(1.0, fan_in / ((fan_in - 1) * (diameter - 1) + 1))
