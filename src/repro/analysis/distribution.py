"""Flow-distribution delay bounds (Lemma 1, Lemma 2, Theorem 2).

The step *between* the paper's general delay formula and the
configuration-time Theorem 3 bound: for a server whose input links carry
known flow counts ``n_1, ..., n_N`` (all flows sharing the class envelope
inflated by upstream jitter ``Y``), the worst-case delay is

    d = [ (T + rho*Y) * M  +  (rho*M - C) * tau_max ] / C        (eq. 39)

with ``M = sum(n_j)`` and the busy-period terms (eq. 37)

    tau_j = n_j * (T + rho*Y) / (C - n_j * rho),   tau_max = max_j tau_j.

Theorem 2 then shows the bound is maximized when the admissible flow
population ``M = alpha*C/rho`` spreads *evenly* over the input links —
which is exactly how Theorem 3 drops the dependency on the counts.

This module implements the chain explicitly so that

* run-time "exact" admission decisions can price a concrete distribution
  (cheaper than full network calculus, tighter than Theorem 3), and
* the test suite can verify each theorem against the independent
  envelope machinery (the eq. 39 closed form equals the Cruz-style
  aggregate-envelope delay) and against each other
  (distribution bound <= even-split bound <= Theorem 3).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import AnalysisError
from ..traffic.envelope import Envelope, leaky_bucket_envelope
from .beta import theorem3_delay

__all__ = [
    "busy_period_terms",
    "lemma2_delay",
    "even_split",
    "theorem2_worst_delay",
    "aggregate_envelope_delay",
]


def _validate(counts: np.ndarray, burst: float, rate: float, y: float,
              capacity: float) -> None:
    if counts.ndim != 1 or counts.size == 0:
        raise AnalysisError("need a 1-D, non-empty flow-count vector")
    if np.any(counts < 0):
        raise AnalysisError("flow counts must be non-negative")
    if burst <= 0 or rate <= 0:
        raise AnalysisError("burst and rate must be positive")
    if y < 0:
        raise AnalysisError("upstream delay Y must be >= 0")
    if capacity <= 0:
        raise AnalysisError("capacity must be positive")
    if float(counts.sum()) * rate >= capacity:
        raise AnalysisError(
            "unstable server: aggregate flow rate reaches capacity "
            f"({counts.sum()} flows x {rate} b/s vs C = {capacity} b/s)"
        )
    if np.any(counts * rate >= capacity):
        # tau_j would be negative/undefined; also physically a single
        # input link cannot deliver beyond C anyway, so n_j*rho < C.
        raise AnalysisError(
            "some input link's flow rate reaches capacity; "
            "no admissible distribution places that many flows on one link"
        )


def busy_period_terms(
    flow_counts: Sequence[int],
    burst: float,
    rate: float,
    upstream_delay: float,
    capacity: float,
) -> np.ndarray:
    """The paper's ``tau_j`` (eq. 37) for every input link."""
    counts = np.asarray(flow_counts, dtype=np.float64)
    _validate(counts, burst, rate, upstream_delay, capacity)
    inflated = burst + rate * upstream_delay
    return counts * inflated / (capacity - counts * rate)


def lemma2_delay(
    flow_counts: Sequence[int],
    burst: float,
    rate: float,
    upstream_delay: float,
    capacity: float,
) -> float:
    """Worst-case delay for a concrete flow distribution (eq. 39).

    ``d = [ (T + rho*Y)*M + (rho*M - C)*tau_max ] / C`` — exact for the
    aggregate of per-link-clamped inflated leaky buckets (validated
    against :func:`aggregate_envelope_delay` by the test suite).
    """
    counts = np.asarray(flow_counts, dtype=np.float64)
    _validate(counts, burst, rate, upstream_delay, capacity)
    m = float(counts.sum())
    if m == 0.0:
        return 0.0
    tau_max = float(
        busy_period_terms(
            flow_counts, burst, rate, upstream_delay, capacity
        ).max()
    )
    inflated = burst + rate * upstream_delay
    return (inflated * m + (rate * m - capacity) * tau_max) / capacity


def aggregate_envelope_delay(
    flow_counts: Sequence[int],
    burst: float,
    rate: float,
    upstream_delay: float,
    capacity: float,
) -> float:
    """The same quantity via the independent envelope machinery.

    Each input link ``j`` contributes the aggregate of ``n_j`` inflated
    leaky buckets, clamped at the link rate ``C`` (Lemma 1 / eq. 36); the
    delay is the FIFO bound of the summed envelope.  Used by the tests to
    pin eq. 39.
    """
    counts = np.asarray(flow_counts, dtype=np.float64)
    _validate(counts, burst, rate, upstream_delay, capacity)
    inflated = burst + rate * upstream_delay
    total = Envelope.zero()
    for n in counts:
        n = float(n)
        if n == 0.0:
            continue
        link = leaky_bucket_envelope(n * inflated, n * rate).clamp_rate(
            capacity
        )
        total = total + link
    return total.max_delay(capacity)


def even_split(total_flows: int, num_links: int) -> np.ndarray:
    """The Theorem 2 worst-case distribution: flows spread evenly.

    Returns integer counts that sum to ``total_flows`` with maximum count
    ``ceil(total_flows / num_links)`` (eq. 49's construction).
    """
    if num_links < 1:
        raise AnalysisError("need at least one input link")
    if total_flows < 0:
        raise AnalysisError("total flow count must be >= 0")
    base = total_flows // num_links
    remainder = total_flows % num_links
    counts = np.full(num_links, base, dtype=np.int64)
    counts[:remainder] += 1
    return counts


def theorem2_worst_delay(
    total_flows: int,
    num_links: int,
    burst: float,
    rate: float,
    upstream_delay: float,
    capacity: float,
) -> float:
    """The delay bound at the Theorem 2 worst-case (even) distribution.

    For the maximal admissible population ``M = alpha*C/rho`` this
    approaches the Theorem 3 closed form from below (the continuous
    relaxation drops the ceiling, see the paper's footnote 2); for any
    admissible distribution of the same total it dominates
    :func:`lemma2_delay`.
    """
    return lemma2_delay(
        even_split(total_flows, num_links),
        burst,
        rate,
        upstream_delay,
        capacity,
    )
