"""The delay fixed point (Section 5.1.1).

The per-server delay bounds depend circularly on each other through the
upstream-jitter terms ``Y_k`` (eq. 6): ``d = Z(d)`` (eq. 14).  Because
``Z`` is monotone nondecreasing and the iteration starts from the
zero-jitter vector ``d0 = beta * T <= Z(d0)``, the iterates increase
monotonically and converge to the *least* fixed point whenever one exists.
Two practical consequences are exploited here:

* **warm starts** — any vector known to be below the least fixed point
  (e.g. the converged solution of a subset of the routes) is a valid
  starting point and strictly reduces iteration count during route
  selection;
* **sound early failure** — per-route end-to-end delays are monotone in
  the iterates, so as soon as some route exceeds its deadline it will
  always exceed it, and verification can stop immediately.

A diverging iteration (utilization too high for this route structure)
is reported as ``converged=False`` with ``diverged=True`` once the iterates
cross a configurable ceiling, or when the iteration budget is exhausted.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..errors import AnalysisError
from ..obs import DEFAULT_ITERATION_BUCKETS, OBS
from .routesystem import RouteSystem

__all__ = ["FixedPointResult", "solve_fixed_point", "DEFAULT_TOLERANCE"]

logger = logging.getLogger("repro.analysis.fixedpoint")

#: Absolute convergence tolerance on per-server delays, in seconds.
#: 1 ns is far below any meaningful queueing-delay scale in the model.
DEFAULT_TOLERANCE = 1e-9

#: Delay ceiling (seconds) above which the iteration is declared divergent.
DEFAULT_CEILING = 1e6


@dataclass
class FixedPointResult:
    """Outcome of a delay fixed-point computation.

    Attributes
    ----------
    delays:
        ``float64[S]`` per-server delay bounds at the final iterate.
    route_delays:
        ``float64[R]`` end-to-end bounds per route at the final iterate.
    converged:
        True if the iteration reached the fixed point within tolerance.
    deadline_violated:
        True if the computation stopped early because some route's
        end-to-end delay exceeded its deadline (sound: delays only grow).
    diverged:
        True if the iterates crossed the divergence ceiling.
    iterations:
        Number of iterations performed.
    residual:
        Largest per-server delay change at the final iteration.
    """

    delays: np.ndarray
    route_delays: np.ndarray
    converged: bool
    deadline_violated: bool
    diverged: bool
    iterations: int
    residual: float

    @property
    def safe(self) -> bool:
        """Converged with no deadline violation."""
        return self.converged and not self.deadline_violated


def solve_fixed_point(
    system: RouteSystem,
    update: Callable[[np.ndarray], np.ndarray],
    *,
    initial: Optional[np.ndarray] = None,
    deadlines: Optional[np.ndarray] = None,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = 100_000,
    ceiling: float = DEFAULT_CEILING,
) -> FixedPointResult:
    """Iterate ``d <- update(d)`` to the least fixed point.

    Parameters
    ----------
    system:
        Route system used to evaluate per-route delays (for the deadline
        early exit and the reported ``route_delays``).
    update:
        The monotone map ``Z``; receives and returns ``float64[S]``.
        For the single-class Theorem 3 map use
        :func:`repro.analysis.delays.theorem3_update`.
    initial:
        Warm-start vector (must be pointwise <= the least fixed point —
        callers are responsible; ``update(d0) >= d0`` is checked).
    deadlines:
        Optional ``float64[R]`` per-route deadlines enabling early failure.
    """
    # Fast path: observability off (the default) adds one attribute load.
    if not OBS.enabled:
        return _solve(
            system,
            update,
            initial=initial,
            deadlines=deadlines,
            tolerance=tolerance,
            max_iterations=max_iterations,
            ceiling=ceiling,
        )

    warm = initial is not None
    with OBS.span(
        "fixedpoint.solve",
        routes=system.num_routes,
        servers=system.num_servers,
        warm_start=warm,
    ) as sp:
        result = _solve(
            system,
            update,
            initial=initial,
            deadlines=deadlines,
            tolerance=tolerance,
            max_iterations=max_iterations,
            ceiling=ceiling,
        )
        outcome = _outcome(result)
        sp.set(iterations=result.iterations, outcome=outcome)
    reg = OBS.registry
    reg.counter("repro_fixedpoint_solves_total", outcome=outcome).inc()
    reg.counter("repro_fixedpoint_iterations_total").inc(result.iterations)
    reg.histogram(
        "repro_fixedpoint_iterations", buckets=DEFAULT_ITERATION_BUCKETS
    ).observe(result.iterations)
    reg.gauge("repro_fixedpoint_last_residual").set(result.residual)
    if warm:
        reg.counter("repro_fixedpoint_warm_starts_total").inc()
    if result.deadline_violated and not result.converged:
        reg.counter("repro_fixedpoint_early_failures_total").inc()
    if result.diverged:
        logger.debug(
            "fixed point diverged after %d iterations "
            "(%d routes, ceiling crossed)",
            result.iterations,
            system.num_routes,
        )
    return result


def _outcome(result: FixedPointResult) -> str:
    if result.converged:
        return "converged"
    if result.deadline_violated:
        return "deadline_violated"
    if result.diverged:
        return "diverged"
    return "budget_exhausted"


def _solve(
    system: RouteSystem,
    update: Callable[[np.ndarray], np.ndarray],
    *,
    initial: Optional[np.ndarray],
    deadlines: Optional[np.ndarray],
    tolerance: float,
    max_iterations: int,
    ceiling: float,
) -> FixedPointResult:
    if tolerance <= 0:
        raise AnalysisError(f"tolerance must be positive, got {tolerance}")
    if max_iterations < 1:
        raise AnalysisError("max_iterations must be >= 1")

    if initial is None:
        d = np.zeros(system.num_servers, dtype=np.float64)
        d = update(d)  # zero-jitter starting point beta*T
    else:
        d = np.asarray(initial, dtype=np.float64).copy()
        if d.shape != (system.num_servers,):
            raise AnalysisError(
                f"initial vector has shape {d.shape}, "
                f"expected ({system.num_servers},)"
            )
        d_next = update(d)
        if np.any(d_next < d - tolerance):
            raise AnalysisError(
                "warm start is above the least fixed point "
                "(update decreased some delay); start from zero instead"
            )
        d = d_next

    residual = float("inf")
    for iteration in range(1, max_iterations + 1):
        route_d = system.route_delays(d)
        if deadlines is not None and np.any(route_d > deadlines):
            return FixedPointResult(
                delays=d,
                route_delays=route_d,
                converged=False,
                deadline_violated=True,
                diverged=False,
                iterations=iteration,
                residual=residual,
            )
        if float(d.max(initial=0.0)) > ceiling:
            return FixedPointResult(
                delays=d,
                route_delays=route_d,
                converged=False,
                deadline_violated=False,
                diverged=True,
                iterations=iteration,
                residual=residual,
            )
        d_next = update(d)
        residual = float(np.abs(d_next - d).max(initial=0.0))
        d = d_next
        if residual <= tolerance:
            route_d = system.route_delays(d)
            violated = deadlines is not None and bool(
                np.any(route_d > deadlines)
            )
            return FixedPointResult(
                delays=d,
                route_delays=route_d,
                converged=True,
                deadline_violated=violated,
                diverged=False,
                iterations=iteration,
                residual=residual,
            )

    return FixedPointResult(
        delays=d,
        route_delays=system.route_delays(d),
        converged=False,
        deadline_violated=False,
        diverged=False,
        iterations=max_iterations,
        residual=residual,
    )
