"""The delay fixed point (Section 5.1.1).

The per-server delay bounds depend circularly on each other through the
upstream-jitter terms ``Y_k`` (eq. 6): ``d = Z(d)`` (eq. 14).  Because
``Z`` is monotone nondecreasing and the iteration starts from the
zero-jitter vector ``d0 = beta * T <= Z(d0)``, the iterates increase
monotonically and converge to the *least* fixed point whenever one exists.
Two practical consequences are exploited here:

* **warm starts** — any vector known to be below the least fixed point
  (e.g. the converged solution of a subset of the routes, or the solution
  of the same routes at a lower utilization) is a valid starting point and
  strictly reduces iteration count during route selection and during the
  Section 5.3 binary search;
* **sound early failure** — per-route end-to-end delays are monotone in
  the iterates, so as soon as some route exceeds its deadline it will
  always exceed it, and verification can stop immediately.

A diverging iteration (utilization too high for this route structure)
is reported as ``converged=False`` with ``diverged=True`` once the iterates
cross a configurable ceiling, or when the iteration budget is exhausted.

Two execution paths produce bit-identical results:

* the **reference path** iterates an arbitrary monotone callable and
  allocates fresh arrays each step (simple, obviously correct);
* the **scratch path** runs when a :class:`~repro.analysis.scratch.
  FixedPointWorkspace` is supplied and the update is a
  :class:`~repro.analysis.scratch.Theorem3Map`: the cumulative-sum pass
  shared by the route-delay and upstream kernels is computed once per
  iteration, and every intermediate lives in preallocated buffers, so the
  inner loop performs zero heap allocation.  The floating-point operations
  and their order are identical to the reference path — property tests
  assert exact (bitwise) equality of the results.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Callable, Optional, Union

import numpy as np

from ..errors import AnalysisError
from ..obs import DEFAULT_ITERATION_BUCKETS, OBS
from .routesystem import RouteSystem
from .scratch import FixedPointWorkspace, Theorem3Map

__all__ = ["FixedPointResult", "solve_fixed_point", "DEFAULT_TOLERANCE"]

logger = logging.getLogger("repro.analysis.fixedpoint")

#: Absolute convergence tolerance on per-server delays, in seconds.
#: 1 ns is far below any meaningful queueing-delay scale in the model.
DEFAULT_TOLERANCE = 1e-9

#: Delay ceiling (seconds) above which the iteration is declared divergent.
DEFAULT_CEILING = 1e6

#: Per-route deadlines: one bound per route, or a scalar applied to all.
Deadlines = Union[np.ndarray, float, None]


@dataclass
class FixedPointResult:
    """Outcome of a delay fixed-point computation.

    Attributes
    ----------
    delays:
        ``float64[S]`` per-server delay bounds at the final iterate.
    route_delays:
        ``float64[R]`` end-to-end bounds per route at the final iterate.
    converged:
        True if the iteration reached the fixed point within tolerance.
    deadline_violated:
        True if the computation stopped early because some route's
        end-to-end delay exceeded its deadline (sound: delays only grow).
    diverged:
        True if the iterates crossed the divergence ceiling.
    iterations:
        Number of iterations performed.
    residual:
        Largest per-server delay change at the final iteration.
    """

    delays: np.ndarray
    route_delays: np.ndarray
    converged: bool
    deadline_violated: bool
    diverged: bool
    iterations: int
    residual: float

    @property
    def safe(self) -> bool:
        """Converged with no deadline violation."""
        return self.converged and not self.deadline_violated


def solve_fixed_point(
    system: RouteSystem,
    update: Callable[[np.ndarray], np.ndarray],
    *,
    initial: Optional[np.ndarray] = None,
    deadlines: Deadlines = None,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = 100_000,
    ceiling: float = DEFAULT_CEILING,
    workspace: Optional[FixedPointWorkspace] = None,
) -> FixedPointResult:
    """Iterate ``d <- update(d)`` to the least fixed point.

    Parameters
    ----------
    system:
        Route system used to evaluate per-route delays (for the deadline
        early exit and the reported ``route_delays``).  Either a
        :class:`RouteSystem` or a
        :class:`~repro.analysis.routesystem.GrowableRouteSystem`.
    update:
        The monotone map ``Z``; receives and returns ``float64[S]``.
        For the single-class Theorem 3 map use
        :func:`repro.analysis.delays.theorem3_update`.
    initial:
        Warm-start vector (must be pointwise <= the least fixed point —
        callers are responsible; ``update(d0) >= d0`` is checked).
    deadlines:
        Optional per-route deadlines enabling early failure: a
        ``float64[R]`` array or a scalar applied to every route.
    workspace:
        Optional scratch buffers enabling the allocation-free fast path
        (requires ``update`` to be a Theorem 3 map; other updates fall
        back to the reference path).
    """
    use_scratch = workspace is not None and isinstance(update, Theorem3Map)
    solver = _solve_scratch if use_scratch else _solve
    # Fast path: observability off (the default) adds one attribute load.
    if not OBS.enabled:
        return solver(
            system,
            update,
            workspace=workspace,
            initial=initial,
            deadlines=deadlines,
            tolerance=tolerance,
            max_iterations=max_iterations,
            ceiling=ceiling,
        )

    warm = initial is not None
    with OBS.span(
        "fixedpoint.solve",
        routes=system.num_routes,
        servers=system.num_servers,
        warm_start=warm,
        scratch=use_scratch,
    ) as sp:
        result = solver(
            system,
            update,
            workspace=workspace,
            initial=initial,
            deadlines=deadlines,
            tolerance=tolerance,
            max_iterations=max_iterations,
            ceiling=ceiling,
        )
        outcome = _outcome(result)
        sp.set(iterations=result.iterations, outcome=outcome)
    reg = OBS.registry
    reg.counter("repro_fixedpoint_solves_total", outcome=outcome).inc()
    reg.counter("repro_fixedpoint_iterations_total").inc(result.iterations)
    reg.histogram(
        "repro_fixedpoint_iterations", buckets=DEFAULT_ITERATION_BUCKETS
    ).observe(result.iterations)
    reg.gauge("repro_fixedpoint_last_residual").set(result.residual)
    if use_scratch:
        reg.counter("repro_fixedpoint_scratch_solves_total").inc()
    if warm:
        reg.counter("repro_fixedpoint_warm_starts_total").inc()
    if result.deadline_violated and not result.converged:
        reg.counter("repro_fixedpoint_early_failures_total").inc()
    if result.diverged:
        logger.debug(
            "fixed point diverged after %d iterations "
            "(%d routes, ceiling crossed)",
            result.iterations,
            system.num_routes,
        )
    return result


def _outcome(result: FixedPointResult) -> str:
    if result.converged:
        return "converged"
    if result.deadline_violated:
        return "deadline_violated"
    if result.diverged:
        return "diverged"
    return "budget_exhausted"


def _validate(tolerance: float, max_iterations: int) -> None:
    if tolerance <= 0:
        raise AnalysisError(f"tolerance must be positive, got {tolerance}")
    if max_iterations < 1:
        raise AnalysisError("max_iterations must be >= 1")


def _solve(
    system: RouteSystem,
    update: Callable[[np.ndarray], np.ndarray],
    *,
    workspace: Optional[FixedPointWorkspace],
    initial: Optional[np.ndarray],
    deadlines: Deadlines,
    tolerance: float,
    max_iterations: int,
    ceiling: float,
) -> FixedPointResult:
    _validate(tolerance, max_iterations)

    if initial is None:
        d = np.zeros(system.num_servers, dtype=np.float64)
        d = update(d)  # zero-jitter starting point beta*T
    else:
        d = np.asarray(initial, dtype=np.float64).copy()
        if d.shape != (system.num_servers,):
            raise AnalysisError(
                f"initial vector has shape {d.shape}, "
                f"expected ({system.num_servers},)"
            )
        d_next = update(d)
        if np.any(d_next < d - tolerance):
            raise AnalysisError(
                "warm start is above the least fixed point "
                "(update decreased some delay); start from zero instead"
            )
        d = d_next

    residual = float("inf")
    for iteration in range(1, max_iterations + 1):
        route_d = system.route_delays(d)
        if deadlines is not None and np.any(route_d > deadlines):
            return FixedPointResult(
                delays=d,
                route_delays=route_d,
                converged=False,
                deadline_violated=True,
                diverged=False,
                iterations=iteration,
                residual=residual,
            )
        if float(d.max(initial=0.0)) > ceiling:
            return FixedPointResult(
                delays=d,
                route_delays=route_d,
                converged=False,
                deadline_violated=False,
                diverged=True,
                iterations=iteration,
                residual=residual,
            )
        d_next = update(d)
        residual = float(np.abs(d_next - d).max(initial=0.0))
        d = d_next
        if residual <= tolerance:
            route_d = system.route_delays(d)
            violated = deadlines is not None and bool(
                np.any(route_d > deadlines)
            )
            return FixedPointResult(
                delays=d,
                route_delays=route_d,
                converged=True,
                deadline_violated=violated,
                diverged=False,
                iterations=iteration,
                residual=residual,
            )

    return FixedPointResult(
        delays=d,
        route_delays=system.route_delays(d),
        converged=False,
        deadline_violated=False,
        diverged=False,
        iterations=max_iterations,
        residual=residual,
    )


def _solve_scratch(
    system: RouteSystem,
    update: Theorem3Map,
    *,
    workspace: FixedPointWorkspace,
    initial: Optional[np.ndarray],
    deadlines: Deadlines,
    tolerance: float,
    max_iterations: int,
    ceiling: float,
) -> FixedPointResult:
    """Allocation-free twin of :func:`_solve` for the Theorem 3 map.

    Performs the same floating-point operations in the same order as the
    reference path (the shared cumulative sum is a pure gather/cumsum of
    the same operands), so results are bit-identical.
    """
    _validate(tolerance, max_iterations)
    ws = workspace
    S = system.num_servers
    M = system.num_occurrences
    R = system.num_routes
    ws.ensure(S, M, R)

    occ_server = system.occ_server
    occ_start = system.occ_start
    starts = system.route_start
    start_lo = starts[:-1]
    start_hi = starts[1:]
    beta = update.beta
    burst = update.burst
    rate = update.rate

    d = ws.d[:S]
    d_next = ws.d_next[:S]
    y = ws.y[:S]
    work = ws.work[:S]
    d_occ = ws.d_occ[:M]
    csum = ws.csum[: M + 1]
    prefix = ws.prefix[:M]
    base = ws.base[:M]
    lo_buf = ws.route_lo[:R]
    hi_buf = ws.route_hi[:R]
    route_d = ws.route_d[:R]
    route_cmp = ws.route_cmp[:R]

    csum_tail = csum[1:]
    csum_head = csum[:M]

    # ndarray method calls bypass the np.take/np.cumsum dispatch wrappers
    # (measurable at thousands of solves per selection); the underlying
    # kernels — and therefore the results — are identical.
    def fill_csum(vec: np.ndarray) -> None:
        vec.take(occ_server, out=d_occ)
        csum[0] = 0.0
        d_occ.cumsum(out=csum_tail)

    def fill_route_delays() -> None:
        csum.take(start_hi, out=hi_buf)
        csum.take(start_lo, out=lo_buf)
        np.subtract(hi_buf, lo_buf, out=route_d)

    def apply_update(out: np.ndarray) -> None:
        # ``csum`` must already hold the cumulative sums of the vector
        # being updated; ``out`` may alias it safely (only csum is read).
        csum.take(occ_start, out=base)
        np.subtract(csum_head, base, out=prefix)
        y.fill(0.0)
        np.maximum.at(y, occ_server, prefix)
        np.multiply(y, rate, out=out)
        np.add(out, burst, out=out)
        np.multiply(out, beta, out=out)

    if initial is None:
        d.fill(0.0)
        fill_csum(d)
        apply_update(d)
    else:
        arr = np.asarray(initial, dtype=np.float64)
        if arr.shape != (S,):
            raise AnalysisError(
                f"initial vector has shape {arr.shape}, expected ({S},)"
            )
        d[:] = arr
        fill_csum(d)
        apply_update(d_next)
        np.subtract(d, tolerance, out=work)
        if np.any(d_next < work):  # setup-time check; one bool temp is fine
            raise AnalysisError(
                "warm start is above the least fixed point "
                "(update decreased some delay); start from zero instead"
            )
        d, d_next = d_next, d

    def make_result(converged, violated, diverged, iteration, residual):
        return FixedPointResult(
            delays=d.copy(),
            route_delays=route_d.copy(),
            converged=converged,
            deadline_violated=violated,
            diverged=diverged,
            iterations=iteration,
            residual=residual,
        )

    residual = float("inf")
    for iteration in range(1, max_iterations + 1):
        fill_csum(d)
        fill_route_delays()
        if deadlines is not None:
            np.greater(route_d, deadlines, out=route_cmp)
            if route_cmp.any():
                return make_result(False, True, False, iteration, residual)
        if float(d.max(initial=0.0)) > ceiling:
            return make_result(False, False, True, iteration, residual)
        apply_update(d_next)
        np.subtract(d_next, d, out=work)
        np.abs(work, out=work)
        residual = float(work.max(initial=0.0))
        d, d_next = d_next, d
        if residual <= tolerance:
            fill_csum(d)
            fill_route_delays()
            violated = False
            if deadlines is not None:
                np.greater(route_d, deadlines, out=route_cmp)
                violated = bool(route_cmp.any())
            return make_result(True, violated, False, iteration, residual)

    fill_csum(d)
    fill_route_delays()
    return make_result(False, False, False, max_iterations, residual)
