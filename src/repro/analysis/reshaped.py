"""Per-hop reshaping analysis — what flow-awareness would buy back.

The paper's whole setting forbids per-flow state in the core, which is
exactly what rules out per-hop *traffic reshaping*.  A reshaper at every
server would re-police each flow to its source envelope ``(T, rho)``, so
no server ever sees jitter-inflated traffic: the Theorem 3 bound applies
with ``Y_k = 0`` everywhere, and — by the classic "shaping is for free"
result of network calculus (the combined shaper+scheduler delay along a
path is bounded by the sum of the per-hop bounds computed on fresh
envelopes) — the end-to-end bound is simply

    d_e2e = L * beta(alpha) * T.

This module computes that bound and the utilization it certifies, as the
quantitative counterpoint to Theorem 4: the gap between
:func:`reshaped_max_alpha` and the paper's bounds is the price of flow
aggregation (and the reason the paper's run-time story scales while
IntServ's does not).
"""

from __future__ import annotations

from ..errors import AnalysisError
from .beta import beta_coefficient

__all__ = ["reshaped_delay_bound", "reshaped_max_alpha"]


def reshaped_delay_bound(
    burst: float,
    rate: float,
    alpha: float,
    fan_in: int,
    hops: int,
) -> float:
    """End-to-end bound over ``hops`` servers with per-hop reshaping.

    Each hop contributes the fresh-envelope Theorem 3 bound
    ``beta * T`` (no jitter term); the reshapers' own delay is absorbed
    ("shaping for free").
    """
    if hops < 1:
        raise AnalysisError(f"hops must be >= 1, got {hops}")
    if burst <= 0:
        raise AnalysisError(f"burst must be positive, got {burst}")
    beta = beta_coefficient(alpha, rate, fan_in)
    return hops * beta * burst


def reshaped_max_alpha(
    fan_in: int,
    diameter: int,
    burst: float,
    rate: float,
    deadline: float,
) -> float:
    """Largest utilization certifiable with per-hop reshaping.

    Solving ``L * beta(alpha) * T <= D`` for ``alpha``:

        alpha <= N / ( (L*T/(D*rho)) * (N - 1) + 1 )

    — the Theorem 4 lower bound with its jitter term ``(L-1)`` removed.
    For the paper's VoIP scenario this is 1.0 (full utilization): jitter
    inflation, not burstiness, is what caps the aggregated system at
    0.30–0.61.  The price is per-flow reshaper state at every core
    server.
    """
    if fan_in < 2:
        raise AnalysisError(f"need N >= 2 input links, got {fan_in}")
    if diameter < 1:
        raise AnalysisError(f"diameter must be >= 1, got {diameter}")
    if burst <= 0 or rate <= 0 or deadline <= 0:
        raise AnalysisError("burst, rate and deadline must be positive")
    n, l = float(fan_in), float(diameter)
    ratio = l * burst / (deadline * rate)
    return min(n / (ratio * (n - 1.0) + 1.0), 1.0)
