"""Compiled route systems.

The delay fixed point of Section 5.1.1 repeatedly needs, for every link
server ``k``,

* ``Y_k`` — the maximum over all routes through ``k`` of the sum of
  *upstream* per-server delays (eq. 6), and
* per-route end-to-end delay sums (Step 2 of Figure 2).

:class:`RouteSystem` flattens a set of routes (arrays of server indices)
into occurrence arrays so both quantities are computed with vectorized
NumPy segmented prefix sums — no Python-level loop over routes in the hot
path.  Systems are immutable; the route-selection heuristic builds a new
system per candidate (construction is O(total occurrences)).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError

__all__ = ["RouteSystem"]


class RouteSystem:
    """An immutable, index-compiled set of routes over ``num_servers`` servers.

    Parameters
    ----------
    routes:
        Sequence of ``int`` arrays; each array lists the link-server indices
        a route traverses, in order.  Empty routes are rejected.
    num_servers:
        Total number of link servers in the graph (array sizes).

    Attributes
    ----------
    occ_server:
        ``int64[M]`` server index of every (route, position) occurrence,
        routes concatenated in order.
    occ_route:
        ``int64[M]`` route index of every occurrence.
    route_start:
        ``int64[R+1]`` offsets of each route in the occurrence arrays.
    """

    __slots__ = (
        "num_servers",
        "num_routes",
        "occ_server",
        "occ_route",
        "route_start",
        "_touched",
    )

    def __init__(self, routes: Sequence[Sequence[int]], num_servers: int):
        if num_servers <= 0:
            raise AnalysisError("route system needs at least one server")
        arrays: List[np.ndarray] = []
        for i, r in enumerate(routes):
            arr = np.asarray(r, dtype=np.int64)
            if arr.ndim != 1 or arr.size == 0:
                raise AnalysisError(f"route {i} must be a non-empty 1-D array")
            if arr.min() < 0 or arr.max() >= num_servers:
                raise AnalysisError(
                    f"route {i} references servers outside [0, {num_servers})"
                )
            arrays.append(arr)

        self.num_servers = int(num_servers)
        self.num_routes = len(arrays)
        lengths = np.asarray([a.size for a in arrays], dtype=np.int64)
        self.route_start = np.concatenate(
            [[0], np.cumsum(lengths)]
        ).astype(np.int64)
        if arrays:
            self.occ_server = np.concatenate(arrays)
            self.occ_route = np.repeat(
                np.arange(self.num_routes, dtype=np.int64), lengths
            )
        else:
            self.occ_server = np.empty(0, dtype=np.int64)
            self.occ_route = np.empty(0, dtype=np.int64)
        touched = np.zeros(self.num_servers, dtype=bool)
        touched[self.occ_server] = True
        self._touched = touched

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #

    @property
    def num_occurrences(self) -> int:
        return int(self.occ_server.size)

    @property
    def touched_servers(self) -> np.ndarray:
        """Boolean mask of servers used by at least one route."""
        return self._touched

    def route(self, index: int) -> np.ndarray:
        """Server indices of route ``index`` (a view, do not mutate)."""
        lo, hi = self.route_start[index], self.route_start[index + 1]
        return self.occ_server[lo:hi]

    def route_lengths(self) -> np.ndarray:
        return np.diff(self.route_start)

    def with_route(self, route: Sequence[int]) -> "RouteSystem":
        """A new system with ``route`` appended (used by the heuristic)."""
        routes = [self.route(i) for i in range(self.num_routes)]
        routes.append(np.asarray(route, dtype=np.int64))
        return RouteSystem(routes, self.num_servers)

    # ------------------------------------------------------------------ #
    # vectorized kernels
    # ------------------------------------------------------------------ #

    def upstream_delays(self, d: np.ndarray) -> np.ndarray:
        """The paper's ``Y`` vector (eq. 6) for per-server delays ``d``.

        ``Y[k]`` is the maximum over occurrences of server ``k`` of the sum
        of delays at the servers preceding it on the same route; 0 for
        servers no route traverses (and for first-hop occurrences).
        """
        y = np.zeros(self.num_servers, dtype=np.float64)
        if self.num_occurrences == 0:
            return y
        prefix = self._prefix_sums(d)
        np.maximum.at(y, self.occ_server, prefix)
        return y

    def route_delays(self, d: np.ndarray) -> np.ndarray:
        """End-to-end delay of every route: segment sums of ``d``."""
        if self.num_routes == 0:
            return np.empty(0, dtype=np.float64)
        d_occ = d[self.occ_server]
        csum = np.concatenate([[0.0], np.cumsum(d_occ)])
        return csum[self.route_start[1:]] - csum[self.route_start[:-1]]

    def _prefix_sums(self, d: np.ndarray) -> np.ndarray:
        """Exclusive per-route prefix sums of ``d`` at every occurrence."""
        d_occ = d[self.occ_server]
        csum = np.concatenate([[0.0], np.cumsum(d_occ)])
        # exclusive prefix within the whole concatenation ...
        exclusive = csum[:-1]
        # ... minus the running total at each route's start
        base = csum[self.route_start[:-1]]
        return exclusive - np.repeat(base, self.route_lengths())

    def server_route_count(self) -> np.ndarray:
        """Number of route occurrences per server (load indicator)."""
        counts = np.zeros(self.num_servers, dtype=np.int64)
        np.add.at(counts, self.occ_server, 1)
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RouteSystem(routes={self.num_routes}, "
            f"occurrences={self.num_occurrences}, "
            f"servers={self.num_servers})"
        )
