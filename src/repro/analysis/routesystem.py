"""Compiled route systems.

The delay fixed point of Section 5.1.1 repeatedly needs, for every link
server ``k``,

* ``Y_k`` — the maximum over all routes through ``k`` of the sum of
  *upstream* per-server delays (eq. 6), and
* per-route end-to-end delay sums (Step 2 of Figure 2).

:class:`RouteSystem` flattens a set of routes (arrays of server indices)
into occurrence arrays so both quantities are computed with vectorized
NumPy segmented prefix sums — no Python-level loop over routes in the hot
path.  Systems are immutable; :class:`GrowableRouteSystem` is the mutable
builder the route-selection heuristic uses to trial candidates with
amortized O(route-length) ``push``/``pop`` instead of an O(total
occurrences) rebuild per candidate.

Both classes expose the same kernel interface (``occ_server``,
``occ_start``, ``route_start``, ``upstream_delays``, ``route_delays``),
so the fixed-point solver and the Theorem 3 map accept either.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError

__all__ = ["RouteSystem", "GrowableRouteSystem"]


class RouteSystem:
    """An immutable, index-compiled set of routes over ``num_servers`` servers.

    Parameters
    ----------
    routes:
        Sequence of ``int`` arrays; each array lists the link-server indices
        a route traverses, in order.  Empty routes are rejected.
    num_servers:
        Total number of link servers in the graph (array sizes).

    Attributes
    ----------
    occ_server:
        ``int64[M]`` server index of every (route, position) occurrence,
        routes concatenated in order.
    occ_route:
        ``int64[M]`` route index of every occurrence.
    route_start:
        ``int64[R+1]`` offsets of each route in the occurrence arrays.
    """

    __slots__ = (
        "num_servers",
        "num_routes",
        "occ_server",
        "occ_route",
        "route_start",
        "_touched",
        "_route_lengths",
        "_occ_start",
    )

    def __init__(self, routes: Sequence[Sequence[int]], num_servers: int):
        if num_servers <= 0:
            raise AnalysisError("route system needs at least one server")
        arrays: List[np.ndarray] = []
        for i, r in enumerate(routes):
            arr = np.asarray(r, dtype=np.int64)
            if arr.ndim != 1 or arr.size == 0:
                raise AnalysisError(f"route {i} must be a non-empty 1-D array")
            arrays.append(arr)

        self.num_servers = int(num_servers)
        self.num_routes = len(arrays)
        lengths = np.asarray([a.size for a in arrays], dtype=np.int64)
        self.route_start = np.concatenate(
            [[0], np.cumsum(lengths)]
        ).astype(np.int64)
        if arrays:
            self.occ_server = np.concatenate(arrays)
            self.occ_route = np.repeat(
                np.arange(self.num_routes, dtype=np.int64), lengths
            )
            # One range check over the concatenation instead of two
            # reductions per route — construction is a measured hot spot.
            lo = int(self.occ_server.min())
            hi = int(self.occ_server.max())
            if lo < 0 or hi >= num_servers:
                bad = int(
                    self.occ_route[
                        np.argmax(
                            (self.occ_server < 0)
                            | (self.occ_server >= num_servers)
                        )
                    ]
                )
                raise AnalysisError(
                    f"route {bad} references servers outside "
                    f"[0, {num_servers})"
                )
        else:
            self.occ_server = np.empty(0, dtype=np.int64)
            self.occ_route = np.empty(0, dtype=np.int64)
        touched = np.zeros(self.num_servers, dtype=bool)
        touched[self.occ_server] = True
        self._touched = touched
        self._route_lengths = lengths
        self._occ_start: Optional[np.ndarray] = None

    @classmethod
    def _from_parts(
        cls,
        occ_server: np.ndarray,
        occ_route: np.ndarray,
        route_start: np.ndarray,
        touched: np.ndarray,
        num_servers: int,
    ) -> "RouteSystem":
        """Assemble a system from already-validated occurrence arrays."""
        self = object.__new__(cls)
        self.num_servers = int(num_servers)
        self.num_routes = int(route_start.size - 1)
        self.occ_server = occ_server
        self.occ_route = occ_route
        self.route_start = route_start
        self._touched = touched
        self._route_lengths = np.diff(route_start)
        self._occ_start = None
        return self

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #

    @property
    def num_occurrences(self) -> int:
        return int(self.occ_server.size)

    @property
    def touched_servers(self) -> np.ndarray:
        """Boolean mask of servers used by at least one route."""
        return self._touched

    @property
    def occ_start(self) -> np.ndarray:
        """``int64[M]`` start offset of the owning route, per occurrence."""
        if self._occ_start is None:
            self._occ_start = self.route_start[self.occ_route]
        return self._occ_start

    def route(self, index: int) -> np.ndarray:
        """Server indices of route ``index`` (a view, do not mutate)."""
        lo, hi = self.route_start[index], self.route_start[index + 1]
        return self.occ_server[lo:hi]

    def route_lengths(self) -> np.ndarray:
        return self._route_lengths

    def with_route(self, route: Sequence[int]) -> "RouteSystem":
        """A new system with ``route`` appended (used by the heuristic).

        Concatenates the existing occurrence arrays directly — O(M + len)
        with a single validation pass over the new route, instead of
        re-slicing and re-validating every committed route.
        """
        arr = np.asarray(route, dtype=np.int64)
        if arr.ndim != 1 or arr.size == 0:
            raise AnalysisError(
                f"route {self.num_routes} must be a non-empty 1-D array"
            )
        if arr.min() < 0 or arr.max() >= self.num_servers:
            raise AnalysisError(
                f"route {self.num_routes} references servers outside "
                f"[0, {self.num_servers})"
            )
        occ_server = np.concatenate([self.occ_server, arr])
        occ_route = np.concatenate(
            [
                self.occ_route,
                np.full(arr.size, self.num_routes, dtype=np.int64),
            ]
        )
        route_start = np.concatenate(
            [self.route_start, [self.num_occurrences + arr.size]]
        ).astype(np.int64)
        touched = self._touched.copy()
        touched[arr] = True
        return RouteSystem._from_parts(
            occ_server, occ_route, route_start, touched, self.num_servers
        )

    # ------------------------------------------------------------------ #
    # vectorized kernels
    # ------------------------------------------------------------------ #

    def upstream_delays(self, d: np.ndarray) -> np.ndarray:
        """The paper's ``Y`` vector (eq. 6) for per-server delays ``d``.

        ``Y[k]`` is the maximum over occurrences of server ``k`` of the sum
        of delays at the servers preceding it on the same route; 0 for
        servers no route traverses (and for first-hop occurrences).
        """
        y = np.zeros(self.num_servers, dtype=np.float64)
        if self.num_occurrences == 0:
            return y
        prefix = self._prefix_sums(d)
        np.maximum.at(y, self.occ_server, prefix)
        return y

    def route_delays(self, d: np.ndarray) -> np.ndarray:
        """End-to-end delay of every route: segment sums of ``d``."""
        if self.num_routes == 0:
            return np.empty(0, dtype=np.float64)
        d_occ = d[self.occ_server]
        csum = np.concatenate([[0.0], np.cumsum(d_occ)])
        return csum[self.route_start[1:]] - csum[self.route_start[:-1]]

    def _prefix_sums(self, d: np.ndarray) -> np.ndarray:
        """Exclusive per-route prefix sums of ``d`` at every occurrence."""
        d_occ = d[self.occ_server]
        csum = np.concatenate([[0.0], np.cumsum(d_occ)])
        # exclusive prefix within the whole concatenation ...
        exclusive = csum[:-1]
        # ... minus the running total at each route's start (a gather via
        # the cached per-occurrence start offsets — no np.repeat rebuild)
        return exclusive - csum[self.occ_start]

    def server_route_count(self) -> np.ndarray:
        """Number of route occurrences per server (load indicator)."""
        counts = np.zeros(self.num_servers, dtype=np.int64)
        np.add.at(counts, self.occ_server, 1)
        return counts

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RouteSystem(routes={self.num_routes}, "
            f"occurrences={self.num_occurrences}, "
            f"servers={self.num_servers})"
        )


class GrowableRouteSystem:
    """A mutable route system with amortized O(route-length) append/undo.

    The Section 5.2 heuristic trials one candidate at a time on top of the
    committed set: ``push`` the candidate, solve, then ``pop`` it (or keep
    it).  Occurrence buffers grow geometrically and are handed to the
    kernels as zero-copy views of the live prefix, so a trial costs the
    candidate's length — not a rebuild of every committed route.

    The class exposes the same kernel interface as :class:`RouteSystem`
    (``occ_server``/``occ_start``/``route_start`` views plus the
    allocating ``upstream_delays``/``route_delays``), so it can be passed
    directly to :func:`repro.analysis.delays.theorem3_update` and
    :func:`repro.analysis.fixedpoint.solve_fixed_point`.
    """

    __slots__ = (
        "num_servers",
        "_occ_server",
        "_occ_start",
        "_route_start",
        "_server_count",
        "_touched",
        "_touched_valid",
        "_num_routes",
        "_num_occ",
        "pushes",
        "pops",
    )

    def __init__(
        self,
        num_servers: int,
        routes: Sequence[Sequence[int]] = (),
        *,
        occ_capacity: int = 64,
        route_capacity: int = 16,
    ):
        if num_servers <= 0:
            raise AnalysisError("route system needs at least one server")
        self.num_servers = int(num_servers)
        self._occ_server = np.empty(max(occ_capacity, 1), dtype=np.int64)
        self._occ_start = np.empty(max(occ_capacity, 1), dtype=np.int64)
        self._route_start = np.zeros(max(route_capacity, 1) + 1, dtype=np.int64)
        self._server_count = np.zeros(self.num_servers, dtype=np.int64)
        self._touched = np.zeros(self.num_servers, dtype=bool)
        self._touched_valid = True
        self._num_routes = 0
        self._num_occ = 0
        self.pushes = 0
        self.pops = 0
        for r in routes:
            self.push(r)

    # ------------------------------------------------------------------ #
    # mutation
    # ------------------------------------------------------------------ #

    def push(self, route: Sequence[int]) -> int:
        """Append ``route``; returns its index.  Amortized O(len(route))."""
        arr = np.asarray(route, dtype=np.int64)
        if arr.ndim != 1 or arr.size == 0:
            raise AnalysisError(
                f"route {self._num_routes} must be a non-empty 1-D array"
            )
        if arr.min() < 0 or arr.max() >= self.num_servers:
            raise AnalysisError(
                f"route {self._num_routes} references servers outside "
                f"[0, {self.num_servers})"
            )
        m, n = self._num_occ, int(arr.size)
        if m + n > self._occ_server.size:
            cap = self._occ_server.size
            while cap < m + n:
                cap *= 2
            self._occ_server = np.concatenate(
                [self._occ_server[:m], np.empty(cap - m, dtype=np.int64)]
            )
            self._occ_start = np.concatenate(
                [self._occ_start[:m], np.empty(cap - m, dtype=np.int64)]
            )
        if self._num_routes + 1 >= self._route_start.size:
            grown = np.zeros(2 * self._route_start.size, dtype=np.int64)
            grown[: self._num_routes + 1] = self._route_start[
                : self._num_routes + 1
            ]
            self._route_start = grown
        self._occ_server[m : m + n] = arr
        self._occ_start[m : m + n] = m
        np.add.at(self._server_count, arr, 1)
        self._num_occ = m + n
        self._num_routes += 1
        self._route_start[self._num_routes] = self._num_occ
        self._touched_valid = False
        self.pushes += 1
        return self._num_routes - 1

    def pop(self) -> None:
        """Remove the most recently pushed route.  O(len(route))."""
        if self._num_routes == 0:
            raise AnalysisError("pop from an empty route system")
        lo = int(self._route_start[self._num_routes - 1])
        np.subtract.at(
            self._server_count, self._occ_server[lo : self._num_occ], 1
        )
        self._num_occ = lo
        self._num_routes -= 1
        self._touched_valid = False
        self.pops += 1

    # ------------------------------------------------------------------ #
    # RouteSystem-compatible interface (views of the live prefix)
    # ------------------------------------------------------------------ #

    @property
    def num_routes(self) -> int:
        return self._num_routes

    @property
    def num_occurrences(self) -> int:
        return self._num_occ

    @property
    def occ_server(self) -> np.ndarray:
        return self._occ_server[: self._num_occ]

    @property
    def occ_start(self) -> np.ndarray:
        return self._occ_start[: self._num_occ]

    @property
    def route_start(self) -> np.ndarray:
        return self._route_start[: self._num_routes + 1]

    @property
    def touched_servers(self) -> np.ndarray:
        if not self._touched_valid:
            np.greater(self._server_count, 0, out=self._touched)
            self._touched_valid = True
        return self._touched

    def route(self, index: int) -> np.ndarray:
        if not 0 <= index < self._num_routes:
            raise AnalysisError(f"route index {index} out of range")
        lo, hi = self._route_start[index], self._route_start[index + 1]
        return self._occ_server[lo:hi]

    def route_lengths(self) -> np.ndarray:
        return np.diff(self.route_start)

    def server_route_count(self) -> np.ndarray:
        return self._server_count.copy()

    def freeze(self) -> RouteSystem:
        """An immutable :class:`RouteSystem` snapshot of the current state."""
        occ_route = np.repeat(
            np.arange(self._num_routes, dtype=np.int64), self.route_lengths()
        )
        return RouteSystem._from_parts(
            self.occ_server.copy(),
            occ_route,
            self.route_start.copy(),
            self.touched_servers.copy(),
            self.num_servers,
        )

    # ------------------------------------------------------------------ #
    # allocating kernels (reference semantics, identical to RouteSystem)
    # ------------------------------------------------------------------ #

    def upstream_delays(self, d: np.ndarray) -> np.ndarray:
        y = np.zeros(self.num_servers, dtype=np.float64)
        if self._num_occ == 0:
            return y
        occ = self.occ_server
        d_occ = d[occ]
        csum = np.concatenate([[0.0], np.cumsum(d_occ)])
        prefix = csum[:-1] - csum[self.occ_start]
        np.maximum.at(y, occ, prefix)
        return y

    def route_delays(self, d: np.ndarray) -> np.ndarray:
        if self._num_routes == 0:
            return np.empty(0, dtype=np.float64)
        d_occ = d[self.occ_server]
        csum = np.concatenate([[0.0], np.cumsum(d_occ)])
        starts = self.route_start
        return csum[starts[1:]] - csum[starts[:-1]]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GrowableRouteSystem(routes={self._num_routes}, "
            f"occurrences={self._num_occ}, servers={self.num_servers})"
        )
