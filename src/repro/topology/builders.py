"""Topology builders.

:func:`mci_backbone` reconstructs the evaluation topology of the paper
(Section 6, Figure 4): the MCI ISP backbone.  The paper gives the picture
only; the two properties it states *and uses* are the hop diameter
``L = 4`` and the maximum router degree ``N = 6``.  The reconstruction is an
18-router continental mesh satisfying both exactly (enforced by tests).

The remaining builders provide standard synthetic topologies used by the
extension experiments and the test suite.
"""

from __future__ import annotations

from typing import Hashable, List, Sequence, Tuple

import networkx as nx

from ..errors import TopologyError
from .network import Network
from .router import DEFAULT_CAPACITY

__all__ = [
    "MCI_ROUTERS",
    "MCI_EDGES",
    "NSFNET_ROUTERS",
    "NSFNET_EDGES",
    "mci_backbone",
    "nsfnet_backbone",
    "line_network",
    "ring_network",
    "star_network",
    "full_mesh",
    "grid_network",
    "tree_network",
    "dumbbell_network",
    "random_network",
    "fat_tree_network",
    "waxman_network",
]

#: Router names of the reconstructed MCI backbone (Figure 4).
MCI_ROUTERS: Tuple[str, ...] = (
    "Seattle",
    "SanFrancisco",
    "LosAngeles",
    "Phoenix",
    "Denver",
    "Dallas",
    "Houston",
    "KansasCity",
    "StLouis",
    "Chicago",
    "Atlanta",
    "Orlando",
    "Miami",
    "WashingtonDC",
    "NewYork",
    "Boston",
    "Cleveland",
    "Detroit",
)

#: Physical links of the reconstructed MCI backbone.
MCI_EDGES: Tuple[Tuple[str, str], ...] = (
    ("Seattle", "SanFrancisco"),
    ("Seattle", "Denver"),
    ("Seattle", "Chicago"),
    ("SanFrancisco", "LosAngeles"),
    ("SanFrancisco", "Denver"),
    ("LosAngeles", "Phoenix"),
    ("LosAngeles", "Denver"),
    ("LosAngeles", "Dallas"),
    ("Phoenix", "Dallas"),
    ("Phoenix", "Denver"),
    ("Denver", "KansasCity"),
    ("Denver", "Chicago"),
    ("Dallas", "Houston"),
    ("Dallas", "KansasCity"),
    ("Dallas", "StLouis"),
    ("Dallas", "Atlanta"),
    ("Houston", "Atlanta"),
    ("Houston", "Orlando"),
    ("KansasCity", "Chicago"),
    ("KansasCity", "StLouis"),
    ("StLouis", "WashingtonDC"),
    ("Chicago", "NewYork"),
    ("Chicago", "Atlanta"),
    ("Chicago", "Detroit"),
    ("Atlanta", "Orlando"),
    ("Atlanta", "Miami"),
    ("Atlanta", "WashingtonDC"),
    ("Orlando", "Miami"),
    ("Miami", "WashingtonDC"),
    ("WashingtonDC", "NewYork"),
    ("WashingtonDC", "Cleveland"),
    ("NewYork", "Boston"),
    ("NewYork", "Cleveland"),
    ("Boston", "Cleveland"),
    ("Cleveland", "Detroit"),
)


def mci_backbone(capacity: float = DEFAULT_CAPACITY) -> Network:
    """The reconstructed MCI ISP backbone used in the paper's evaluation.

    18 routers, 35 full-duplex 100 Mbps links, hop diameter ``L = 4``,
    maximum router degree ``N = 6``.  All routers act as edge routers, as in
    the paper's experiment.
    """
    net = Network("mci-backbone")
    for name in MCI_ROUTERS:
        net.add_router(name, is_edge=True)
    for u, v in MCI_EDGES:
        net.add_link(u, v, capacity)
    return net


#: Router names of the NSFNET T1 backbone (14 nodes), used by the
#: cross-topology extension experiments.
NSFNET_ROUTERS: Tuple[str, ...] = (
    "Seattle",
    "PaloAlto",
    "SanDiego",
    "SaltLake",
    "Boulder",
    "Houston",
    "Lincoln",
    "Champaign",
    "Pittsburgh",
    "Atlanta",
    "AnnArbor",
    "Ithaca",
    "Princeton",
    "CollegePark",
)

#: Links of the NSFNET T1 backbone (the 14-node variant commonly used in
#: the networking literature).
NSFNET_EDGES: Tuple[Tuple[str, str], ...] = (
    ("Seattle", "PaloAlto"),
    ("Seattle", "SanDiego"),
    ("Seattle", "Champaign"),
    ("PaloAlto", "SanDiego"),
    ("PaloAlto", "SaltLake"),
    ("SanDiego", "Houston"),
    ("SaltLake", "Boulder"),
    ("SaltLake", "AnnArbor"),
    ("Boulder", "Houston"),
    ("Boulder", "Lincoln"),
    ("Houston", "Atlanta"),
    ("Houston", "CollegePark"),
    ("Lincoln", "Champaign"),
    ("Champaign", "Pittsburgh"),
    ("Pittsburgh", "Atlanta"),
    ("Pittsburgh", "Ithaca"),
    ("Pittsburgh", "Princeton"),
    ("Atlanta", "CollegePark"),
    ("AnnArbor", "Ithaca"),
    ("AnnArbor", "Princeton"),
    ("Ithaca", "CollegePark"),
    ("Princeton", "CollegePark"),
)


def nsfnet_backbone(capacity: float = DEFAULT_CAPACITY) -> Network:
    """The NSFNET T1 backbone — a second real ISP topology.

    14 routers, 22 full-duplex links.  Used by the extension experiments
    to check that the paper's SP-vs-heuristic result is not an artifact
    of the MCI layout.
    """
    net = Network("nsfnet-backbone")
    for name in NSFNET_ROUTERS:
        net.add_router(name, is_edge=True)
    for u, v in NSFNET_EDGES:
        net.add_link(u, v, capacity)
    return net


def _sequential_names(n: int, prefix: str = "r") -> List[str]:
    return [f"{prefix}{i}" for i in range(n)]


def line_network(n: int, capacity: float = DEFAULT_CAPACITY) -> Network:
    """A chain ``r0 -- r1 -- ... -- r(n-1)``; diameter ``n - 1``."""
    if n < 2:
        raise TopologyError("line network needs at least 2 routers")
    names = _sequential_names(n)
    return Network.from_edges(
        zip(names, names[1:]), capacity=capacity, name=f"line-{n}"
    )


def ring_network(n: int, capacity: float = DEFAULT_CAPACITY) -> Network:
    """A cycle of ``n`` routers; diameter ``n // 2``."""
    if n < 3:
        raise TopologyError("ring network needs at least 3 routers")
    names = _sequential_names(n)
    edges = list(zip(names, names[1:])) + [(names[-1], names[0])]
    return Network.from_edges(edges, capacity=capacity, name=f"ring-{n}")


def star_network(n_leaves: int, capacity: float = DEFAULT_CAPACITY) -> Network:
    """A hub with ``n_leaves`` spokes; diameter 2, hub degree ``n_leaves``."""
    if n_leaves < 1:
        raise TopologyError("star network needs at least 1 leaf")
    edges = [("hub", f"leaf{i}") for i in range(n_leaves)]
    return Network.from_edges(
        edges, capacity=capacity, name=f"star-{n_leaves}"
    )


def full_mesh(n: int, capacity: float = DEFAULT_CAPACITY) -> Network:
    """Complete graph on ``n`` routers; diameter 1."""
    if n < 2:
        raise TopologyError("full mesh needs at least 2 routers")
    names = _sequential_names(n)
    edges = [
        (names[i], names[j]) for i in range(n) for j in range(i + 1, n)
    ]
    return Network.from_edges(edges, capacity=capacity, name=f"mesh-{n}")


def grid_network(
    rows: int, cols: int, capacity: float = DEFAULT_CAPACITY
) -> Network:
    """A ``rows x cols`` 2-D grid; diameter ``rows + cols - 2``."""
    if rows < 1 or cols < 1 or rows * cols < 2:
        raise TopologyError("grid needs at least 2 routers")
    edges: List[Tuple[str, str]] = []
    name = lambda r, c: f"g{r}_{c}"  # noqa: E731 - tiny local helper
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((name(r, c), name(r, c + 1)))
            if r + 1 < rows:
                edges.append((name(r, c), name(r + 1, c)))
    return Network.from_edges(
        edges, capacity=capacity, name=f"grid-{rows}x{cols}"
    )


def tree_network(
    branching: int, depth: int, capacity: float = DEFAULT_CAPACITY
) -> Network:
    """A balanced tree; internal degree ``branching + 1``, diameter ``2*depth``."""
    if branching < 1 or depth < 1:
        raise TopologyError("tree needs branching >= 1 and depth >= 1")
    g = nx.balanced_tree(branching, depth)
    edges = [(f"t{u}", f"t{v}") for u, v in g.edges()]
    return Network.from_edges(
        edges, capacity=capacity, name=f"tree-{branching}x{depth}"
    )


def dumbbell_network(
    n_left: int,
    n_right: int,
    capacity: float = DEFAULT_CAPACITY,
    bottleneck_capacity: float = None,
) -> Network:
    """Two stars joined by a single bottleneck link.

    The classic shape for admission-control stress tests: every left-to-right
    flow shares the ``hubL -- hubR`` bottleneck.
    """
    if n_left < 1 or n_right < 1:
        raise TopologyError("dumbbell needs at least one leaf per side")
    net = Network(f"dumbbell-{n_left}x{n_right}")
    net.add_router("hubL", is_edge=False)
    net.add_router("hubR", is_edge=False)
    for i in range(n_left):
        net.add_router(f"L{i}")
        net.add_link(f"L{i}", "hubL", capacity)
    for i in range(n_right):
        net.add_router(f"R{i}")
        net.add_link(f"R{i}", "hubR", capacity)
    net.add_link(
        "hubL",
        "hubR",
        capacity if bottleneck_capacity is None else bottleneck_capacity,
    )
    return net


def fat_tree_network(
    k: int = 4, capacity: float = DEFAULT_CAPACITY
) -> Network:
    """A k-ary fat-tree (data-center Clos), ``k`` even.

    ``(k/2)^2`` core switches, ``k`` pods of ``k/2`` aggregation +
    ``k/2`` edge switches each.  Only edge switches are edge routers
    (hosts attach there); core/aggregation are pure core.  Diameter 4
    between edge switches in distinct pods — structurally similar to the
    paper's setting despite the very different degree profile, which is
    what makes it an interesting extension topology.
    """
    if k < 2 or k % 2 != 0:
        raise TopologyError(f"fat-tree arity k must be even >= 2, got {k}")
    half = k // 2
    net = Network(f"fat-tree-{k}")
    cores = [f"core{i}_{j}" for i in range(half) for j in range(half)]
    for name in cores:
        net.add_router(name, is_edge=False)
    for pod in range(k):
        aggs = [f"p{pod}_agg{a}" for a in range(half)]
        edges = [f"p{pod}_edge{e}" for e in range(half)]
        for name in aggs:
            net.add_router(name, is_edge=False)
        for name in edges:
            net.add_router(name, is_edge=True)
        for a, agg in enumerate(aggs):
            for edge in edges:
                net.add_link(agg, edge, capacity)
            # Aggregation switch `a` connects to core row `a`.
            for j in range(half):
                net.add_link(agg, f"core{a}_{j}", capacity)
    return net


def waxman_network(
    n: int,
    seed: int,
    *,
    alpha: float = 0.6,
    beta: float = 0.35,
    capacity: float = DEFAULT_CAPACITY,
    max_tries: int = 200,
) -> Network:
    """A connected Waxman random geometric graph (the classic ISP model).

    Routers are placed uniformly in the unit square; each pair is linked
    with probability ``alpha * exp(-distance / (beta * sqrt(2)))`` —
    nearby routers connect densely, long hauls are rare, which mimics
    real backbone economics better than G(n, p).  Deterministic per
    ``(n, seed, alpha, beta)``.
    """
    if n < 2:
        raise TopologyError("waxman network needs at least 2 routers")
    if not (0 < alpha <= 1) or beta <= 0:
        raise TopologyError("need 0 < alpha <= 1 and beta > 0")
    for attempt in range(max_tries):
        # NetworkX's parameter names are swapped relative to the classic
        # formula: its `beta` is the multiplier, its `alpha` the scale.
        g = nx.waxman_graph(
            n, beta=alpha, alpha=beta, seed=seed + attempt
        )
        if nx.is_connected(g):
            edges = [(f"w{u}", f"w{v}") for u, v in g.edges()]
            return Network.from_edges(
                edges, capacity=capacity, name=f"waxman-{n}-{seed}"
            )
    raise TopologyError(
        f"no connected Waxman({n}) found in {max_tries} tries; "
        "increase alpha/beta"
    )


def random_network(
    n: int,
    p: float,
    seed: int,
    capacity: float = DEFAULT_CAPACITY,
    max_tries: int = 200,
) -> Network:
    """A connected Erdős–Rényi ``G(n, p)`` network (deterministic per seed).

    Samples until a connected instance appears (incrementing a derived seed),
    so the result is reproducible for a given ``(n, p, seed)``.
    """
    if n < 2:
        raise TopologyError("random network needs at least 2 routers")
    if not (0.0 < p <= 1.0):
        raise TopologyError(f"edge probability must be in (0, 1], got {p}")
    for attempt in range(max_tries):
        g = nx.gnp_random_graph(n, p, seed=seed + attempt)
        if nx.is_connected(g):
            edges = [(f"r{u}", f"r{v}") for u, v in g.edges()]
            return Network.from_edges(
                edges, capacity=capacity, name=f"gnp-{n}-{seed}"
            )
    raise TopologyError(
        f"no connected G({n}, {p}) found in {max_tries} tries; increase p"
    )
