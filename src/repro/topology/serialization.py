"""(De)serialization of networks to plain dictionaries / JSON.

The dictionary schema is intentionally simple and stable::

    {
      "name": "mci-backbone",
      "routers": [{"name": "Seattle", "is_edge": true}, ...],
      "links": [{"u": "Seattle", "v": "Denver", "capacity": 1e8}, ...]
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict

from ..errors import TopologyError
from .network import Network

__all__ = ["network_to_dict", "network_from_dict", "dumps", "loads"]

_SCHEMA_KEYS = {"name", "routers", "links"}


def network_to_dict(network: Network) -> Dict[str, Any]:
    """Serialize a network to a JSON-compatible dictionary."""
    routers = [
        {"name": name, "is_edge": network.router(name).is_edge}
        for name in network.routers()
    ]
    links = []
    seen = set()
    for link in network.directed_links():
        if link.reverse_key in seen:
            continue
        seen.add(link.key)
        links.append(
            {"u": link.tail, "v": link.head, "capacity": link.capacity}
        )
    return {"name": network.name, "routers": routers, "links": links}


def network_from_dict(data: Dict[str, Any]) -> Network:
    """Rebuild a network from :func:`network_to_dict` output."""
    missing = _SCHEMA_KEYS - set(data)
    if missing:
        raise TopologyError(f"network dict missing keys: {sorted(missing)}")
    net = Network(str(data["name"]))
    for router in data["routers"]:
        net.add_router(router["name"], is_edge=bool(router.get("is_edge", True)))
    for link in data["links"]:
        net.add_link(link["u"], link["v"], float(link["capacity"]))
    return net


def dumps(network: Network, **json_kwargs: Any) -> str:
    """Serialize a network to a JSON string."""
    return json.dumps(network_to_dict(network), **json_kwargs)


def loads(text: str) -> Network:
    """Rebuild a network from a JSON string."""
    return network_from_dict(json.loads(text))
