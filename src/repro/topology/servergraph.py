"""Index-based link-server view of a network.

The delay analysis (Section 5.1.1 of the paper) works on **link servers** —
the output queues of directed links — not on routers.  This module flattens a
:class:`~repro.topology.network.Network` into integer-indexed arrays so the
numeric kernels in :mod:`repro.analysis` can be fully vectorized:

* every directed link ``u -> v`` gets a dense index ``0 .. S-1``;
* per-server capacity and fan-in live in NumPy arrays;
* router-level paths translate to arrays of server indices.

Fan-in is the paper's ``N`` — the number of input links a packet can arrive
on at the server's router.  The paper assumes a uniform ``N`` (the maximum
router degree); we record per-server fan-in too so the analysis can use
either convention.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

from ..errors import TopologyError, UnknownLinkError
from .network import Network

__all__ = ["LinkServerGraph"]


class LinkServerGraph:
    """Dense integer indexing of a network's directed link servers.

    Parameters
    ----------
    network:
        Source topology.  The expansion snapshots the network; later mutation
        of the network is not reflected.
    count_host_link:
        If True, each server's fan-in counts one extra input link for
        locally injected (host) traffic at its tail router.  The paper's
        uniform-``N`` convention does not need this; it matters only in
        ``per_server`` fan-in mode on leaf routers.

    Attributes
    ----------
    capacities:
        ``float64[S]`` — per-server link capacity (bits/second).
    fan_in:
        ``int64[S]`` — per-server number of input links (paper's ``N_k``).
    """

    def __init__(self, network: Network, *, count_host_link: bool = False):
        if network.num_routers == 0:
            raise TopologyError("cannot expand an empty network")
        self.network = network
        self.count_host_link = bool(count_host_link)

        keys: List[Tuple[Hashable, Hashable]] = []
        caps: List[float] = []
        fan_in: List[int] = []
        extra = 1 if count_host_link else 0
        for link in network.directed_links():
            keys.append(link.key)
            caps.append(link.capacity)
            fan_in.append(network.degree(link.tail) + extra)

        self._keys: Tuple[Tuple[Hashable, Hashable], ...] = tuple(keys)
        self._index: Dict[Tuple[Hashable, Hashable], int] = {
            key: i for i, key in enumerate(keys)
        }
        self.capacities = np.asarray(caps, dtype=np.float64)
        self.fan_in = np.asarray(fan_in, dtype=np.int64)

    # ------------------------------------------------------------------ #
    # size / lookup
    # ------------------------------------------------------------------ #

    @property
    def num_servers(self) -> int:
        return len(self._keys)

    def __len__(self) -> int:
        return self.num_servers

    def server_index(self, tail: Hashable, head: Hashable) -> int:
        """Dense index of the directed link server ``tail -> head``."""
        try:
            return self._index[(tail, head)]
        except KeyError:
            raise UnknownLinkError(tail, head) from None

    def server_key(self, index: int) -> Tuple[Hashable, Hashable]:
        """The ``(tail, head)`` pair for a dense index."""
        return self._keys[index]

    def server_keys(self) -> Tuple[Tuple[Hashable, Hashable], ...]:
        return self._keys

    def capacity_of(self, tail: Hashable, head: Hashable) -> float:
        return float(self.capacities[self.server_index(tail, head)])

    # ------------------------------------------------------------------ #
    # uniform parameters (paper convention)
    # ------------------------------------------------------------------ #

    def uniform_capacity(self) -> float:
        """The common capacity ``C``; raises if capacities differ."""
        c0 = float(self.capacities[0])
        if not np.all(self.capacities == c0):
            raise TopologyError(
                "network has heterogeneous link capacities; "
                "no uniform C exists"
            )
        return c0

    def uniform_fan_in(self) -> int:
        """The paper's uniform ``N``: the maximum fan-in over all servers."""
        return int(self.fan_in.max())

    # ------------------------------------------------------------------ #
    # route translation
    # ------------------------------------------------------------------ #

    def route_servers(self, router_path: Sequence[Hashable]) -> np.ndarray:
        """Translate a router-level path into server indices.

        ``[v0, v1, ..., vm]`` becomes the ``int64[m]`` array of the servers
        ``v0->v1, v1->v2, ..., v(m-1)->vm``.  A single-node path yields an
        empty array (source == destination: no queueing).
        """
        if len(router_path) < 1:
            raise TopologyError("route must contain at least one router")
        out = np.empty(len(router_path) - 1, dtype=np.int64)
        for i in range(len(router_path) - 1):
            out[i] = self.server_index(router_path[i], router_path[i + 1])
        return out

    def routes_servers(
        self, router_paths: Sequence[Sequence[Hashable]]
    ) -> List[np.ndarray]:
        """Vector form of :meth:`route_servers` for many paths."""
        return [self.route_servers(p) for p in router_paths]

    def servers_to_route(self, servers: Sequence[int]) -> List[Hashable]:
        """Inverse of :meth:`route_servers`: indices back to a router path.

        Raises :class:`TopologyError` if consecutive servers do not chain
        (head of one must be tail of the next).
        """
        if len(servers) == 0:
            raise TopologyError("cannot invert an empty server list")
        path: List[Hashable] = []
        prev_head: Hashable = None
        for pos, idx in enumerate(servers):
            tail, head = self._keys[int(idx)]
            if pos == 0:
                path.append(tail)
            elif tail != prev_head:
                raise TopologyError(
                    f"servers do not chain at position {pos}: "
                    f"{prev_head!r} != {tail!r}"
                )
            path.append(head)
            prev_head = head
        return path

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LinkServerGraph(servers={self.num_servers}, "
            f"N={self.uniform_fan_in()})"
        )
