"""Network topology substrate.

Routers and full-duplex links (:class:`Network`), the link-server expansion
used by the delay analysis (:class:`LinkServerGraph`), ready-made topologies
(including the paper's MCI backbone), property reports and serialization.
"""

from .builders import (
    MCI_EDGES,
    MCI_ROUTERS,
    NSFNET_EDGES,
    NSFNET_ROUTERS,
    dumbbell_network,
    fat_tree_network,
    full_mesh,
    grid_network,
    line_network,
    mci_backbone,
    nsfnet_backbone,
    random_network,
    ring_network,
    star_network,
    tree_network,
    waxman_network,
)
from .network import Network
from .properties import TopologyReport, analyze, eccentricities, farthest_pairs
from .router import DEFAULT_CAPACITY, DirectedLink, Router
from .serialization import dumps, loads, network_from_dict, network_to_dict
from .servergraph import LinkServerGraph

__all__ = [
    "DEFAULT_CAPACITY",
    "DirectedLink",
    "LinkServerGraph",
    "MCI_EDGES",
    "MCI_ROUTERS",
    "NSFNET_EDGES",
    "NSFNET_ROUTERS",
    "Network",
    "Router",
    "TopologyReport",
    "analyze",
    "dumbbell_network",
    "fat_tree_network",
    "dumps",
    "eccentricities",
    "farthest_pairs",
    "full_mesh",
    "grid_network",
    "line_network",
    "loads",
    "mci_backbone",
    "nsfnet_backbone",
    "network_from_dict",
    "network_to_dict",
    "random_network",
    "ring_network",
    "star_network",
    "tree_network",
    "waxman_network",
]
