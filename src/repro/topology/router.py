"""Router and link records.

The paper models a network as routers connected by full-duplex physical
links; every *direction* of a physical link is an independent **link
server** (the output queue feeding that directed link).  This module holds
the small value types; the container lives in
:mod:`repro.topology.network`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Tuple

__all__ = ["Router", "DirectedLink", "DEFAULT_CAPACITY"]

#: Default link capacity: 100 Mbps, the value used throughout the paper's
#: evaluation (Section 6).
DEFAULT_CAPACITY: float = 100e6


@dataclass(frozen=True)
class Router:
    """A router (node) in the topology.

    Parameters
    ----------
    name:
        Hashable identifier (string in the built-in topologies).
    is_edge:
        Whether the router can act as an edge router, i.e. a point where
        flows enter/leave the network.  In the paper's experiment *all*
        routers are edge routers, so that is the default.
    """

    name: Hashable
    is_edge: bool = True

    def __str__(self) -> str:  # pragma: no cover - trivial
        return str(self.name)


@dataclass(frozen=True)
class DirectedLink:
    """One direction of a physical link, i.e. one link server.

    Attributes
    ----------
    tail, head:
        The link carries traffic from router ``tail`` to router ``head``;
        its queue lives at ``tail``'s output port.
    capacity:
        Transmission rate in bits per second.
    """

    tail: Hashable
    head: Hashable
    capacity: float = DEFAULT_CAPACITY

    @property
    def key(self) -> Tuple[Hashable, Hashable]:
        """The ``(tail, head)`` pair identifying this link server."""
        return (self.tail, self.head)

    @property
    def reverse_key(self) -> Tuple[Hashable, Hashable]:
        """The key of the opposite direction of the same physical link."""
        return (self.head, self.tail)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.tail}->{self.head}"
