"""Router-level network container.

:class:`Network` stores routers and full-duplex physical links.  It is a thin
domain wrapper around :class:`networkx.Graph`; the heavier, index-based view
used by the numeric delay kernels is :class:`repro.topology.servergraph.LinkServerGraph`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

import networkx as nx

from ..errors import TopologyError, UnknownLinkError, UnknownNodeError
from .router import DEFAULT_CAPACITY, DirectedLink, Router

__all__ = ["Network"]


class Network:
    """A network of routers joined by full-duplex links.

    Links are *physical* (undirected) at this level; each direction becomes
    an independent link server in the expanded
    :class:`~repro.topology.servergraph.LinkServerGraph`.

    Examples
    --------
    >>> net = Network("triangle")
    >>> for name in "abc":
    ...     net.add_router(name)
    >>> _ = net.add_link("a", "b")
    >>> _ = net.add_link("b", "c")
    >>> _ = net.add_link("c", "a")
    >>> net.num_routers, net.num_physical_links
    (3, 3)
    >>> net.diameter()
    1
    """

    def __init__(self, name: str = "network"):
        self.name = name
        self._graph = nx.Graph()
        self._routers: Dict[Hashable, Router] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    def add_router(self, name: Hashable, *, is_edge: bool = True) -> Router:
        """Add a router; returns the :class:`Router` record.

        Adding a router twice with identical attributes is a no-op;
        conflicting re-adds raise :class:`TopologyError`.
        """
        existing = self._routers.get(name)
        router = Router(name=name, is_edge=is_edge)
        if existing is not None:
            if existing != router:
                raise TopologyError(
                    f"router {name!r} already exists with different attributes"
                )
            return existing
        self._routers[name] = router
        self._graph.add_node(name)
        return router

    def add_link(
        self,
        u: Hashable,
        v: Hashable,
        capacity: float = DEFAULT_CAPACITY,
    ) -> Tuple[DirectedLink, DirectedLink]:
        """Add a full-duplex link between existing routers ``u`` and ``v``.

        Returns the two directed link servers ``(u->v, v->u)``.  Both
        directions get the same ``capacity`` (bits/second).
        """
        if u == v:
            raise TopologyError(f"self-loop link at router {u!r}")
        if capacity <= 0:
            raise TopologyError(f"link capacity must be positive, got {capacity}")
        for node in (u, v):
            if node not in self._routers:
                raise UnknownNodeError(node)
        if self._graph.has_edge(u, v):
            raise TopologyError(f"link {u!r} -- {v!r} already exists")
        self._graph.add_edge(u, v, capacity=float(capacity))
        return (
            DirectedLink(u, v, float(capacity)),
            DirectedLink(v, u, float(capacity)),
        )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def num_routers(self) -> int:
        return self._graph.number_of_nodes()

    @property
    def num_physical_links(self) -> int:
        return self._graph.number_of_edges()

    @property
    def num_link_servers(self) -> int:
        """Directed link servers: two per physical link."""
        return 2 * self._graph.number_of_edges()

    def routers(self) -> List[Hashable]:
        """Router names in insertion order."""
        return list(self._routers)

    def router(self, name: Hashable) -> Router:
        try:
            return self._routers[name]
        except KeyError:
            raise UnknownNodeError(name) from None

    def edge_routers(self) -> List[Hashable]:
        """Routers where flows may enter/leave the network."""
        return [name for name, r in self._routers.items() if r.is_edge]

    def has_router(self, name: Hashable) -> bool:
        return name in self._routers

    def has_link(self, u: Hashable, v: Hashable) -> bool:
        """True if a physical link joins ``u`` and ``v`` (either direction)."""
        return self._graph.has_edge(u, v)

    def directed_links(self) -> Iterator[DirectedLink]:
        """Iterate over all directed link servers (two per physical link)."""
        for u, v, data in self._graph.edges(data=True):
            cap = data["capacity"]
            yield DirectedLink(u, v, cap)
            yield DirectedLink(v, u, cap)

    def link(self, u: Hashable, v: Hashable) -> DirectedLink:
        """The directed link server ``u -> v``."""
        if not self._graph.has_edge(u, v):
            raise UnknownLinkError(u, v)
        return DirectedLink(u, v, self._graph.edges[u, v]["capacity"])

    def capacity(self, u: Hashable, v: Hashable) -> float:
        return self.link(u, v).capacity

    def neighbors(self, name: Hashable) -> List[Hashable]:
        if name not in self._routers:
            raise UnknownNodeError(name)
        return list(self._graph.neighbors(name))

    def degree(self, name: Hashable) -> int:
        if name not in self._routers:
            raise UnknownNodeError(name)
        return int(self._graph.degree[name])

    def max_degree(self) -> int:
        """Maximum router degree — the paper's ``N`` for a topology."""
        if self.num_routers == 0:
            raise TopologyError("empty network has no degree")
        return max(int(d) for _, d in self._graph.degree)

    def is_connected(self) -> bool:
        if self.num_routers == 0:
            return False
        return nx.is_connected(self._graph)

    def diameter(self) -> int:
        """Hop-count diameter — the paper's ``L`` for a topology."""
        if not self.is_connected():
            raise TopologyError("diameter undefined: network not connected")
        return int(nx.diameter(self._graph))

    def to_networkx(self) -> nx.Graph:
        """A *copy* of the underlying undirected graph."""
        return self._graph.copy()

    @property
    def graph(self) -> nx.Graph:
        """Read-only view intended for algorithms; do not mutate."""
        return self._graph

    def without_link(self, u: Hashable, v: Hashable) -> "Network":
        """A copy of the network with the physical link ``u -- v`` removed.

        Used by failure-repair workflows; raises if the link does not
        exist or if removing it would disconnect the network (a repair
        over a partitioned network is a different problem).
        """
        if not self._graph.has_edge(u, v):
            raise UnknownLinkError(u, v)
        out = Network(f"{self.name}-minus-{u}-{v}")
        for name, router in self._routers.items():
            out.add_router(name, is_edge=router.is_edge)
        for a, b, data in self._graph.edges(data=True):
            if {a, b} == {u, v}:
                continue
            out.add_link(a, b, data["capacity"])
        if not out.is_connected():
            raise TopologyError(
                f"removing {u!r} -- {v!r} disconnects the network"
            )
        return out

    # ------------------------------------------------------------------ #
    # dunder
    # ------------------------------------------------------------------ #

    def __contains__(self, name: Hashable) -> bool:
        return name in self._routers

    def __len__(self) -> int:
        return self.num_routers

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Network({self.name!r}, routers={self.num_routers}, "
            f"links={self.num_physical_links})"
        )

    # ------------------------------------------------------------------ #
    # bulk construction helper
    # ------------------------------------------------------------------ #

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Tuple[Hashable, Hashable]],
        *,
        capacity: float = DEFAULT_CAPACITY,
        name: str = "network",
        edge_routers: Optional[Iterable[Hashable]] = None,
    ) -> "Network":
        """Build a network from an edge list with uniform capacity.

        Parameters
        ----------
        edges:
            Iterable of ``(u, v)`` pairs.
        capacity:
            Capacity applied to every link (bits/second).
        edge_routers:
            If given, only these routers are marked ``is_edge``; all others
            become core routers.
        """
        edge_list = list(edges)
        edge_set = None if edge_routers is None else set(edge_routers)
        net = cls(name)
        for u, v in edge_list:
            for node in (u, v):
                if node not in net:
                    is_edge = edge_set is None or node in edge_set
                    net.add_router(node, is_edge=is_edge)
            net.add_link(u, v, capacity)
        return net
