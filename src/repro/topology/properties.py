"""Topology property report.

Collects the quantities the paper's analysis consumes (``L``, ``N``, ``C``)
plus general statistics useful when comparing topologies in the extension
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Tuple

import networkx as nx

from ..errors import TopologyError
from .network import Network

__all__ = ["TopologyReport", "analyze", "eccentricities", "farthest_pairs"]


@dataclass(frozen=True)
class TopologyReport:
    """Summary of the analysis-relevant properties of a network.

    Attributes
    ----------
    diameter:
        Hop-count diameter — the paper's ``L``.
    max_degree:
        Maximum router degree — the paper's ``N``.
    """

    name: str
    num_routers: int
    num_physical_links: int
    num_link_servers: int
    diameter: int
    max_degree: int
    min_degree: int
    mean_degree: float
    radius: int
    average_shortest_path: float
    is_uniform_capacity: bool
    capacity: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "num_routers": self.num_routers,
            "num_physical_links": self.num_physical_links,
            "num_link_servers": self.num_link_servers,
            "diameter": self.diameter,
            "max_degree": self.max_degree,
            "min_degree": self.min_degree,
            "mean_degree": self.mean_degree,
            "radius": self.radius,
            "average_shortest_path": self.average_shortest_path,
            "is_uniform_capacity": self.is_uniform_capacity,
            "capacity": self.capacity,
        }


def analyze(network: Network) -> TopologyReport:
    """Compute a :class:`TopologyReport` for a connected network."""
    if not network.is_connected():
        raise TopologyError("topology report requires a connected network")
    g = network.graph
    degrees = [int(d) for _, d in g.degree]
    caps = {data["capacity"] for _, _, data in g.edges(data=True)}
    uniform = len(caps) == 1
    return TopologyReport(
        name=network.name,
        num_routers=network.num_routers,
        num_physical_links=network.num_physical_links,
        num_link_servers=network.num_link_servers,
        diameter=int(nx.diameter(g)),
        max_degree=max(degrees),
        min_degree=min(degrees),
        mean_degree=sum(degrees) / len(degrees),
        radius=int(nx.radius(g)),
        average_shortest_path=float(nx.average_shortest_path_length(g)),
        is_uniform_capacity=uniform,
        capacity=caps.pop() if uniform else float("nan"),
    )


def eccentricities(network: Network) -> Dict[Hashable, int]:
    """Per-router eccentricity (max hop distance to any other router)."""
    if not network.is_connected():
        raise TopologyError("eccentricity requires a connected network")
    return {k: int(v) for k, v in nx.eccentricity(network.graph).items()}


def farthest_pairs(network: Network) -> Tuple[Tuple[Hashable, Hashable], ...]:
    """All router pairs at exactly diameter distance (each listed once)."""
    if not network.is_connected():
        raise TopologyError("farthest pairs require a connected network")
    g = network.graph
    diam = nx.diameter(g)
    pairs = []
    lengths = dict(nx.all_pairs_shortest_path_length(g))
    routers = network.routers()
    for i, u in enumerate(routers):
        for v in routers[i + 1:]:
            if lengths[u][v] == diam:
                pairs.append((u, v))
    return tuple(pairs)
