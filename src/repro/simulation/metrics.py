"""Measurement collection for the packet simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

__all__ = ["DelayRecorder", "SimulationReport"]


class DelayRecorder:
    """Accumulates per-class end-to-end and per-(server, class) hop delays."""

    def __init__(self, track_flow_delays: bool = False):
        self._e2e: Dict[str, List[float]] = {}
        self._hop_max: Dict[Tuple[int, str], float] = {}
        self._flow_max: Dict[Hashable, float] = {}
        self._flow_count: Dict[Hashable, int] = {}
        # Full per-flow delay series (opt-in: the chaos harness needs
        # per-flow miss counts; regular validation only needs the max).
        self._flow_delays: Optional[Dict[Hashable, List[float]]] = (
            {} if track_flow_delays else None
        )
        self.packets_delivered = 0

    def record_delivery(
        self, class_name: str, delay: float, flow_id: Hashable = None
    ) -> None:
        self._e2e.setdefault(class_name, []).append(delay)
        self.packets_delivered += 1
        if flow_id is not None:
            if delay > self._flow_max.get(flow_id, -1.0):
                self._flow_max[flow_id] = delay
            self._flow_count[flow_id] = self._flow_count.get(flow_id, 0) + 1
            if self._flow_delays is not None:
                self._flow_delays.setdefault(flow_id, []).append(delay)

    def record_hop(
        self, server_index: int, class_name: str, residence: float
    ) -> None:
        key = (server_index, class_name)
        if residence > self._hop_max.get(key, 0.0):
            self._hop_max[key] = residence

    # ------------------------------------------------------------------ #

    def e2e_delays(self, class_name: str) -> np.ndarray:
        return np.asarray(self._e2e.get(class_name, ()), dtype=np.float64)

    def classes(self) -> List[str]:
        return sorted(self._e2e)

    def max_e2e(self, class_name: str) -> float:
        d = self.e2e_delays(class_name)
        return float(d.max()) if d.size else 0.0

    def max_hop_delay(self, server_index: int, class_name: str) -> float:
        return self._hop_max.get((server_index, class_name), 0.0)

    def worst_hop_delays(self, class_name: str) -> Dict[int, float]:
        return {
            server: value
            for (server, name), value in self._hop_max.items()
            if name == class_name
        }

    def flow_worst(self, flow_id: Hashable) -> float:
        """Worst end-to-end delay a flow's packets experienced."""
        return self._flow_max.get(flow_id, 0.0)

    def flow_packet_count(self, flow_id: Hashable) -> int:
        return self._flow_count.get(flow_id, 0)

    def per_flow_worst(self) -> Dict[Hashable, float]:
        """Worst delay per flow id (delivered flows only)."""
        return dict(self._flow_max)

    def flow_deadline_misses(
        self, flow_id: Hashable, deadline: float
    ) -> int:
        """Delivered packets of the flow that exceeded ``deadline``.

        Requires ``track_flow_delays=True`` at construction.
        """
        if self._flow_delays is None:
            raise ValueError(
                "per-flow delay tracking was not enabled "
                "(DelayRecorder(track_flow_delays=True))"
            )
        delays = self._flow_delays.get(flow_id, ())
        return sum(1 for d in delays if d > deadline)


@dataclass
class SimulationReport:
    """Summary handed back by :meth:`Simulator.run`.

    Attributes
    ----------
    horizon:
        Simulated time span in seconds.
    packets_injected / packets_delivered / packets_in_flight:
        Conservation accounting:
        injected == delivered + in_flight + dropped.
    packets_dropped:
        Packets lost to injected link/router failures (zero unless the
        run scheduled faults).
    dropped_per_flow:
        ``{flow_id: dropped packet count}`` for flows that lost packets.
    e2e:
        ``{class_name: delay array}`` of delivered packets.
    """

    horizon: float
    packets_injected: int
    packets_delivered: int
    packets_in_flight: int
    events_processed: int
    e2e: Dict[str, np.ndarray]
    recorder: DelayRecorder = field(repr=False, default=None)
    packets_dropped: int = 0
    dropped_per_flow: Dict[Hashable, int] = field(default_factory=dict)

    def max_e2e(self, class_name: str) -> float:
        d = self.e2e.get(class_name)
        return float(d.max()) if d is not None and d.size else 0.0

    def mean_e2e(self, class_name: str) -> float:
        d = self.e2e.get(class_name)
        return float(d.mean()) if d is not None and d.size else float("nan")

    def percentile_e2e(self, class_name: str, q: float) -> float:
        d = self.e2e.get(class_name)
        if d is None or d.size == 0:
            return float("nan")
        return float(np.percentile(d, q))

    def deadline_misses(self, class_name: str, deadline: float) -> int:
        """Packets of the class delivered after ``deadline`` seconds."""
        d = self.e2e.get(class_name)
        if d is None or d.size == 0:
            return 0
        return int(np.sum(d > deadline))

    def miss_fraction(self, class_name: str, deadline: float) -> float:
        """Deadline-miss probability estimate for the class."""
        d = self.e2e.get(class_name)
        if d is None or d.size == 0:
            return float("nan")
        return float(np.mean(d > deadline))

    def jitter(self, class_name: str) -> float:
        """Delay spread (max - min) of the class's delivered packets."""
        d = self.e2e.get(class_name)
        if d is None or d.size == 0:
            return float("nan")
        return float(d.max() - d.min())

    @property
    def conserved(self) -> bool:
        """Every injected packet is delivered, queued, or dropped."""
        return (
            self.packets_injected
            == self.packets_delivered
            + self.packets_in_flight
            + self.packets_dropped
        )
