"""Discrete-event engine wiring topology, routes, flows and sources.

The engine models exactly what the analysis models: packets experience
queueing and transmission at every link server of their route; switching
fabric and propagation delays are zero (the paper folds constant delays
into the deadline).  Scheduling is class-based static priority,
non-preemptive, FIFO within a class.

Typical use::

    sim = Simulator(graph, registry)
    sim.add_flow(flow, route, PacketPattern("greedy", packet_size=640))
    report = sim.run(horizon=2.0)
    assert report.max_e2e("voice") <= analytic_bound
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import SimulationError
from ..obs import OBS
from ..topology.servergraph import LinkServerGraph
from ..traffic.classes import ClassRegistry
from ..traffic.flows import FlowSpec
from .events import EventQueue
from .metrics import DelayRecorder, SimulationReport
from .packets import Packet
from .servers import StaticPriorityServer
from .sources import PacketPattern, emission_times

__all__ = ["Simulator"]


@dataclass
class _FlowBinding:
    flow: FlowSpec
    servers: np.ndarray
    pattern: PacketPattern
    priority: int
    start: float = 0.0
    stop: Optional[float] = None  # None: until the horizon


class Simulator:
    """Packet-level simulator over a link-server graph.

    Parameters
    ----------
    ingress_serialization:
        When True (default), all flows entering the network at the same
        router share one access wire at that router's first-hop link rate:
        injection instants are serialized so at most ``C`` bits/second
        enter per router.  This matches the analysis' premise that every
        input — including the host side — is a capacity-``C`` link; with
        it off, simultaneous injections from many flows can exceed any
        per-flow fluid envelope at the first server and the analytic
        bounds no longer apply.
    scheduling:
        ``"priority"`` (default) is the paper's class-based static
        priority.  ``"fifo"`` serves all classes from one queue — the
        ablation showing why the delay guarantees *need* the priority
        structure (best-effort bursts then delay real-time packets
        arbitrarily).
    track_flow_delays:
        Record the full per-flow delay series (needed for per-flow
        deadline-miss counts, e.g. by the chaos harness); off by default
        to keep long validation runs lean.

    Fault injection
    ---------------
    :meth:`add_link_fault` / :meth:`add_server_fault` schedule link
    servers to die (and optionally recover) *inside* the event loop:
    a dead server drops its queued packets, a packet mid-transmission at
    the cut is dropped at its completion time (it was on the wire), and
    arrivals at a dead server are dropped on contact.  Dropped packets
    are reported per flow and enter the conservation accounting.
    """

    SCHEDULING_MODES = ("priority", "fifo")

    def __init__(
        self,
        graph: LinkServerGraph,
        registry: ClassRegistry,
        *,
        ingress_serialization: bool = True,
        scheduling: str = "priority",
        track_flow_delays: bool = False,
    ):
        if scheduling not in self.SCHEDULING_MODES:
            raise SimulationError(
                f"unknown scheduling {scheduling!r}; "
                f"expected one of {self.SCHEDULING_MODES}"
            )
        self.graph = graph
        self.registry = registry
        self.ingress_serialization = bool(ingress_serialization)
        self.scheduling = scheduling
        self.track_flow_delays = bool(track_flow_delays)
        self._flows: List[_FlowBinding] = []
        # (server index, down time, optional up time)
        self._faults: List[Tuple[int, float, Optional[float]]] = []
        self._packet_counter = 0
        self._servers_last_run: Dict[int, StaticPriorityServer] = {}

    # ------------------------------------------------------------------ #
    # setup
    # ------------------------------------------------------------------ #

    def add_flow(
        self,
        flow: FlowSpec,
        route: Sequence[Hashable],
        pattern: PacketPattern,
        *,
        start: float = 0.0,
        stop: Optional[float] = None,
    ) -> None:
        """Attach a source for ``flow`` along ``route`` (router-level path).

        ``start``/``stop`` bound the flow's lifetime (seconds): the source
        emits only within ``[start, min(stop, horizon))``.  Dynamic
        scenarios (admission-control co-simulation) use these to attach
        each admitted flow for exactly its holding time.
        """
        cls = self.registry.get(flow.class_name)
        if not cls.is_realtime and cls.rate <= 0:
            raise SimulationError(
                f"flow {flow.flow_id!r}: class {cls.name!r} has no rate; "
                "give best-effort classes an explicit burst/rate to simulate"
            )
        if start < 0:
            raise SimulationError(
                f"flow {flow.flow_id!r}: start must be >= 0"
            )
        if stop is not None and stop <= start:
            raise SimulationError(
                f"flow {flow.flow_id!r}: stop must exceed start"
            )
        servers = self.graph.route_servers(route)
        if servers.size == 0:
            raise SimulationError(
                f"flow {flow.flow_id!r}: route has no link servers"
            )
        # Under FIFO scheduling every class shares one queue.
        priority = 0 if self.scheduling == "fifo" else cls.priority
        self._flows.append(
            _FlowBinding(
                flow=flow,
                servers=servers,
                pattern=pattern,
                priority=priority,
                start=float(start),
                stop=None if stop is None else float(stop),
            )
        )

    def add_server_fault(
        self,
        server_index: int,
        down_at: float,
        up_at: Optional[float] = None,
    ) -> None:
        """Schedule one link server to fail at ``down_at`` (seconds).

        With ``up_at`` the server recovers at that time (queues restart
        empty); without it the server stays dead for the whole run.
        """
        if down_at < 0:
            raise SimulationError("fault down_at must be >= 0")
        if up_at is not None and up_at <= down_at:
            raise SimulationError("fault up_at must exceed down_at")
        if not (0 <= int(server_index) < self.graph.num_servers):
            raise SimulationError(
                f"unknown server index {server_index!r}"
            )
        self._faults.append((int(server_index), float(down_at), up_at))

    def add_link_fault(
        self,
        u: Hashable,
        v: Hashable,
        down_at: float,
        up_at: Optional[float] = None,
    ) -> None:
        """Schedule the full-duplex link ``u -- v`` to fail (both
        directed servers) at ``down_at``, optionally recovering at
        ``up_at``."""
        for path in ((u, v), (v, u)):
            server = int(self.graph.route_servers(path)[0])
            self.add_server_fault(server, down_at, up_at)

    # ------------------------------------------------------------------ #
    # run
    # ------------------------------------------------------------------ #

    def run(
        self, horizon: float, *, drain: bool = True
    ) -> SimulationReport:
        """Simulate packet injections in ``[0, horizon)``.

        With ``drain=True`` (default) the engine keeps serving queued
        packets past the horizon until the network is empty, so every
        injected packet is delivered and end-to-end statistics are
        complete; injections stop at the horizon either way.
        """
        if not OBS.enabled:
            return self._run_impl(horizon, drain=drain)
        with OBS.span(
            "simulation.run",
            horizon=horizon,
            flows=len(self._flows),
            scheduling=self.scheduling,
        ) as sp:
            report = self._run_impl(horizon, drain=drain)
            sp.set(
                events=report.events_processed,
                delivered=report.packets_delivered,
            )
        self._record_run(report)
        return report

    def _record_run(self, report: SimulationReport) -> None:
        reg = OBS.registry
        reg.counter("repro_simulation_runs_total").inc()
        reg.counter("repro_simulation_events_total").inc(
            report.events_processed
        )
        for status, value in (
            ("injected", report.packets_injected),
            ("delivered", report.packets_delivered),
            ("in_flight", report.packets_in_flight),
        ):
            reg.counter(
                "repro_simulation_packets_total", status=status
            ).inc(value)
        # Per-class queue-depth high-water marks (priorities map back to
        # the classes that used them; under FIFO all classes share 0).
        prio_classes: Dict[int, set] = {}
        for binding in self._flows:
            prio_classes.setdefault(binding.priority, set()).add(
                binding.flow.class_name
            )
        for server in self._servers_last_run.values():
            for prio, depth in server.max_backlog_per_priority.items():
                for cls in prio_classes.get(prio, ()):
                    reg.gauge(
                        "repro_simulation_max_queue_depth_packets", cls=cls
                    ).max(depth)

    def _run_impl(
        self, horizon: float, *, drain: bool = True
    ) -> SimulationReport:
        if horizon <= 0:
            raise SimulationError("horizon must be positive")
        if not self._flows:
            raise SimulationError("no flows attached to the simulator")

        servers: Dict[int, StaticPriorityServer] = {}
        for binding in self._flows:
            for s in binding.servers:
                s = int(s)
                if s not in servers:
                    servers[s] = StaticPriorityServer(
                        s, float(self.graph.capacities[s])
                    )
        self._servers_last_run = servers

        queue = EventQueue()
        recorder = DelayRecorder(track_flow_delays=self.track_flow_delays)
        dropped_per_flow: Dict[Hashable, int] = {}
        dropped = 0
        injected = 0

        # Fault events go in first so a failure at time t outranks
        # injections at the same instant (deterministic either way: ties
        # break by push order).
        for server_index, down_at, up_at in self._faults:
            if server_index not in servers:
                continue  # no attached flow ever touches this server
            queue.push(down_at, "server_down", servers[server_index])
            if up_at is not None:
                queue.push(up_at, "server_up", servers[server_index])

        injections: List[Tuple[float, int, _FlowBinding]] = []
        for order, binding in enumerate(self._flows):
            cls = self.registry.get(binding.flow.class_name)
            end = horizon if binding.stop is None else min(
                binding.stop, horizon
            )
            if binding.start >= end:
                continue  # lifetime entirely outside the run
            for t in emission_times(
                binding.pattern, cls, end, start=binding.start
            ):
                injections.append((float(t), order, binding))
        if self.ingress_serialization:
            injections = self._serialize_ingress(injections)
        for t, _, binding in injections:
            queue.push(t, "inject", binding)
            injected += 1

        events_processed = 0
        while queue:
            time, _, kind, payload = queue.pop()
            events_processed += 1

            if kind == "inject":
                binding: _FlowBinding = payload
                self._packet_counter += 1
                packet = Packet(
                    packet_id=self._packet_counter,
                    flow_id=binding.flow.flow_id,
                    class_name=binding.flow.class_name,
                    priority=binding.priority,
                    size_bits=binding.pattern.packet_size,
                    servers=binding.servers,
                    created_at=time,
                )
                lost = self._arrive(packet, time, servers, queue)
                if lost is not None:
                    dropped += 1
                    dropped_per_flow[lost.flow_id] = (
                        dropped_per_flow.get(lost.flow_id, 0) + 1
                    )

            elif kind == "depart":
                server: StaticPriorityServer = payload
                packet = server.complete_service()
                if server.dead:
                    # The packet was on the wire when the link cut.
                    server.packets_dropped += 1
                    dropped += 1
                    dropped_per_flow[packet.flow_id] = (
                        dropped_per_flow.get(packet.flow_id, 0) + 1
                    )
                else:
                    hop = packet.hop
                    recorder.record_hop(
                        server.server_index,
                        packet.class_name,
                        packet.hop_delay(hop, time),
                    )
                    packet.hop += 1
                    if packet.hop < packet.servers.size:
                        lost = self._arrive(packet, time, servers, queue)
                        if lost is not None:
                            dropped += 1
                            dropped_per_flow[lost.flow_id] = (
                                dropped_per_flow.get(lost.flow_id, 0) + 1
                            )
                    else:
                        packet.delivered_at = time
                        recorder.record_delivery(
                            packet.class_name,
                            packet.end_to_end_delay,
                            flow_id=packet.flow_id,
                        )
                # The server may have more work.
                if server.has_work:
                    _, done = server.start_service(time)
                    queue.push(done, "depart", server)

            elif kind == "server_down":
                server = payload
                for lost in server.fail():
                    dropped += 1
                    dropped_per_flow[lost.flow_id] = (
                        dropped_per_flow.get(lost.flow_id, 0) + 1
                    )

            elif kind == "server_up":
                payload.recover()

            else:  # pragma: no cover - engine emits four kinds only
                raise SimulationError(f"unknown event kind {kind!r}")

            if not drain and time >= horizon:
                break

        in_flight = injected - recorder.packets_delivered - dropped
        return SimulationReport(
            horizon=horizon,
            packets_injected=injected,
            packets_delivered=recorder.packets_delivered,
            packets_in_flight=in_flight,
            events_processed=events_processed,
            e2e={
                name: recorder.e2e_delays(name)
                for name in recorder.classes()
            },
            recorder=recorder,
            packets_dropped=dropped,
            dropped_per_flow=dropped_per_flow,
        )

    # ------------------------------------------------------------------ #

    def _serialize_ingress(
        self, injections: List[Tuple[float, int, _FlowBinding]]
    ) -> List[Tuple[float, int, _FlowBinding]]:
        """Serialize injections over one access wire per source router.

        Per source router, packets are released in requested order but no
        faster than the first-hop link rate, emulating a host-side link of
        the same capacity (the wire every paper input link has).
        """
        injections.sort(key=lambda e: (e[0], e[1]))
        wire_free: Dict[Hashable, float] = {}
        out: List[Tuple[float, int, _FlowBinding]] = []
        for t, order, binding in injections:
            source = binding.flow.source
            rate = float(self.graph.capacities[int(binding.servers[0])])
            release = max(t, wire_free.get(source, 0.0))
            release += binding.pattern.packet_size / rate
            wire_free[source] = release
            out.append((release, order, binding))
        out.sort(key=lambda e: (e[0], e[1]))
        return out

    @staticmethod
    def _arrive(
        packet: Packet,
        time: float,
        servers: Dict[int, StaticPriorityServer],
        queue: EventQueue,
    ) -> Optional[Packet]:
        """Deliver the packet to its next-hop server.

        Returns the packet if the server is dead (caller records the
        drop), None on a normal arrival.
        """
        server = servers[int(packet.servers[packet.hop])]
        if server.dead:
            server.packets_dropped += 1
            return packet
        packet.hop_arrivals.append(time)
        server.enqueue(packet)
        if not server.busy:
            _, done = server.start_service(time)
            queue.push(done, "depart", server)
        return None
