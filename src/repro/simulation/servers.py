"""Static-priority link servers.

The paper's packet forwarding model (Section 4): class-based static
priority — packets are served in priority order across classes and FIFO
within a class; service is non-preemptive (a lower-priority packet in
transmission finishes before a newly arrived higher-priority packet
starts).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from ..errors import SimulationError
from .packets import Packet

__all__ = ["StaticPriorityServer"]


class StaticPriorityServer:
    """Output-queue state of one link server."""

    def __init__(self, server_index: int, capacity: float):
        if capacity <= 0:
            raise SimulationError("server capacity must be positive")
        self.server_index = server_index
        self.capacity = float(capacity)
        self._queues: Dict[int, Deque[Packet]] = {}
        self._priorities: List[int] = []    # sorted, ascending = higher first
        self.busy = False
        self.in_service: Optional[Packet] = None
        #: Dead servers (failed links) accept no packets; see :meth:`fail`.
        self.dead = False
        # statistics
        self.packets_served = 0
        self.bits_served = 0.0
        self.packets_dropped = 0
        self.max_backlog_packets = 0
        self.max_backlog_per_priority: Dict[int, int] = {}

    # ------------------------------------------------------------------ #

    def enqueue(self, packet: Packet) -> None:
        """Add a packet to its class queue."""
        prio = packet.priority
        queue = self._queues.get(prio)
        if queue is None:
            queue = deque()
            self._queues[prio] = queue
            self._priorities = sorted(self._queues)
        queue.append(packet)
        backlog = self.backlog_packets
        if backlog > self.max_backlog_packets:
            self.max_backlog_packets = backlog
        depth = len(queue)
        if depth > self.max_backlog_per_priority.get(prio, 0):
            self.max_backlog_per_priority[prio] = depth

    def start_service(self, now: float) -> Tuple[Packet, float]:
        """Dequeue the next packet and return (packet, completion time).

        Caller must ensure the server is idle and non-empty.
        """
        if self.busy:
            raise SimulationError(
                f"server {self.server_index} is already transmitting"
            )
        packet = self._pop_highest()
        if packet is None:
            raise SimulationError(
                f"server {self.server_index} has nothing to serve"
            )
        self.busy = True
        self.in_service = packet
        return packet, now + packet.size_bits / self.capacity

    def complete_service(self) -> Packet:
        """Mark the in-flight transmission finished; returns the packet."""
        if not self.busy or self.in_service is None:
            raise SimulationError(
                f"server {self.server_index} has no transmission to complete"
            )
        packet = self.in_service
        self.busy = False
        self.in_service = None
        self.packets_served += 1
        self.bits_served += packet.size_bits
        return packet

    def fail(self) -> List[Packet]:
        """Mark the link dead and drop every queued packet.

        Returns the dropped packets (queued only).  A packet already in
        transmission is the caller's problem: its departure event is in
        flight, and the engine drops it at completion time when the
        server is still dead (it was on the wire when the link cut).
        """
        self.dead = True
        dropped: List[Packet] = []
        for queue in self._queues.values():
            dropped.extend(queue)
            queue.clear()
        self.packets_dropped += len(dropped)
        return dropped

    def recover(self) -> None:
        """Bring the link back into service (queues start empty)."""
        self.dead = False

    def drop_in_service(self) -> Optional[Packet]:
        """Abort the in-flight transmission on a dead link, if any."""
        if not self.busy or self.in_service is None:
            return None
        packet = self.in_service
        self.busy = False
        self.in_service = None
        self.packets_dropped += 1
        return packet

    def _pop_highest(self) -> Optional[Packet]:
        for prio in self._priorities:
            queue = self._queues[prio]
            if queue:
                return queue.popleft()
        return None

    # ------------------------------------------------------------------ #

    @property
    def backlog_packets(self) -> int:
        """Queued packets (excluding the one in transmission)."""
        return sum(len(q) for q in self._queues.values())

    @property
    def has_work(self) -> bool:
        return self.backlog_packets > 0

    def backlog_bits(self) -> float:
        return sum(p.size_bits for q in self._queues.values() for p in q)
