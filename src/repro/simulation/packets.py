"""Packet records for the discrete-event simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, List, Optional

import numpy as np

__all__ = ["Packet"]


@dataclass
class Packet:
    """One packet traversing a route of link servers.

    Times are simulation seconds.  ``hop_arrivals[i]`` is the arrival time
    at the ``i``-th server of the route; ``delivered_at`` is set when the
    last transmission completes.
    """

    packet_id: int
    flow_id: Hashable
    class_name: str
    priority: int
    size_bits: float
    servers: np.ndarray            # int64 route, in link-server indices
    created_at: float
    hop: int = 0
    hop_arrivals: List[float] = field(default_factory=list)
    delivered_at: Optional[float] = None

    @property
    def delivered(self) -> bool:
        return self.delivered_at is not None

    @property
    def end_to_end_delay(self) -> float:
        """Delivery time minus creation time (seconds)."""
        if self.delivered_at is None:
            raise ValueError(f"packet {self.packet_id} not delivered yet")
        return self.delivered_at - self.created_at

    def hop_delay(self, hop: int, departure: float) -> float:
        """Residence time at one hop given its departure instant."""
        return departure - self.hop_arrivals[hop]
