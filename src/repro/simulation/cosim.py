"""Admission/packet co-simulation.

The strongest end-to-end validation the library offers: replay a dynamic
flow schedule through a run-time admission controller and simultaneously
simulate the *admitted* traffic at packet level.  If the configuration was
verified (Figure 2) and the controller enforces it, **no admitted packet
may miss its class deadline** — an executable restatement of the paper's
whole pipeline.

The co-simulation is two-phase (admission decisions in the paper's model
do not depend on queue state, only on the utilization ledger, so the
phases commute):

1. replay the schedule through the controller, recording each admitted
   flow's lifetime ``[arrival, departure)``;
2. run the packet simulator with one windowed source per admitted flow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Sequence

from ..admission.base import AdmissionController
from ..admission.statistics import ReplayStats, replay_schedule
from ..errors import SimulationError
from ..topology.servergraph import LinkServerGraph
from ..traffic.classes import ClassRegistry
from ..traffic.generators import FlowEvent
from .metrics import SimulationReport
from .simulator import PacketPattern, Simulator

__all__ = ["CoSimulationResult", "co_simulate"]


@dataclass
class CoSimulationResult:
    """Joint outcome of the admission replay and the packet run."""

    admission: ReplayStats
    packets: SimulationReport
    deadline_misses: Dict[str, int]
    flows_simulated: int

    @property
    def guarantees_held(self) -> bool:
        """True iff no admitted packet missed its class deadline."""
        return all(v == 0 for v in self.deadline_misses.values())


def co_simulate(
    graph: LinkServerGraph,
    registry: ClassRegistry,
    controller: AdmissionController,
    schedule: Sequence[FlowEvent],
    *,
    packet_size: float,
    pattern_kind: str = "poisson",
    horizon: Optional[float] = None,
    seed: int = 0,
) -> CoSimulationResult:
    """Replay ``schedule`` through ``controller`` and simulate admitted flows.

    Parameters
    ----------
    controller:
        A fresh admission controller wired to the same ``graph`` and
        configured route map (flows without pinned routes resolve through
        it).
    packet_size:
        Packet size in bits for every simulated source.
    pattern_kind:
        Source behavior of admitted flows (``"poisson"``, ``"periodic"``
        or the adversarial ``"greedy"``).
    horizon:
        Simulation end; defaults to the last schedule event time.
    """
    if not schedule:
        raise SimulationError("empty schedule")
    if horizon is None:
        horizon = max(e.time for e in schedule)
    if horizon <= 0:
        raise SimulationError("horizon must be positive")

    # Phase 1: admission decisions and lifetimes.
    arrivals: Dict[Hashable, float] = {}
    departures: Dict[Hashable, float] = {}
    for event in schedule:
        if event.kind == "arrival":
            arrivals.setdefault(event.flow.flow_id, event.time)
        else:
            departures[event.flow.flow_id] = event.time
    stats = replay_schedule(controller, schedule)
    admitted_ids = {
        d.flow_id for d in controller.decisions if d.admitted
    }

    # Phase 2: packet simulation of the admitted population.
    sim = Simulator(graph, registry)
    flows_simulated = 0
    for j, event in enumerate(schedule):
        if event.kind != "arrival":
            continue
        flow = event.flow
        if flow.flow_id not in admitted_ids:
            continue
        start = arrivals[flow.flow_id]
        stop = departures.get(flow.flow_id, horizon)
        if start >= horizon:
            continue
        sim.add_flow(
            flow,
            controller.resolve_route(flow),
            PacketPattern(
                pattern_kind,
                packet_size=packet_size,
                seed=seed * 92_821 + j,
            ),
            start=start,
            stop=min(stop, horizon),
        )
        flows_simulated += 1
    if flows_simulated == 0:
        raise SimulationError("no admitted flow overlaps the horizon")
    report = sim.run(horizon=horizon)

    misses = {
        cls.name: report.deadline_misses(cls.name, cls.deadline)
        for cls in registry.realtime_classes()
    }
    return CoSimulationResult(
        admission=stats,
        packets=report,
        deadline_misses=misses,
        flows_simulated=flows_simulated,
    )
