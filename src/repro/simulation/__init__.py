"""Packet-level discrete-event simulator (class-based static priority)."""

from .cosim import CoSimulationResult, co_simulate
from .events import EventQueue
from .metrics import DelayRecorder, SimulationReport
from .packets import Packet
from .servers import StaticPriorityServer
from .simulator import Simulator
from .sources import PacketPattern, TokenBucketPolicer, emission_times

__all__ = [
    "CoSimulationResult",
    "DelayRecorder",
    "EventQueue",
    "Packet",
    "PacketPattern",
    "SimulationReport",
    "Simulator",
    "StaticPriorityServer",
    "co_simulate",
    "TokenBucketPolicer",
    "emission_times",
]
