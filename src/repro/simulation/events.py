"""Event queue for the discrete-event engine.

A thin, safe wrapper over :mod:`heapq`: events are ``(time, seq, kind,
payload)`` tuples where ``seq`` is a monotonically increasing sequence
number that (a) breaks time ties deterministically in insertion order and
(b) keeps the heap comparison away from arbitrary payload objects.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Iterator, Optional, Tuple

from ..errors import SimulationError

__all__ = ["EventQueue"]

Event = Tuple[float, int, str, Any]


class EventQueue:
    """Deterministic min-heap of timestamped events."""

    def __init__(self):
        self._heap: list = []
        self._seq = itertools.count()
        self._last_popped = float("-inf")

    def push(self, time: float, kind: str, payload: Any = None) -> None:
        """Schedule an event. Times must not precede the last popped event."""
        if time < self._last_popped:
            raise SimulationError(
                f"scheduling into the past: {time} < {self._last_popped}"
            )
        heapq.heappush(self._heap, (time, next(self._seq), kind, payload))

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        event = heapq.heappop(self._heap)
        self._last_popped = event[0]
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the next event, or None when empty."""
        return self._heap[0][0] if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
