"""Traffic sources for the packet simulator.

Every source is leaky-bucket compliant by construction: packets are drawn
from an arrival *pattern* and then passed through a token-bucket policer
that delays non-conforming packets (never drops).  The policer is exposed
separately so tests can assert conformance of any emission sequence
against the class envelope.

Patterns
--------
* ``greedy`` — the adversarial worst case of the analysis: the full burst
  ``T`` at start, then back-to-back packets at exactly rate ``rho``.
* ``periodic`` — one packet every ``size/rho`` seconds (no burst).
* ``poisson`` — exponential inter-arrival times with mean ``size/rho``
  (seeded), policed to the envelope.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

import numpy as np

from ..errors import SimulationError
from ..traffic.classes import TrafficClass

__all__ = ["TokenBucketPolicer", "PacketPattern", "emission_times"]


class TokenBucketPolicer:
    """A token bucket ``(T, rho)`` that delays packets into conformance.

    ``conform(t, size)`` returns the earliest time >= ``t`` at which a
    packet of ``size`` bits may be released.  Calls must be made in
    nondecreasing release order (which the generators guarantee).
    """

    def __init__(self, burst: float, rate: float):
        if burst <= 0 or rate <= 0:
            raise SimulationError("token bucket needs positive burst and rate")
        self.burst = float(burst)
        self.rate = float(rate)
        self._tokens = float(burst)
        self._last = 0.0

    def conform(self, t: float, size: float) -> float:
        if size > self.burst:
            raise SimulationError(
                f"packet of {size} bits exceeds bucket depth {self.burst}"
            )
        if t < self._last:
            t = self._last
        # Refill up to t.
        self._tokens = min(
            self.burst, self._tokens + (t - self._last) * self.rate
        )
        self._last = t
        if self._tokens >= size:
            self._tokens -= size
            return t
        wait = (size - self._tokens) / self.rate
        release = t + wait
        # At release the bucket holds exactly `size` tokens.
        self._tokens = 0.0
        self._last = release
        return release


@dataclass(frozen=True)
class PacketPattern:
    """Arrival pattern specification for one flow's source."""

    kind: str                 # "greedy" | "periodic" | "poisson"
    packet_size: float        # bits
    seed: int = 0             # used by "poisson"

    def __post_init__(self):
        if self.kind not in ("greedy", "periodic", "poisson"):
            raise SimulationError(f"unknown pattern kind {self.kind!r}")
        if self.packet_size <= 0:
            raise SimulationError("packet size must be positive")


def emission_times(
    pattern: PacketPattern,
    traffic_class: TrafficClass,
    horizon: float,
    *,
    start: float = 0.0,
) -> np.ndarray:
    """Leaky-bucket-compliant packet release times in ``[start, horizon)``.

    All patterns are policed against the class envelope ``(T, rho)``; the
    returned array is sorted and each prefix satisfies the envelope.
    """
    if horizon <= start:
        raise SimulationError("horizon must exceed start")
    size = pattern.packet_size
    if size > traffic_class.burst:
        raise SimulationError(
            f"packet size {size} exceeds class burst {traffic_class.burst}"
        )
    policer = TokenBucketPolicer(traffic_class.burst, traffic_class.rate)
    interval = size / traffic_class.rate

    raw: Iterator[float]
    if pattern.kind == "greedy":
        # Request everything immediately; the policer shapes it into the
        # worst-case envelope-saturating sequence.
        n = int(math.ceil((horizon - start) / interval)) + int(
            traffic_class.burst // size
        )
        raw = iter(start for _ in range(max(n, 1)))
    elif pattern.kind == "periodic":
        n = int(math.ceil((horizon - start) / interval))
        raw = iter(start + k * interval for k in range(n))
    else:  # poisson
        rng = np.random.default_rng(pattern.seed)
        times: List[float] = []
        t = start
        while t < horizon + 2 * interval:
            t += float(rng.exponential(interval))
            times.append(t)
        raw = iter(times)

    out: List[float] = []
    for t in raw:
        release = policer.conform(t, size)
        if release >= horizon:
            break
        out.append(release)
    return np.asarray(out, dtype=np.float64)
