"""Flow specifications and flow collections.

A *flow* (paper, Section 3) is a unidirectional packet stream between two
edge routers, belonging to one traffic class, following a single route.  The
run-time admission controller and the flow-aware baseline both operate on
:class:`FlowSpec` records; :class:`FlowSet` groups them for the analysis.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from ..errors import TrafficError

__all__ = [
    "FlowSpec",
    "FlowSet",
    "PRIORITIES",
    "PRIORITY_CODES",
    "fresh_flow_id",
    "priority_rank",
]

#: Flow priorities, lowest first (eviction order).  Priorities are
#: orthogonal to traffic classes: the class fixes the policed envelope
#: and the slot column, the priority only matters to the overload
#: control plane (:mod:`repro.control`).  A flow without a priority
#: ranks below every named one.
PRIORITIES = ("elastic", "soft_rt", "hard_rt")

#: Flow-table tag codes for priorities (unset flows tag -1).
PRIORITY_CODES = {name: i + 1 for i, name in enumerate(PRIORITIES)}

_PRIORITY_RANKS = {name: i + 1 for i, name in enumerate(PRIORITIES)}


def priority_rank(priority: Optional[str]) -> int:
    """Total order on priorities; ``None`` (unset) ranks lowest."""
    return 0 if priority is None else _PRIORITY_RANKS[priority]


_flow_counter = itertools.count(1)


def fresh_flow_id() -> int:
    """Monotonic flow identifier for interactively created flows."""
    return next(_flow_counter)


@dataclass(frozen=True)
class FlowSpec:
    """One unidirectional flow request.

    Parameters
    ----------
    flow_id:
        Unique identifier (any hashable; integers from
        :func:`fresh_flow_id` by default).
    class_name:
        Name of the flow's traffic class in the configuration's registry.
        The flow is policed to the *class* envelope at the ingress
        (homogeneous flows per class, as the paper assumes).
    source, destination:
        Edge routers.  Must differ.
    route:
        Optional router-level path pinned for this flow.  When absent, the
        configured route for ``(source, destination)`` is used.
    priority:
        Optional overload-control priority (one of :data:`PRIORITIES`).
        Ignored by plain admission; the control plane's preemption
        policy evicts lower priorities first and never a ``hard_rt``.
    """

    flow_id: Hashable
    class_name: str
    source: Hashable
    destination: Hashable
    route: Optional[Tuple[Hashable, ...]] = None
    priority: Optional[str] = None

    def __post_init__(self):
        if self.priority is not None and self.priority not in PRIORITIES:
            raise TrafficError(
                f"flow {self.flow_id!r}: unknown priority "
                f"{self.priority!r} (expected one of {PRIORITIES})"
            )
        if self.source == self.destination:
            raise TrafficError(
                f"flow {self.flow_id!r}: source equals destination "
                f"({self.source!r})"
            )
        if self.route is not None:
            route = tuple(self.route)
            if len(route) < 2:
                raise TrafficError(
                    f"flow {self.flow_id!r}: route must have >= 2 routers"
                )
            if route[0] != self.source or route[-1] != self.destination:
                raise TrafficError(
                    f"flow {self.flow_id!r}: route endpoints "
                    f"{route[0]!r}..{route[-1]!r} do not match "
                    f"{self.source!r}->{self.destination!r}"
                )
            if len(set(route)) != len(route):
                raise TrafficError(
                    f"flow {self.flow_id!r}: route visits a router twice"
                )
            object.__setattr__(self, "route", route)

    @property
    def pair(self) -> Tuple[Hashable, Hashable]:
        return (self.source, self.destination)


class FlowSet:
    """A collection of flows with per-class and per-pair indexing."""

    def __init__(self, flows: Optional[Iterable[FlowSpec]] = None):
        self._flows: Dict[Hashable, FlowSpec] = {}
        for f in flows or []:
            self.add(f)

    def add(self, flow: FlowSpec) -> None:
        if flow.flow_id in self._flows:
            raise TrafficError(f"duplicate flow id {flow.flow_id!r}")
        self._flows[flow.flow_id] = flow

    def remove(self, flow_id: Hashable) -> FlowSpec:
        try:
            return self._flows.pop(flow_id)
        except KeyError:
            raise TrafficError(f"unknown flow id {flow_id!r}") from None

    def __contains__(self, flow_id: Hashable) -> bool:
        return flow_id in self._flows

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self) -> Iterator[FlowSpec]:
        return iter(self._flows.values())

    def get(self, flow_id: Hashable) -> FlowSpec:
        try:
            return self._flows[flow_id]
        except KeyError:
            raise TrafficError(f"unknown flow id {flow_id!r}") from None

    def by_class(self) -> Dict[str, List[FlowSpec]]:
        out: Dict[str, List[FlowSpec]] = {}
        for f in self:
            out.setdefault(f.class_name, []).append(f)
        return out

    def by_pair(self) -> Dict[Tuple[Hashable, Hashable], List[FlowSpec]]:
        out: Dict[Tuple[Hashable, Hashable], List[FlowSpec]] = {}
        for f in self:
            out.setdefault(f.pair, []).append(f)
        return out

    def count_class(self, class_name: str) -> int:
        return sum(1 for f in self if f.class_name == class_name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FlowSet(n={len(self)})"
