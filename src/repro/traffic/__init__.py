"""Traffic substrate: envelopes, classes, flows, workload generators."""

from .classes import (
    BEST_EFFORT_PRIORITY,
    ClassRegistry,
    TrafficClass,
    class_from_tspec,
)
from .conformance import ConformanceReport, check_conformance
from .envelope import (
    Envelope,
    constant_rate_envelope,
    leaky_bucket_envelope,
    tspec_envelope,
)
from .flows import FlowSet, FlowSpec, fresh_flow_id
from .generators import (
    FlowEvent,
    all_ordered_pairs,
    data_class,
    gravity_demand,
    poisson_flow_schedule,
    random_pairs,
    uniform_flow_demand,
    video_class,
    voice_class,
)

__all__ = [
    "BEST_EFFORT_PRIORITY",
    "ClassRegistry",
    "ConformanceReport",
    "Envelope",
    "FlowEvent",
    "FlowSet",
    "FlowSpec",
    "TrafficClass",
    "all_ordered_pairs",
    "check_conformance",
    "class_from_tspec",
    "constant_rate_envelope",
    "data_class",
    "fresh_flow_id",
    "gravity_demand",
    "leaky_bucket_envelope",
    "tspec_envelope",
    "poisson_flow_schedule",
    "random_pairs",
    "uniform_flow_demand",
    "video_class",
    "voice_class",
]
