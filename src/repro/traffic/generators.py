"""Workload generators.

Ready-made traffic classes (the paper's VoIP scenario plus common extras)
and deterministic, seedable generators of flow demand for the admission
control and simulation experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import TrafficError
from ..topology.network import Network
from ..units import kbps, mbps, milliseconds
from .classes import TrafficClass
from .flows import FlowSpec

__all__ = [
    "gravity_demand",
    "voice_class",
    "video_class",
    "data_class",
    "all_ordered_pairs",
    "random_pairs",
    "uniform_flow_demand",
    "FlowEvent",
    "poisson_flow_schedule",
]


def voice_class(
    name: str = "voice",
    deadline: float = milliseconds(100),
    priority: int = 1,
) -> TrafficClass:
    """The paper's VoIP class: T = 640 bits, rho = 32 kbps, D = 100 ms."""
    return TrafficClass(
        name=name,
        burst=640.0,
        rate=kbps(32),
        deadline=deadline,
        priority=priority,
    )


def video_class(
    name: str = "video",
    deadline: float = milliseconds(200),
    priority: int = 2,
) -> TrafficClass:
    """A streaming-video-like class: 8 kb burst at 1 Mbps, 200 ms deadline."""
    return TrafficClass(
        name=name,
        burst=8_000.0,
        rate=mbps(1),
        deadline=deadline,
        priority=priority,
    )


def data_class(
    name: str = "data",
    deadline: float = milliseconds(500),
    priority: int = 3,
) -> TrafficClass:
    """A bulk-transfer class with a loose deadline: 12 kb burst at 2 Mbps."""
    return TrafficClass(
        name=name,
        burst=12_000.0,
        rate=mbps(2),
        deadline=deadline,
        priority=priority,
    )


# ---------------------------------------------------------------------- #
# demand generation
# ---------------------------------------------------------------------- #


def all_ordered_pairs(
    network: Network,
) -> List[Tuple[Hashable, Hashable]]:
    """Every ordered pair of distinct edge routers.

    This is the paper's Table 1 demand: "flows can be established between
    any two routers".
    """
    edges = network.edge_routers()
    return [(u, v) for u in edges for v in edges if u != v]


def random_pairs(
    network: Network,
    count: int,
    seed: int,
    *,
    allow_repeats: bool = True,
) -> List[Tuple[Hashable, Hashable]]:
    """``count`` random ordered pairs of distinct edge routers."""
    if count < 0:
        raise TrafficError(f"pair count must be >= 0, got {count}")
    edges = network.edge_routers()
    if len(edges) < 2:
        raise TrafficError("need at least two edge routers")
    rng = np.random.default_rng(seed)
    pairs: List[Tuple[Hashable, Hashable]] = []
    seen = set()
    attempts = 0
    while len(pairs) < count:
        attempts += 1
        if attempts > 100 * max(count, 1) + 1000:
            raise TrafficError(
                "could not generate enough distinct pairs; "
                "reduce count or set allow_repeats=True"
            )
        i, j = rng.integers(0, len(edges), size=2)
        if i == j:
            continue
        pair = (edges[int(i)], edges[int(j)])
        if not allow_repeats and pair in seen:
            continue
        seen.add(pair)
        pairs.append(pair)
    return pairs


def uniform_flow_demand(
    pairs: Sequence[Tuple[Hashable, Hashable]],
    class_name: str,
    flows_per_pair: int = 1,
    id_prefix: str = "f",
) -> List[FlowSpec]:
    """``flows_per_pair`` identical flows of one class for every pair."""
    if flows_per_pair < 1:
        raise TrafficError(
            f"flows_per_pair must be >= 1, got {flows_per_pair}"
        )
    flows = []
    for p_idx, (src, dst) in enumerate(pairs):
        for rep in range(flows_per_pair):
            flows.append(
                FlowSpec(
                    flow_id=f"{id_prefix}{p_idx}_{rep}",
                    class_name=class_name,
                    source=src,
                    destination=dst,
                )
            )
    return flows


def gravity_demand(
    network: Network,
    total_flows: int,
    class_name: str,
    seed: int,
    *,
    skew: float = 1.0,
    id_prefix: str = "g",
) -> List[FlowSpec]:
    """Gravity-model demand: flow volume proportional to endpoint mass.

    Each edge router gets a random "mass" ``m ~ Uniform(0,1)^skew``
    (higher ``skew`` = more concentrated demand, the realistic hotspot
    shape); pair ``(u, v)`` attracts flows with probability proportional
    to ``m_u * m_v``.  Deterministic per seed.
    """
    if total_flows < 0:
        raise TrafficError("total_flows must be >= 0")
    if skew <= 0:
        raise TrafficError("skew must be positive")
    edges = network.edge_routers()
    if len(edges) < 2:
        raise TrafficError("need at least two edge routers")
    rng = np.random.default_rng(seed)
    mass = rng.uniform(0.0, 1.0, size=len(edges)) ** skew + 1e-9
    pairs = [
        (i, j)
        for i in range(len(edges))
        for j in range(len(edges))
        if i != j
    ]
    weights = np.asarray([mass[i] * mass[j] for i, j in pairs])
    weights = weights / weights.sum()
    choices = rng.choice(len(pairs), size=total_flows, p=weights)
    flows = []
    for k, c in enumerate(choices):
        i, j = pairs[int(c)]
        flows.append(
            FlowSpec(
                flow_id=f"{id_prefix}{seed}_{k}",
                class_name=class_name,
                source=edges[i],
                destination=edges[j],
            )
        )
    return flows


@dataclass(frozen=True)
class FlowEvent:
    """One event in a dynamic admission-control scenario.

    ``kind`` is ``"arrival"`` or ``"departure"``; departures reference the
    arrival's flow.
    """

    time: float
    kind: str
    flow: FlowSpec


def poisson_flow_schedule(
    network: Network,
    class_name: str,
    arrival_rate: float,
    mean_holding: float,
    horizon: float,
    seed: int,
) -> List[FlowEvent]:
    """A Poisson flow arrival process with exponential holding times.

    Flows arrive at rate ``arrival_rate`` (flows/second) between uniformly
    random distinct edge-router pairs and hold for Exp(``mean_holding``)
    seconds.  Returns the merged arrival+departure event list sorted by
    time (departures after ``horizon`` are kept so every arrival has a
    matching departure).
    """
    if arrival_rate <= 0 or mean_holding <= 0 or horizon <= 0:
        raise TrafficError(
            "arrival_rate, mean_holding and horizon must be positive"
        )
    edges = network.edge_routers()
    if len(edges) < 2:
        raise TrafficError("need at least two edge routers")
    rng = np.random.default_rng(seed)
    events: List[FlowEvent] = []
    t = 0.0
    k = 0
    while True:
        t += float(rng.exponential(1.0 / arrival_rate))
        if t >= horizon:
            break
        i, j = rng.choice(len(edges), size=2, replace=False)
        flow = FlowSpec(
            flow_id=f"p{seed}_{k}",
            class_name=class_name,
            source=edges[int(i)],
            destination=edges[int(j)],
        )
        hold = float(rng.exponential(mean_holding))
        events.append(FlowEvent(time=t, kind="arrival", flow=flow))
        events.append(FlowEvent(time=t + hold, kind="departure", flow=flow))
        k += 1
    events.sort(key=lambda e: (e.time, 0 if e.kind == "departure" else 1))
    return events
