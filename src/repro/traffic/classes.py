"""Traffic classes and the class registry.

Following the DiffServ model of the paper (Section 3), flows are partitioned
into a small number of classes.  Each class carries

* a leaky-bucket source envelope ``(T_i, rho_i)``,
* an end-to-end deadline ``D_i`` (infinity for best-effort),
* a static priority (smaller number = served first).

A :class:`ClassRegistry` holds the classes of one network configuration,
orders them by priority and validates uniqueness.  The registry is the unit
handed to the configuration procedures and the admission controller.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import ClassRegistryError, TrafficError
from .envelope import Envelope, leaky_bucket_envelope

__all__ = [
    "TrafficClass",
    "ClassRegistry",
    "BEST_EFFORT_PRIORITY",
    "class_from_tspec",
]

#: Conventional priority for the best-effort class (lowest service priority).
BEST_EFFORT_PRIORITY = 1_000_000


@dataclass(frozen=True)
class TrafficClass:
    """One DiffServ class.

    Parameters
    ----------
    name:
        Unique class name, e.g. ``"voice"``.
    burst:
        Leaky-bucket depth ``T`` in bits (> 0 for real-time classes).
    rate:
        Leaky-bucket sustained rate ``rho`` in bits/second (> 0 for
        real-time classes).
    deadline:
        End-to-end deadline ``D`` in seconds; ``math.inf`` marks a
        best-effort class.
    priority:
        Static priority; smaller = higher.  Real-time classes must have
        priorities above every best-effort class.
    """

    name: str
    burst: float
    rate: float
    deadline: float
    priority: int

    def __post_init__(self):
        if not self.name:
            raise TrafficError("class name must be non-empty")
        if self.deadline <= 0:
            raise TrafficError(
                f"class {self.name!r}: deadline must be positive"
            )
        if self.is_realtime:
            if self.burst <= 0:
                raise TrafficError(
                    f"class {self.name!r}: real-time burst must be positive"
                )
            if self.rate <= 0:
                raise TrafficError(
                    f"class {self.name!r}: real-time rate must be positive"
                )
        else:
            if self.burst < 0 or self.rate < 0:
                raise TrafficError(
                    f"class {self.name!r}: burst/rate must be non-negative"
                )

    @property
    def is_realtime(self) -> bool:
        """True for deadline-guaranteed classes."""
        return math.isfinite(self.deadline)

    def envelope(self, line_rate: Optional[float] = None) -> Envelope:
        """The source traffic constraint function of one flow of this class."""
        return leaky_bucket_envelope(self.burst, self.rate, line_rate)

    @staticmethod
    def best_effort(name: str = "best-effort") -> "TrafficClass":
        """A conventional best-effort class (no envelope, no deadline)."""
        return TrafficClass(
            name=name,
            burst=0.0,
            rate=0.0,
            deadline=math.inf,
            priority=BEST_EFFORT_PRIORITY,
        )


def class_from_tspec(
    name: str,
    max_packet: float,
    peak_rate: float,
    bucket_depth: float,
    sustained_rate: float,
    deadline: float,
    priority: int,
) -> TrafficClass:
    """Conservatively map an IntServ TSpec onto a UBAC class.

    The paper's analysis consumes single leaky buckets.  A TSpec
    ``min(M + p*I, b + r*I)`` is dominated by its sustained bucket
    ``(b, r)``, so admitting the flow as a ``(T=b, rho=r)`` class member
    is safe: every guarantee derived for the class envelope also covers
    the TSpec source (the peak-rate constraint only removes traffic).
    The loss of precision is the price of flow aggregation; the
    flow-aware baseline can use the full
    :func:`~repro.traffic.envelope.tspec_envelope` instead.
    """
    from .envelope import tspec_envelope  # validate parameters

    tspec_envelope(max_packet, peak_rate, bucket_depth, sustained_rate)
    return TrafficClass(
        name=name,
        burst=bucket_depth,
        rate=sustained_rate,
        deadline=deadline,
        priority=priority,
    )


class ClassRegistry:
    """Ordered collection of the traffic classes of one configuration.

    Classes are kept sorted by priority (highest first).  Real-time classes
    must occupy strictly higher priorities than best-effort classes —
    the paper's scheduling model gives deadline traffic absolute priority
    over best-effort traffic.
    """

    def __init__(self, classes: Optional[List[TrafficClass]] = None):
        self._by_name: Dict[str, TrafficClass] = {}
        for cls in classes or []:
            self.add(cls)

    def add(self, cls: TrafficClass) -> None:
        if cls.name in self._by_name:
            raise ClassRegistryError(f"duplicate class name {cls.name!r}")
        if any(c.priority == cls.priority for c in self._by_name.values()):
            raise ClassRegistryError(
                f"duplicate priority {cls.priority} (class {cls.name!r})"
            )
        self._by_name[cls.name] = cls
        self._validate_priorities()

    def _validate_priorities(self) -> None:
        rt = [c.priority for c in self.realtime_classes()]
        be = [c.priority for c in self.best_effort_classes()]
        if rt and be and max(rt) >= min(be):
            raise ClassRegistryError(
                "real-time classes must have strictly higher priority "
                "(smaller number) than best-effort classes"
            )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self) -> Iterator[TrafficClass]:
        return iter(self.ordered())

    def get(self, name: str) -> TrafficClass:
        try:
            return self._by_name[name]
        except KeyError:
            raise ClassRegistryError(f"unknown class {name!r}") from None

    def ordered(self) -> List[TrafficClass]:
        """All classes, highest priority first."""
        return sorted(self._by_name.values(), key=lambda c: c.priority)

    def realtime_classes(self) -> List[TrafficClass]:
        """Real-time classes, highest priority first."""
        return [c for c in self.ordered() if c.is_realtime]

    def best_effort_classes(self) -> List[TrafficClass]:
        return [c for c in self.ordered() if not c.is_realtime]

    def names(self) -> List[str]:
        return [c.name for c in self.ordered()]

    def higher_or_equal(self, name: str) -> List[TrafficClass]:
        """Classes at the same or higher priority than ``name`` (ordered).

        These are exactly the classes that can delay class ``name`` traffic
        under class-based static priority (Section 5.4).
        """
        me = self.get(name)
        return [c for c in self.ordered() if c.priority <= me.priority]

    def index_of(self, name: str) -> int:
        """Position of ``name`` in priority order (0 = highest)."""
        me = self.get(name)
        return self.ordered().index(me)

    # ------------------------------------------------------------------ #
    # convenience constructors
    # ------------------------------------------------------------------ #

    @classmethod
    def two_class(cls, realtime: TrafficClass) -> "ClassRegistry":
        """The paper's base model: one real-time class + best-effort."""
        return cls([realtime, TrafficClass.best_effort()])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ClassRegistry({[c.name for c in self.ordered()]})"
