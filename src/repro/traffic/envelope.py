"""Piecewise-linear concave traffic envelopes (Cruz constraint functions).

The paper characterizes traffic with *traffic constraint functions*
``F(I)`` bounding the arrivals in any interval of length ``I``
(Definition 2, after Cruz).  For leaky-bucket-policed flows these are
concave piecewise-linear functions, and every operation the analysis needs
— summing flows, taking envelope minima, accounting for upstream jitter
(Theorem 2.1 of Cruz: a flow delayed by at most ``Y`` satisfies
``F'(I) = F(I + Y)``), and computing worst-case queueing delay against a
constant-rate server — stays inside that class.

:class:`Envelope` is that class, closed under :meth:`__add__`,
:meth:`minimum`, :meth:`shift` and integer :meth:`scale`.  Instances are
immutable.

Representation
--------------
``breaks_x[0] == 0`` and ``breaks_x`` strictly increasing; ``breaks_y`` are
the function values at the breakpoints; ``final_slope`` applies beyond the
last breakpoint.  Segments between breakpoints are affine.  Concavity
(non-increasing slopes) and monotonicity (non-negative slopes) are validated
at construction.  ``F(0) = breaks_y[0]`` may be positive: an envelope with a
burst admits instantaneous arrival of ``F(0)`` bits.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, Union

import numpy as np

from ..errors import EnvelopeError

__all__ = [
    "Envelope",
    "leaky_bucket_envelope",
    "constant_rate_envelope",
    "tspec_envelope",
]

#: Relative tolerance used when validating concavity and simplifying
#: collinear breakpoints.
_RTOL = 1e-9
_ATOL = 1e-6  # bits — far below one packet


def _as_array(values: Sequence[float]) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise EnvelopeError("breakpoints must be one-dimensional")
    return arr


class Envelope:
    """A concave, nondecreasing, piecewise-linear traffic constraint function.

    Most users construct envelopes through
    :func:`leaky_bucket_envelope` / :func:`constant_rate_envelope` or the
    algebra (``+``, :meth:`minimum`, :meth:`shift`, :meth:`scale`) rather
    than from raw breakpoints.
    """

    __slots__ = ("breaks_x", "breaks_y", "final_slope")

    def __init__(
        self,
        breaks_x: Sequence[float],
        breaks_y: Sequence[float],
        final_slope: float,
    ):
        x = _as_array(breaks_x)
        y = _as_array(breaks_y)
        if x.size == 0 or x.size != y.size:
            raise EnvelopeError(
                f"need equal, nonzero breakpoint counts, got {x.size}/{y.size}"
            )
        if x[0] != 0.0:
            raise EnvelopeError(f"first breakpoint must be at I=0, got {x[0]}")
        if np.any(np.diff(x) <= 0):
            raise EnvelopeError("breakpoints must be strictly increasing")
        if np.any(y < -_ATOL):
            raise EnvelopeError("envelope values must be non-negative")
        final_slope = float(final_slope)
        if final_slope < -_RTOL:
            raise EnvelopeError(f"final slope must be >= 0, got {final_slope}")

        gaps = np.diff(x)
        slopes = np.diff(y) / gaps if x.size > 1 else np.empty(0)
        all_slopes = np.concatenate([slopes, [final_slope]])
        if np.any(all_slopes < -_ATOL):
            raise EnvelopeError("envelope must be nondecreasing")
        # Concave <=> slopes non-increasing.  The tolerance must absorb
        # float rounding of the slopes themselves: each y carries up to
        # ~eps*|y| of error, so a slope over gap g is uncertain by
        # ~eps*max|y|/g — significant when operations (minimum with its
        # interpolated crossings, sums of large envelopes) produce
        # breakpoints separated by tiny gaps.
        scale = max(1.0, float(np.abs(all_slopes).max()))
        base_tol = _RTOL * scale + _ATOL
        if all_slopes.size > 1:
            eps = np.finfo(np.float64).eps
            y_scale = max(1.0, float(np.abs(y).max()))
            inv_gap = 1.0 / gaps
            # Junction i joins segment i (gap[i]) and segment i+1
            # (gap[i+1] or the final-slope region, which has no gap term).
            noise = 4.0 * eps * y_scale * (
                inv_gap + np.concatenate([inv_gap[1:], [0.0]])
            )
            if np.any(np.diff(all_slopes) > base_tol + noise):
                raise EnvelopeError(
                    "envelope must be concave (slopes decreasing)"
                )

        bx, by, fs = self._simplified(x, y, final_slope)
        object.__setattr__(self, "breaks_x", bx)
        object.__setattr__(self, "breaks_y", by)
        object.__setattr__(self, "final_slope", fs)

    def __setattr__(self, *_args):  # immutability
        raise AttributeError("Envelope is immutable")

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def _simplified(
        x: np.ndarray, y: np.ndarray, final_slope: float
    ) -> Tuple[np.ndarray, np.ndarray, float]:
        """Drop breakpoints that do not change the slope."""
        if x.size == 1:
            return x.copy(), np.maximum(y, 0.0).copy(), final_slope
        slopes_in = np.diff(y) / np.diff(x)
        slopes_out = np.concatenate([slopes_in[1:], [final_slope]])
        scale = max(1.0, float(np.abs(slopes_in).max()))
        keep = np.empty(x.size, dtype=bool)
        keep[0] = True
        keep[1:] = np.abs(slopes_in - slopes_out) > _RTOL * scale + _ATOL
        return x[keep].copy(), np.maximum(y[keep], 0.0).copy(), final_slope

    @classmethod
    def zero(cls) -> "Envelope":
        """The all-zero envelope (no traffic)."""
        return cls([0.0], [0.0], 0.0)

    @classmethod
    def affine(cls, burst: float, rate: float) -> "Envelope":
        """``F(I) = burst + rate * I`` (an unclamped leaky bucket)."""
        return cls([0.0], [burst], rate)

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #

    def __call__(self, interval: Union[float, np.ndarray]) -> Union[float, np.ndarray]:
        """Evaluate ``F(I)`` (vectorized; ``I`` must be >= 0)."""
        i = np.asarray(interval, dtype=np.float64)
        if np.any(i < 0):
            raise EnvelopeError("envelope argument must be non-negative")
        inside = np.interp(i, self.breaks_x, self.breaks_y)
        x_last = self.breaks_x[-1]
        y_last = self.breaks_y[-1]
        out = np.where(
            i <= x_last, inside, y_last + self.final_slope * (i - x_last)
        )
        return float(out) if np.isscalar(interval) else out

    @property
    def burst(self) -> float:
        """Instantaneous burst ``F(0)``."""
        return float(self.breaks_y[0])

    @property
    def long_term_rate(self) -> float:
        """The sustained (final) rate of the envelope."""
        return float(self.final_slope)

    # ------------------------------------------------------------------ #
    # algebra
    # ------------------------------------------------------------------ #

    def __add__(self, other: "Envelope") -> "Envelope":
        """Aggregate envelope of two independent traffic streams."""
        if not isinstance(other, Envelope):
            return NotImplemented
        xs = np.union1d(self.breaks_x, other.breaks_x)
        ys = self(xs) + other(xs)
        return Envelope(xs, ys, self.final_slope + other.final_slope)

    def __radd__(self, other):  # supports sum()
        if other == 0:
            return self
        return self.__add__(other)

    def scale(self, n: int) -> "Envelope":
        """Aggregate of ``n`` homogeneous streams with this envelope."""
        if n < 0:
            raise EnvelopeError(f"scale factor must be >= 0, got {n}")
        if n == 0:
            return Envelope.zero()
        return Envelope(
            self.breaks_x, self.breaks_y * n, self.final_slope * n
        )

    def shift(self, delay: float) -> "Envelope":
        """Envelope after experiencing up to ``delay`` seconds of jitter.

        By Cruz's Theorem 2.1 (used in the paper's Theorem 1 proof), a flow
        that satisfied ``F`` at its source and has since been delayed by at
        most ``delay`` satisfies ``F'(I) = F(I + delay)``.
        """
        if delay < 0:
            raise EnvelopeError(f"shift delay must be >= 0, got {delay}")
        if delay == 0.0:
            return self
        x_last = self.breaks_x[-1]
        if delay >= x_last:
            # Entirely into the final-slope region.
            y0 = self.breaks_y[-1] + self.final_slope * (delay - x_last)
            return Envelope([0.0], [y0], self.final_slope)
        keep = self.breaks_x > delay
        xs = np.concatenate([[0.0], self.breaks_x[keep] - delay])
        ys = np.concatenate([[self(delay)], self.breaks_y[keep]])
        return Envelope(xs, ys, self.final_slope)

    def minimum(self, other: "Envelope") -> "Envelope":
        """Pointwise minimum (intersection of traffic constraints)."""
        if not isinstance(other, Envelope):
            raise EnvelopeError("minimum requires another Envelope")
        xs = np.union1d(self.breaks_x, other.breaks_x)
        # Add crossing points between consecutive candidates.
        diff = self(xs) - other(xs)
        crossings: List[float] = []
        for i in range(xs.size - 1):
            a, b = diff[i], diff[i + 1]
            if (a > 0 > b) or (a < 0 < b):
                t = a / (a - b)
                crossings.append(float(xs[i] + t * (xs[i + 1] - xs[i])))
        # Tail crossing beyond the last breakpoint.
        x_tail = float(xs[-1])
        d_tail = float(diff[-1])
        s_diff = self.final_slope - other.final_slope
        if d_tail != 0.0 and s_diff != 0.0:
            t = -d_tail / s_diff
            if t > 0:
                crossings.append(x_tail + t)
        if crossings:
            xs = np.union1d(xs, np.asarray(crossings))
            # Crossing interpolation is ill-conditioned where the two
            # envelopes are near-parallel: it can land microscopically
            # close to an existing breakpoint, and slopes re-derived over
            # such tiny gaps amplify float noise past the concavity
            # tolerance.  Collapse near-duplicate candidates — judged at
            # the *local* x scale: a gap is only noise if it is tiny
            # relative to where it sits, not to the whole span (a distant
            # tail crossing must not swallow a genuine vertex near 0).
            local = np.maximum(np.abs(xs[:-1]), 1.0)
            keep = np.concatenate(
                [[True], np.diff(xs) > 1e-9 * local]
            )
            xs = xs[keep]
        ys = np.minimum(self(xs), other(xs))
        # Beyond the last candidate the ordering is settled; probe one step out.
        probe = float(xs[-1]) + 1.0
        final = (
            self.final_slope if self(probe) <= other(probe) else other.final_slope
        )
        return Envelope(xs, ys, final)

    def clamp_rate(self, line_rate: float) -> "Envelope":
        """Minimum with ``C * I``: the envelope seen after a link of rate C."""
        if line_rate <= 0:
            raise EnvelopeError(f"line rate must be positive, got {line_rate}")
        return self.minimum(Envelope([0.0], [0.0], line_rate))

    # ------------------------------------------------------------------ #
    # queueing quantities vs a constant-rate server
    # ------------------------------------------------------------------ #

    def max_delay(self, service_rate: float) -> float:
        """Worst-case FIFO queueing delay against a server of given rate.

        This is the paper's general delay formula (eq. 3):
        ``d = (1/C) * max_{I>0} (F(I) - C*I)``.  Infinite (raises) if the
        long-term rate exceeds the service rate.
        """
        backlog = self.max_backlog(service_rate)
        return backlog / service_rate

    def max_backlog(self, service_rate: float) -> float:
        """Worst-case backlog ``max_I (F(I) - C*I)`` in bits."""
        if service_rate <= 0:
            raise EnvelopeError(
                f"service rate must be positive, got {service_rate}"
            )
        if self.final_slope > service_rate * (1 + _RTOL):
            raise EnvelopeError(
                f"unstable server: arrival rate {self.final_slope} exceeds "
                f"service rate {service_rate}"
            )
        # Concave F minus linear C*I is concave; max is at a breakpoint.
        values = self.breaks_y - service_rate * self.breaks_x
        return float(max(values.max(), 0.0))

    def busy_period(self, service_rate: float) -> float:
        """Length of the maximal busy period: largest ``I`` with ``F(I) >= C*I``.

        This is the paper's ``τ`` (Lemma 1).  Returns 0 for an envelope that
        never exceeds the service line.
        """
        if service_rate <= 0:
            raise EnvelopeError(
                f"service rate must be positive, got {service_rate}"
            )
        if self.final_slope >= service_rate:
            if self.final_slope > service_rate * (1 + _RTOL):
                raise EnvelopeError("unstable server: busy period is infinite")
            # Rate exactly C: busy forever if currently above the line.
            gap = self.breaks_y[-1] - service_rate * self.breaks_x[-1]
            if gap > _ATOL:
                raise EnvelopeError("unstable server: busy period is infinite")
        gaps = self.breaks_y - service_rate * self.breaks_x
        if np.all(gaps <= _ATOL):
            return 0.0
        x_last = float(self.breaks_x[-1])
        g_last = float(gaps[-1])
        if g_last > 0:
            # Crossing lies in the tail region.
            return x_last + g_last / (service_rate - self.final_slope)
        # Last positive gap is at some breakpoint; crossing is in the segment
        # that follows it.
        above = np.nonzero(gaps > _ATOL)[0]
        i = int(above[-1])
        x0, g0 = float(self.breaks_x[i]), float(gaps[i])
        x1, g1 = float(self.breaks_x[i + 1]), float(gaps[i + 1])
        return x0 + g0 * (x1 - x0) / (g0 - g1)

    # ------------------------------------------------------------------ #
    # comparison / repr
    # ------------------------------------------------------------------ #

    def almost_equal(self, other: "Envelope", tol: float = 1e-6) -> bool:
        """Approximate functional equality (sampled at merged breakpoints)."""
        xs = np.union1d(self.breaks_x, other.breaks_x)
        xs = np.concatenate([xs, [xs[-1] + 1.0, xs[-1] + 2.0]])
        return bool(np.allclose(self(xs), other(xs), rtol=1e-9, atol=tol))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        pts = ", ".join(
            f"({x:g}, {y:g})" for x, y in zip(self.breaks_x, self.breaks_y)
        )
        return f"Envelope([{pts}], final_slope={self.final_slope:g})"


def leaky_bucket_envelope(
    burst: float, rate: float, line_rate: float = None
) -> Envelope:
    """The paper's source envelope ``min(C*I, T + rho*I)`` (Section 3).

    Parameters
    ----------
    burst:
        Token-bucket depth ``T`` in bits.
    rate:
        Sustained rate ``rho`` in bits/second.
    line_rate:
        Optional access-link rate ``C``; when given, the envelope is clamped
        by ``C * I`` (no source can beat its own wire).
    """
    if burst < 0:
        raise EnvelopeError(f"burst must be >= 0, got {burst}")
    if rate < 0:
        raise EnvelopeError(f"rate must be >= 0, got {rate}")
    env = Envelope.affine(burst, rate)
    if line_rate is not None:
        if line_rate <= rate:
            raise EnvelopeError(
                f"line rate {line_rate} must exceed sustained rate {rate}"
            )
        env = env.clamp_rate(line_rate)
    return env


def constant_rate_envelope(rate: float) -> Envelope:
    """``F(I) = rate * I`` — a perfectly smooth stream (or a service line)."""
    if rate < 0:
        raise EnvelopeError(f"rate must be >= 0, got {rate}")
    return Envelope([0.0], [0.0], rate)


def tspec_envelope(
    max_packet: float,
    peak_rate: float,
    bucket_depth: float,
    sustained_rate: float,
    line_rate: float = None,
) -> Envelope:
    """IntServ TSpec: the dual leaky bucket ``min(M + p*I, b + r*I)``.

    The standard RSVP traffic specification (RFC 2212 style): a peak-rate
    bucket ``(M, p)`` intersected with the sustained bucket ``(b, r)``.
    More expressive than the paper's single bucket; the flow-aware
    analysis and the class mapping
    :func:`repro.traffic.classes.class_from_tspec` both consume it.

    Parameters
    ----------
    max_packet:
        ``M``, maximum packet/burst at peak rate (bits).
    peak_rate:
        ``p`` in bits/second; must be at least ``sustained_rate``.
    bucket_depth:
        ``b``, the sustained-bucket depth (bits); must be at least ``M``.
    sustained_rate:
        ``r`` in bits/second.
    line_rate:
        Optional physical wire clamp ``C * I``.
    """
    if max_packet < 0 or bucket_depth < 0:
        raise EnvelopeError("bucket depths must be >= 0")
    if peak_rate < sustained_rate:
        raise EnvelopeError(
            f"peak rate {peak_rate} must be >= sustained rate "
            f"{sustained_rate}"
        )
    if bucket_depth < max_packet:
        raise EnvelopeError(
            f"bucket depth {bucket_depth} must be >= max packet "
            f"{max_packet}"
        )
    env = Envelope.affine(max_packet, peak_rate).minimum(
        Envelope.affine(bucket_depth, sustained_rate)
    )
    if line_rate is not None:
        if line_rate <= sustained_rate:
            raise EnvelopeError(
                f"line rate {line_rate} must exceed sustained rate "
                f"{sustained_rate}"
            )
        env = env.clamp_rate(line_rate)
    return env
