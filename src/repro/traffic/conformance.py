"""Arrival-sequence conformance checking.

Definition 2 of the paper makes an envelope a *promise about every time
window*: a packet sequence conforms to ``F`` iff for all ``i <= j`` the
bits arriving in ``[t_i, t_j]`` satisfy ``sum <= F(t_j - t_i)``.  This
module checks that promise directly — the tool for validating traffic
sources, policers, traces, or third-party generators against a class
envelope.

The exact check is quadratic in the number of packets (every window
start); :func:`check_conformance` evaluates it with vectorized NumPy and
returns the worst violation rather than a bare boolean, so callers can
distinguish "off by float noise" from "bursting at twice the bucket".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from ..errors import TrafficError
from .envelope import Envelope

__all__ = ["ConformanceReport", "check_conformance"]

#: Default absolute slack, in bits — far below one packet.
_DEFAULT_TOL = 1e-6


@dataclass(frozen=True)
class ConformanceReport:
    """Outcome of a conformance check.

    Attributes
    ----------
    conforms:
        True iff no window exceeds the envelope beyond tolerance.
    worst_excess:
        Largest ``arrived - F(window)`` over all windows, in bits
        (negative when the sequence has slack everywhere).
    worst_window:
        ``(start_time, end_time)`` of the worst window.
    packets:
        Number of packets checked.
    """

    conforms: bool
    worst_excess: float
    worst_window: tuple
    packets: int

    def __bool__(self) -> bool:  # truthiness == verdict
        return self.conforms


def check_conformance(
    times: Sequence[float],
    sizes: Union[float, Sequence[float]],
    envelope: Envelope,
    *,
    tolerance: float = _DEFAULT_TOL,
) -> ConformanceReport:
    """Check a packet arrival sequence against an envelope.

    Parameters
    ----------
    times:
        Arrival instants, non-decreasing (seconds).  An arrival at the
        window edge counts inside the window (closed windows), matching
        the paper's ``f(t + I) - f(t) <= F(I)`` with instantaneous
        packet arrival.
    sizes:
        Per-packet sizes in bits, or one scalar for homogeneous packets.
    tolerance:
        Absolute slack in bits before a window counts as a violation.
    """
    t = np.asarray(times, dtype=np.float64)
    if t.ndim != 1:
        raise TrafficError("times must be one-dimensional")
    if t.size == 0:
        return ConformanceReport(
            conforms=True, worst_excess=float("-inf"),
            worst_window=(0.0, 0.0), packets=0,
        )
    if np.any(np.diff(t) < 0):
        raise TrafficError("times must be non-decreasing")
    if np.isscalar(sizes):
        s = np.full(t.size, float(sizes))
    else:
        s = np.asarray(sizes, dtype=np.float64)
        if s.shape != t.shape:
            raise TrafficError(
                f"sizes shape {s.shape} does not match times {t.shape}"
            )
    if np.any(s <= 0):
        raise TrafficError("packet sizes must be positive")

    cum = np.cumsum(s)
    worst = float("-inf")
    worst_window = (float(t[0]), float(t[0]))
    # For each window start i, check every end j >= i at once.
    for i in range(t.size):
        windows = t[i:] - t[i]
        arrived = cum[i:] - (cum[i - 1] if i > 0 else 0.0)
        excess = arrived - envelope(windows)
        j = int(np.argmax(excess))
        if float(excess[j]) > worst:
            worst = float(excess[j])
            worst_window = (float(t[i]), float(t[i + j]))
    return ConformanceReport(
        conforms=worst <= tolerance,
        worst_excess=worst,
        worst_window=worst_window,
        packets=int(t.size),
    )
