"""Configuration procedures: Theorem 4 bounds, verification, route
selection and utilization maximization (Section 5)."""

from .bounds import (
    UtilizationBounds,
    theorem4_lower_bound,
    theorem4_upper_bound,
    utilization_bounds,
)
from .maximize import (
    DEFAULT_RESOLUTION,
    MaximizationResult,
    binary_search_max_alpha,
    max_utilization_heuristic,
    max_utilization_shortest_path,
)
from .configured import ConfiguredNetwork, configure
from .repair import RepairResult, repair_after_link_failure
from .procedures import (
    MulticlassScaleResult,
    maximize_multiclass_scale,
    maximize_utilization,
    select_safe_routes,
    verify_safe_assignment,
)

__all__ = [
    "ConfiguredNetwork",
    "DEFAULT_RESOLUTION",
    "MaximizationResult",
    "MulticlassScaleResult",
    "RepairResult",
    "UtilizationBounds",
    "binary_search_max_alpha",
    "configure",
    "max_utilization_heuristic",
    "max_utilization_shortest_path",
    "maximize_multiclass_scale",
    "maximize_utilization",
    "repair_after_link_failure",
    "select_safe_routes",
    "theorem4_lower_bound",
    "theorem4_upper_bound",
    "utilization_bounds",
    "verify_safe_assignment",
]
