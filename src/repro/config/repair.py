"""Link-failure repair of a configured network.

When a physical link dies, only the routes that traversed it need new
paths — everything else keeps its verified configuration.  This module
implements that incremental workflow on top of the Section 5.2 machinery:

1. partition the configured routes into survivors and casualties;
2. re-run the greedy safe selection for the casualties *only*, on the
   degraded topology, with the survivors pre-committed into every safety
   check (so repairs cannot invalidate surviving guarantees);
3. re-verify the merged route set and return a fresh
   :class:`~repro.config.configured.ConfiguredNetwork`.

The repaired configuration keeps the original utilization assignment: if
no safe repair exists at that level, the result reports failure and the
operator must either lower ``alpha`` or shed demand — exactly the
trade-off the paper's configuration procedures expose.  The runtime
chaos harness (:mod:`repro.faults`) automates that fallback: on a failed
repair it drops into a degraded admission mode and re-routes on
uncertified shortest paths under a reduced effective ``alpha``.

The greedy selection reuses the incremental
:class:`~repro.analysis.routesystem.GrowableRouteSystem` kernels, so an
*online* repair costs one candidate search over the casualties only —
survivor routes are pushed once and shared across every candidate probe.
Repeated repairs (a chaos schedule with several failures) can pass a
pre-built :class:`~repro.routing.heuristic.SafeRouteSelector` via
``selector=`` to share its candidate/beta caches across invocations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Hashable, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigurationError, TopologyError
from ..obs import OBS
from ..routing.heuristic import HeuristicOptions, SafeRouteSelector
from ..routing.partition import partition_by_link
from ..topology.network import Network
from .configured import ConfiguredNetwork

__all__ = ["RepairResult", "repair_after_link_failure", "repair_routes"]

Pair = Tuple[Hashable, Hashable]


@dataclass
class RepairResult:
    """Outcome of a link-failure repair.

    Attributes
    ----------
    success:
        True iff every affected pair found a safe replacement route.
    affected_pairs:
        Pairs whose routes traversed the failed link.
    repaired:
        The new verified configuration (None on failure).
    failed_pair:
        First pair with no safe candidate, on failure.
    reason:
        Human-readable cause on failure (empty on success), e.g. the
        removal disconnecting the network, or safe selection failing at
        ``failed_pair``.
    """

    success: bool
    failed_link: Tuple[Hashable, Hashable]
    affected_pairs: List[Pair]
    repaired: Optional[ConfiguredNetwork]
    failed_pair: Optional[Pair]
    reason: str = ""

    @property
    def num_rerouted(self) -> int:
        return len(self.affected_pairs) if self.success else 0


def repair_routes(
    cfg: ConfiguredNetwork,
    degraded: Network,
    affected: Sequence[Pair],
    survivors: Mapping[Pair, Sequence[Hashable]],
    *,
    options: HeuristicOptions = HeuristicOptions(),
    selector: Optional[SafeRouteSelector] = None,
) -> Tuple[Optional[ConfiguredNetwork], Optional[Pair], str]:
    """Safe re-selection of ``affected`` pairs on a degraded topology.

    The generalized core of :func:`repair_after_link_failure`, usable
    for any failure shape (single link, several links, a dead router):
    the caller partitions routes and supplies the degraded network;
    this function runs the greedy safe selection for the casualties with
    the survivors pre-committed, merges, re-verifies and returns
    ``(repaired, failed_pair, reason)`` — ``repaired`` is None when no
    safe repair exists.

    ``selector`` lets repeated repairs share one warm
    :class:`SafeRouteSelector` (candidate and beta caches persist across
    calls); it must have been built on ``degraded`` with the same class
    and ``n_mode``.
    """
    rt = cfg.registry.realtime_classes()
    if len(rt) != 1:
        raise ConfigurationError(
            "failure repair currently supports a single real-time class"
        )
    cls = rt[0]
    alpha = float(cfg.alphas[cls.name])
    if selector is None:
        selector = SafeRouteSelector(
            degraded, cls, options=options, n_mode=cfg.n_mode
        )
    outcome = selector.select(
        list(affected), alpha, fixed_routes=list(survivors.values())
    )
    if not outcome.success:
        return (
            None,
            outcome.failed_pair,
            f"no safe replacement route for pair {outcome.failed_pair!r} "
            f"at alpha={alpha:g}",
        )
    merged = {pair: list(path) for pair, path in survivors.items()}
    merged.update(outcome.routes)
    repaired = ConfiguredNetwork(
        network=degraded,
        registry=cfg.registry,
        alphas=dict(cfg.alphas),
        routes=merged,
        n_mode=cfg.n_mode,
    )
    return repaired, None, ""


def repair_after_link_failure(
    cfg: ConfiguredNetwork,
    failed_link: Tuple[Hashable, Hashable],
    *,
    options: HeuristicOptions = HeuristicOptions(),
    selector: Optional[SafeRouteSelector] = None,
) -> RepairResult:
    """Re-route the routes broken by a link failure, keeping the rest.

    Only single-real-time-class configurations are supported (the same
    scope as the Section 5.2 selector); the repaired bundle is re-verified
    before being returned.  A removal that would disconnect the network
    is reported as a failed repair (``reason`` says so) rather than an
    exception — the runtime fallback for both is the same: shed or
    degrade.
    """
    started = time.perf_counter()
    u, v = failed_link
    try:
        degraded: Network = cfg.network.without_link(u, v)
    except TopologyError as exc:
        _record_repair("disconnected", started)
        return RepairResult(
            success=False,
            failed_link=failed_link,
            affected_pairs=list(cfg.routes),
            repaired=None,
            failed_pair=None,
            reason=str(exc),
        )

    survivors, affected = partition_by_link(cfg.routes, failed_link)

    if not affected:
        # Nothing traversed the link; the old certificate still holds on
        # the degraded network (removing capacity no route uses changes
        # nothing), but rebuild against the degraded topology for hygiene.
        repaired = ConfiguredNetwork(
            network=degraded,
            registry=cfg.registry,
            alphas=dict(cfg.alphas),
            routes=dict(survivors),
            n_mode=cfg.n_mode,
        )
        _record_repair("noop", started)
        return RepairResult(
            success=True,
            failed_link=failed_link,
            affected_pairs=[],
            repaired=repaired,
            failed_pair=None,
        )

    repaired, failed_pair, reason = repair_routes(
        cfg,
        degraded,
        affected,
        survivors,
        options=options,
        selector=selector,
    )
    if repaired is None:
        _record_repair("no_safe_repair", started)
        return RepairResult(
            success=False,
            failed_link=failed_link,
            affected_pairs=affected,
            repaired=None,
            failed_pair=failed_pair,
            reason=reason,
        )
    _record_repair("success", started)
    return RepairResult(
        success=True,
        failed_link=failed_link,
        affected_pairs=affected,
        repaired=repaired,
        failed_pair=None,
    )


def _record_repair(outcome: str, started: float) -> None:
    if not OBS.enabled:
        return
    reg = OBS.registry
    reg.counter("repro_repair_attempts_total", outcome=outcome).inc()
    reg.histogram("repro_repair_seconds").observe(
        time.perf_counter() - started
    )
