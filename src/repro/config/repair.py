"""Link-failure repair of a configured network.

When a physical link dies, only the routes that traversed it need new
paths — everything else keeps its verified configuration.  This module
implements that incremental workflow on top of the Section 5.2 machinery:

1. partition the configured routes into survivors and casualties;
2. re-run the greedy safe selection for the casualties *only*, on the
   degraded topology, with the survivors pre-committed into every safety
   check (so repairs cannot invalidate surviving guarantees);
3. re-verify the merged route set and return a fresh
   :class:`~repro.config.configured.ConfiguredNetwork`.

The repaired configuration keeps the original utilization assignment: if
no safe repair exists at that level, the result reports failure and the
operator must either lower ``alpha`` or shed demand — exactly the
trade-off the paper's configuration procedures expose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from ..errors import ConfigurationError
from ..routing.heuristic import HeuristicOptions, SafeRouteSelector
from ..topology.network import Network
from .configured import ConfiguredNetwork

__all__ = ["RepairResult", "repair_after_link_failure"]

Pair = Tuple[Hashable, Hashable]


@dataclass
class RepairResult:
    """Outcome of a link-failure repair.

    Attributes
    ----------
    success:
        True iff every affected pair found a safe replacement route.
    affected_pairs:
        Pairs whose routes traversed the failed link.
    repaired:
        The new verified configuration (None on failure).
    failed_pair:
        First pair with no safe candidate, on failure.
    """

    success: bool
    failed_link: Tuple[Hashable, Hashable]
    affected_pairs: List[Pair]
    repaired: Optional[ConfiguredNetwork]
    failed_pair: Optional[Pair]

    @property
    def num_rerouted(self) -> int:
        return len(self.affected_pairs) if self.success else 0


def repair_after_link_failure(
    cfg: ConfiguredNetwork,
    failed_link: Tuple[Hashable, Hashable],
    *,
    options: HeuristicOptions = HeuristicOptions(),
) -> RepairResult:
    """Re-route the routes broken by a link failure, keeping the rest.

    Only single-real-time-class configurations are supported (the same
    scope as the Section 5.2 selector); the repaired bundle is re-verified
    before being returned.
    """
    rt = cfg.registry.realtime_classes()
    if len(rt) != 1:
        raise ConfigurationError(
            "link-failure repair currently supports a single real-time "
            "class"
        )
    u, v = failed_link
    degraded: Network = cfg.network.without_link(u, v)

    broken = {u, v}
    affected: List[Pair] = []
    survivors: Dict[Pair, List[Hashable]] = {}
    for pair, path in cfg.routes.items():
        uses_link = any(
            {a, b} == broken for a, b in zip(path, path[1:])
        )
        if uses_link:
            affected.append(pair)
        else:
            survivors[pair] = list(path)

    if not affected:
        # Nothing traversed the link; the old certificate still holds on
        # the degraded network (removing capacity no route uses changes
        # nothing), but rebuild against the degraded topology for hygiene.
        repaired = ConfiguredNetwork(
            network=degraded,
            registry=cfg.registry,
            alphas=dict(cfg.alphas),
            routes=dict(survivors),
            n_mode=cfg.n_mode,
        )
        return RepairResult(
            success=True,
            failed_link=failed_link,
            affected_pairs=[],
            repaired=repaired,
            failed_pair=None,
        )

    cls = rt[0]
    alpha = float(cfg.alphas[cls.name])
    selector = SafeRouteSelector(
        degraded, cls, options=options, n_mode=cfg.n_mode
    )
    outcome = selector.select(
        affected, alpha, fixed_routes=list(survivors.values())
    )
    if not outcome.success:
        return RepairResult(
            success=False,
            failed_link=failed_link,
            affected_pairs=affected,
            repaired=None,
            failed_pair=outcome.failed_pair,
        )

    merged = dict(survivors)
    merged.update(outcome.routes)
    repaired = ConfiguredNetwork(
        network=degraded,
        registry=cfg.registry,
        alphas=dict(cfg.alphas),
        routes=merged,
        n_mode=cfg.n_mode,
    )
    return RepairResult(
        success=True,
        failed_link=failed_link,
        affected_pairs=affected,
        repaired=repaired,
        failed_pair=None,
    )
