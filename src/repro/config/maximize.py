"""Maximizing utilization by safe route selection (Section 5.3).

Binary search over the utilization assignment: the interval is initialized
with the Theorem 4 bounds, the midpoint is tested by running a route
selection strategy (the Section 5.2 heuristic, or fixed shortest-path
routes for the baseline), and the interval halves until it is narrower
than a resolution threshold.  The best *feasible* utilization found and
its witnessing route set are returned.

Feasibility of a greedy heuristic is not theoretically monotone in
``alpha``, but the paper (and practice) treat it as such; the search keeps
the highest succeeding midpoint, which makes the result a certified safe
assignment regardless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..analysis.delays import single_class_delays
from ..analysis.scratch import FixedPointWorkspace
from ..obs import OBS
from ..errors import ConfigurationError, InfeasibleUtilization
from ..topology.network import Network
from ..topology.properties import analyze
from ..topology.servergraph import LinkServerGraph
from ..traffic.classes import TrafficClass
from ..routing.heuristic import HeuristicOptions, SafeRouteSelector
from ..routing.shortest import shortest_path_routes
from .bounds import UtilizationBounds, utilization_bounds

__all__ = [
    "MaximizationResult",
    "binary_search_max_alpha",
    "max_utilization_heuristic",
    "max_utilization_shortest_path",
]

Pair = Tuple[Hashable, Hashable]
RouteMap = Dict[Pair, List[Hashable]]

#: Default resolution of the binary search on utilization.
DEFAULT_RESOLUTION = 0.005


@dataclass
class MaximizationResult:
    """Outcome of a maximize-utilization run.

    Attributes
    ----------
    alpha:
        Highest certified-safe utilization found.
    routes:
        The witnessing route set for ``alpha``.
    bounds:
        The Theorem 4 interval that seeded the search.
    evaluations:
        ``[(alpha, feasible)]`` trace of the binary search.
    """

    alpha: float
    routes: RouteMap
    bounds: UtilizationBounds
    evaluations: List[Tuple[float, bool]]
    method: str

    @property
    def num_probes(self) -> int:
        return len(self.evaluations)


def binary_search_max_alpha(
    feasible: Callable[..., Any],
    low: float,
    high: float,
    *,
    resolution: float = DEFAULT_RESOLUTION,
    stateful: bool = False,
) -> Tuple[float, RouteMap, List[Tuple[float, bool]]]:
    """Generic bisection on a feasibility oracle.

    ``feasible(alpha)`` returns a route map when a safe selection exists at
    ``alpha`` and ``None`` otherwise.  ``low`` is probed first (it must
    generally succeed — Theorem 4 guarantees it for the standard setup);
    if even ``low`` fails, :class:`InfeasibleUtilization` is raised.

    With ``stateful=True`` the oracle is called as
    ``feasible(alpha, state)`` and must return ``None`` or a
    ``(routes, state)`` pair; the state of the **highest feasible probe**
    is threaded into every later call.  Because bisection only probes
    above the best feasible alpha, a converged delay vector returned as
    state is a sound warm start for all subsequent probes (the Theorem 3
    map is monotone in ``alpha``, so the least fixed point only grows).
    """
    if resolution <= 0:
        raise ConfigurationError("resolution must be positive")
    if not (0.0 < low <= high <= 1.0):
        raise ConfigurationError(
            f"need 0 < low <= high <= 1, got [{low}, {high}]"
        )
    evaluations: List[Tuple[float, bool]] = []

    def probe(alpha: float, state: Any) -> Optional[Tuple[RouteMap, Any]]:
        if stateful:
            return feasible(alpha, state)
        routes = feasible(alpha)
        return None if routes is None else (routes, None)

    state: Any = None
    outcome = probe(low, state)
    evaluations.append((low, outcome is not None))
    if outcome is None:
        raise InfeasibleUtilization(low, high)
    best_alpha = low
    best_routes, state = outcome

    lo, hi = low, high
    while hi - lo > resolution:
        mid = 0.5 * (lo + hi)
        outcome = probe(mid, state)
        evaluations.append((mid, outcome is not None))
        if outcome is not None:
            best_alpha = mid
            best_routes, state = outcome
            lo = mid
        else:
            hi = mid
    return best_alpha, best_routes, evaluations


def _theorem4_interval(
    network: Network, traffic_class: TrafficClass
) -> UtilizationBounds:
    report = analyze(network)
    return utilization_bounds(
        fan_in=report.max_degree,
        diameter=report.diameter,
        burst=traffic_class.burst,
        rate=traffic_class.rate,
        deadline=traffic_class.deadline,
    )


def max_utilization_heuristic(
    network: Network,
    pairs: Sequence[Pair],
    traffic_class: TrafficClass,
    *,
    options: HeuristicOptions = HeuristicOptions(),
    n_mode: str = "uniform",
    resolution: float = DEFAULT_RESOLUTION,
    sp_fallback: bool = True,
    warm_probes: bool = True,
) -> MaximizationResult:
    """Maximum safe utilization achievable by the Section 5.2 heuristic.

    The greedy no-backtrack heuristic is not complete: near the Theorem 4
    lower bound — which is *constructively proven via shortest-path
    routing* — its early min-delay detours can strand a later pair even
    though the SP selection is safe.  With ``sp_fallback`` (default), a
    probe the heuristic fails is retried with verified shortest-path
    routes, so the search never reports less than the guaranteed bound;
    disable it to study the bare heuristic.

    One selector (and its candidate, ordering, and scratch-buffer caches)
    serves every probe of the binary search; with ``warm_probes`` the SP
    fallback checks also warm-start from the converged delay vector of
    the best feasible probe so far (sound — see
    :func:`binary_search_max_alpha`).
    """
    bounds = _theorem4_interval(network, traffic_class)
    selector = SafeRouteSelector(
        network, traffic_class, options=options, n_mode=n_mode
    )
    graph = selector.graph
    sp_routes = shortest_path_routes(network, pairs) if sp_fallback else None
    sp_paths = list(sp_routes.values()) if sp_routes is not None else None
    workspace = FixedPointWorkspace()

    def feasible(alpha: float, sp_warm) -> Optional[Tuple[RouteMap, Any]]:
        outcome = selector.select(pairs, alpha)
        if outcome.success:
            # The heuristic's own probes warm-start internally per pair;
            # keep the SP-fallback warm state from the last SP success.
            return outcome.routes, sp_warm
        if sp_paths is not None:
            check = single_class_delays(
                graph, sp_paths, traffic_class, alpha,
                n_mode=n_mode,
                warm_start=sp_warm if warm_probes else None,
                workspace=workspace,
            )
            if OBS.enabled and warm_probes and sp_warm is not None:
                OBS.registry.counter(
                    "repro_search_warm_probes_total", method="sp_fallback"
                ).inc()
            if check.safe:
                return dict(sp_routes), check.server_delays
        return None

    alpha, routes, evals = binary_search_max_alpha(
        feasible,
        bounds.lower,
        bounds.upper,
        resolution=resolution,
        stateful=True,
    )
    return MaximizationResult(
        alpha=alpha,
        routes=routes,
        bounds=bounds,
        evaluations=evals,
        method="heuristic",
    )


def max_utilization_shortest_path(
    network: Network,
    pairs: Sequence[Pair],
    traffic_class: TrafficClass,
    *,
    n_mode: str = "uniform",
    resolution: float = DEFAULT_RESOLUTION,
    warm_probes: bool = True,
) -> MaximizationResult:
    """Maximum safe utilization with fixed shortest-path routes (baseline).

    With ``warm_probes`` (default) each probe warm-starts the fixed-point
    iteration from the converged delay vector of the best feasible probe
    so far, and all probes share one scratch workspace; see
    :func:`binary_search_max_alpha` for why this is sound.
    """
    bounds = _theorem4_interval(network, traffic_class)
    graph = LinkServerGraph(network)
    routes = shortest_path_routes(network, pairs)
    paths = list(routes.values())
    workspace = FixedPointWorkspace()

    def feasible(alpha: float, warm) -> Optional[Tuple[RouteMap, Any]]:
        result = single_class_delays(
            graph, paths, traffic_class, alpha,
            n_mode=n_mode,
            warm_start=warm if warm_probes else None,
            workspace=workspace,
        )
        if OBS.enabled and warm_probes and warm is not None:
            OBS.registry.counter(
                "repro_search_warm_probes_total", method="shortest_path"
            ).inc()
        if not result.safe:
            return None
        return dict(routes), result.server_delays

    alpha, best_routes, evals = binary_search_max_alpha(
        feasible,
        bounds.lower,
        bounds.upper,
        resolution=resolution,
        stateful=True,
    )
    return MaximizationResult(
        alpha=alpha,
        routes=best_routes,
        bounds=bounds,
        evaluations=evals,
        method="shortest-path",
    )
