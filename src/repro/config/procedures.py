"""The three configuration procedures (Section 5).

The paper distinguishes three configuration tasks, depending on what is
given:

1. **Verification** — routes and utilization given: check deadlines
   (:func:`verify_safe_assignment`, a re-export of the Figure 2 procedure).
2. **Safe route selection** — utilization given, routes wanted
   (:func:`select_safe_routes`).
3. **Utilization maximization** — neither given: select routes to maximize
   the assignable utilization (:func:`maximize_utilization`).

A multi-class proportional variant (:func:`maximize_multiclass_scale`)
implements the extension the paper sketches at the end of Section 5.4:
scale a vector of per-class utilizations by the largest common factor that
keeps every class schedulable on fixed routes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from ..analysis.verification import VerificationResult, verify_assignment
from ..errors import ConfigurationError, InfeasibleUtilization
from ..topology.network import Network
from ..traffic.classes import ClassRegistry, TrafficClass
from ..routing.heuristic import HeuristicOptions, SafeRouteSelector, SelectionOutcome
from .maximize import (
    DEFAULT_RESOLUTION,
    MaximizationResult,
    max_utilization_heuristic,
    max_utilization_shortest_path,
)

__all__ = [
    "verify_safe_assignment",
    "select_safe_routes",
    "maximize_utilization",
    "MulticlassScaleResult",
    "maximize_multiclass_scale",
]

Pair = Tuple[Hashable, Hashable]

# Configuration type 1 is exactly the Figure 2 procedure.
verify_safe_assignment = verify_assignment


def select_safe_routes(
    network: Network,
    pairs: Sequence[Pair],
    traffic_class: TrafficClass,
    alpha: float,
    *,
    options: HeuristicOptions = HeuristicOptions(),
    n_mode: str = "uniform",
) -> SelectionOutcome:
    """Configuration type 2: find safe routes for a given utilization.

    Runs the Section 5.2 heuristic for a single real-time class.  Returns
    the :class:`SelectionOutcome`; check ``.success`` for the paper's
    SUCCESS/FAILURE verdict.
    """
    if not (0.0 < alpha <= 1.0):
        raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
    selector = SafeRouteSelector(
        network, traffic_class, options=options, n_mode=n_mode
    )
    return selector.select(pairs, alpha)


def maximize_utilization(
    network: Network,
    pairs: Sequence[Pair],
    traffic_class: TrafficClass,
    *,
    method: str = "heuristic",
    options: HeuristicOptions = HeuristicOptions(),
    n_mode: str = "uniform",
    resolution: float = DEFAULT_RESOLUTION,
) -> MaximizationResult:
    """Configuration type 3: maximize the assignable utilization.

    ``method`` selects the route strategy: ``"heuristic"`` (Section 5.2) or
    ``"shortest-path"`` (the Table 1 baseline).
    """
    if method == "heuristic":
        return max_utilization_heuristic(
            network,
            pairs,
            traffic_class,
            options=options,
            n_mode=n_mode,
            resolution=resolution,
        )
    if method in ("shortest-path", "sp"):
        return max_utilization_shortest_path(
            network, pairs, traffic_class, n_mode=n_mode, resolution=resolution
        )
    raise ConfigurationError(
        f"unknown method {method!r}; expected 'heuristic' or 'shortest-path'"
    )


@dataclass
class MulticlassScaleResult:
    """Outcome of the proportional multi-class maximization.

    ``alphas`` is the certified-safe per-class assignment
    ``scale * weights`` and ``verification`` its Figure 2 certificate.
    """

    scale: float
    alphas: Dict[str, float]
    verification: VerificationResult
    evaluations: List[Tuple[float, bool]]


def maximize_multiclass_scale(
    network: Network,
    routes: Mapping[str, Sequence[Sequence[Hashable]]],
    registry: ClassRegistry,
    weights: Mapping[str, float],
    *,
    n_mode: str = "uniform",
    resolution: float = 1e-3,
    scale_high: Optional[float] = None,
) -> MulticlassScaleResult:
    """Largest ``t`` such that ``alpha_i = t * w_i`` verifies on fixed routes.

    Section 5.4's trade-off between class utilizations, restricted to a
    proportional family: ``weights`` fixes the relative shares and bisection
    finds the largest feasible common scale.  ``scale_high`` defaults to the
    largest ``t`` keeping every ``t * w_i <= 1`` and their sum ``<= 1``.
    """
    rt = registry.realtime_classes()
    if not rt:
        raise ConfigurationError("registry has no real-time class")
    for cls in rt:
        if cls.name not in weights or float(weights[cls.name]) <= 0:
            raise ConfigurationError(
                f"positive weight required for class {cls.name!r}"
            )
    w = {c.name: float(weights[c.name]) for c in rt}
    w_sum = sum(w.values())
    w_max = max(w.values())
    cap = min(1.0 / w_sum, 1.0 / w_max)
    high = cap if scale_high is None else min(float(scale_high), cap)

    def check(t: float) -> Optional[VerificationResult]:
        alphas = {name: t * wi for name, wi in w.items()}
        result = verify_assignment(
            network, routes, registry, alphas, n_mode=n_mode
        )
        return result if result.success else None

    evaluations: List[Tuple[float, bool]] = []
    lo, hi = 0.0, high
    best_t = 0.0
    best: Optional[VerificationResult] = None

    # Probe the top first: everything may already fit.
    top = check(hi)
    evaluations.append((hi, top is not None))
    if top is not None:
        best_t, best = hi, top
        lo = hi
    while hi - lo > resolution:
        mid = 0.5 * (lo + hi)
        result = check(mid)
        evaluations.append((mid, result is not None))
        if result is not None:
            best_t, best = mid, result
            lo = mid
        else:
            hi = mid
    if best is None:
        raise InfeasibleUtilization(0.0, high)
    return MulticlassScaleResult(
        scale=best_t,
        alphas={name: best_t * wi for name, wi in w.items()},
        verification=best,
        evaluations=evaluations,
    )
