"""Theorem 4: closed-form bounds on the maximum safe utilization.

For a two-class network with ``N`` input links per router, diameter ``L``
and real-time traffic ``(T, rho)`` with deadline ``D``, the maximum
utilization ``alpha*`` any route selection can support satisfies::

    LB = N / ((L*T/(D*rho) + (L-1)) * (N-1) + 1)
    UB = N*(x - 1) / (N + x - 2),   with  x = (D*rho/T + 1)**(1/L)

The camera-ready rendering of eq. (15) is typographically damaged; these
forms are re-derived from the paper's own sketch (Section 5.3.2):

* **LB** — substitute the topology-independent jitter bound
  ``Y_k <= (L-1)*d`` into Theorem 3, solve ``d = beta*(T + rho*(L-1)*d)``
  and impose ``L*d <= D``.  Any route selection with paths of length at
  most ``L`` (e.g. shortest-path) is safe at or below LB.
* **UB** — assume the feedback-free best case along one diameter route,
  where delays accumulate geometrically:
  ``d_k = beta*T*(1 + beta*rho)**(k-1)``; summing the geometric series
  over ``L`` hops and imposing the deadline yields
  ``beta*rho <= x - 1``, i.e. the UB above.  No route selection can be
  safe above UB.

Both reproduce the paper's numeric anchors for the VoIP scenario
(LB = 0.30, UB = 0.61 — Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = [
    "theorem4_lower_bound",
    "theorem4_upper_bound",
    "UtilizationBounds",
    "utilization_bounds",
]


def _validate(fan_in: int, diameter: int, burst: float, rate: float,
              deadline: float) -> None:
    if fan_in < 2:
        raise ConfigurationError(
            f"Theorem 4 requires N >= 2 input links, got {fan_in}"
        )
    if diameter < 1:
        raise ConfigurationError(f"diameter must be >= 1, got {diameter}")
    if burst <= 0:
        raise ConfigurationError(f"burst must be positive, got {burst}")
    if rate <= 0:
        raise ConfigurationError(f"rate must be positive, got {rate}")
    if deadline <= 0:
        raise ConfigurationError(f"deadline must be positive, got {deadline}")


def theorem4_lower_bound(
    fan_in: int, diameter: int, burst: float, rate: float, deadline: float
) -> float:
    """Guaranteed-achievable utilization (Theorem 4, left inequality).

    Safe for *any* topology of diameter <= ``diameter`` and any route
    selection whose paths stay within the diameter.
    """
    _validate(fan_in, diameter, burst, rate, deadline)
    n, l = float(fan_in), float(diameter)
    ratio = l * burst / (deadline * rate)
    lb = n / ((ratio + (l - 1.0)) * (n - 1.0) + 1.0)
    return min(lb, 1.0)


def theorem4_upper_bound(
    fan_in: int, diameter: int, burst: float, rate: float, deadline: float
) -> float:
    """Utilization no route selection can exceed (Theorem 4, right side)."""
    _validate(fan_in, diameter, burst, rate, deadline)
    n, l = float(fan_in), float(diameter)
    x = (deadline * rate / burst + 1.0) ** (1.0 / l)
    ub = n * (x - 1.0) / (n + x - 2.0)
    return min(ub, 1.0)


@dataclass(frozen=True)
class UtilizationBounds:
    """The Theorem 4 interval, with the parameters that produced it."""

    lower: float
    upper: float
    fan_in: int
    diameter: int
    burst: float
    rate: float
    deadline: float

    @property
    def width(self) -> float:
        return self.upper - self.lower


def utilization_bounds(
    fan_in: int, diameter: int, burst: float, rate: float, deadline: float
) -> UtilizationBounds:
    """Both Theorem 4 bounds; raises if they are inconsistent (LB > UB)."""
    lb = theorem4_lower_bound(fan_in, diameter, burst, rate, deadline)
    ub = theorem4_upper_bound(fan_in, diameter, burst, rate, deadline)
    if lb > ub + 1e-12:
        raise ConfigurationError(
            f"inconsistent Theorem 4 bounds: LB {lb:.4f} > UB {ub:.4f}"
        )
    return UtilizationBounds(
        lower=lb,
        upper=ub,
        fan_in=fan_in,
        diameter=diameter,
        burst=burst,
        rate=rate,
        deadline=deadline,
    )
