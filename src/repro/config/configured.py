"""A configured network: the deployable artifact of configuration time.

The paper's workflow produces three coupled artifacts — a topology, a
per-class utilization assignment, and a route set — that are only
meaningful *together* (the run-time controller is safe exactly because
this triple passed verification).  :class:`ConfiguredNetwork` bundles
them, re-verifies on construction, serializes to/from JSON so a
configuration can be shipped to routers or archived, and manufactures the
run-time controller and validation simulator.

Typical use::

    cfg = configure(network, registry, alphas={"voice": 0.4})   # routes found
    cfg.save("voice.json")
    ...
    cfg = ConfiguredNetwork.load("voice.json")
    controller = cfg.controller()
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple, Union

from ..analysis.verification import VerificationResult, verify_assignment
from ..errors import ConfigurationError
from ..admission.utilization import UtilizationAdmissionController
from ..routing.heuristic import HeuristicOptions, SafeRouteSelector
from ..routing.shortest import shortest_path_routes
from ..simulation.simulator import PacketPattern, Simulator
from ..topology.network import Network
from ..topology.serialization import network_from_dict, network_to_dict
from ..topology.servergraph import LinkServerGraph
from ..traffic.classes import ClassRegistry, TrafficClass
from ..traffic.generators import all_ordered_pairs

__all__ = ["ConfiguredNetwork", "configure"]

Pair = Tuple[Hashable, Hashable]
RouteMap = Dict[Pair, List[Hashable]]

_SCHEMA_VERSION = 1


@dataclass
class ConfiguredNetwork:
    """A verified (topology, classes, utilization, routes) bundle."""

    network: Network
    registry: ClassRegistry
    alphas: Dict[str, float]
    routes: RouteMap
    n_mode: str = "uniform"
    verification: VerificationResult = field(default=None, repr=False)
    _graph: LinkServerGraph = field(default=None, repr=False)

    def __post_init__(self):
        if self._graph is None:
            self._graph = LinkServerGraph(self.network)
        if self.verification is None:
            self.verification = self.verify()
        if not self.verification.success:
            raise ConfigurationError(
                "configuration failed verification: "
                + self.verification.reason
            )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def graph(self) -> LinkServerGraph:
        return self._graph

    def verify(self) -> VerificationResult:
        """Re-run the Figure 2 procedure on the bundle."""
        return verify_assignment(
            self._graph,
            list(self.routes.values()),
            self.registry,
            self.alphas,
            n_mode=self.n_mode,
        )

    def route_for(self, source: Hashable, destination: Hashable) -> List[Hashable]:
        try:
            return list(self.routes[(source, destination)])
        except KeyError:
            raise ConfigurationError(
                f"no configured route for {source!r} -> {destination!r}"
            ) from None

    def slots_per_link(self, class_name: str) -> int:
        """Certified concurrent flows of a class on a uniform-capacity link."""
        cls = self.registry.get(class_name)
        capacity = self._graph.uniform_capacity()
        return int(self.alphas[class_name] * capacity / cls.rate)

    # ------------------------------------------------------------------ #
    # factories
    # ------------------------------------------------------------------ #

    def controller(self) -> UtilizationAdmissionController:
        """A run-time admission controller for this configuration."""
        return UtilizationAdmissionController(
            self._graph, self.registry, self.alphas, self.routes
        )

    def simulator(self) -> Simulator:
        """An empty packet simulator over this topology and classes."""
        return Simulator(self._graph, self.registry)

    def validate_by_simulation(
        self,
        *,
        flows_per_route: int = 2,
        packet_size: Optional[float] = None,
        horizon: float = 0.5,
        pattern: str = "greedy",
    ) -> Dict[str, int]:
        """Adversarial packet-level check of the configured guarantees.

        Attaches up to ``flows_per_route`` sources of every real-time
        class on each configured route (capped to stay admissible), runs
        the simulator, and returns the per-class deadline-miss counts —
        all zeros when the certificate holds, which the analysis
        guarantees for admissible populations.

        ``packet_size`` defaults to each class's burst (one maximal
        packet), the worst quantization the class permits.
        """
        from ..traffic.flows import FlowSpec

        sim = self.simulator()
        fid = 0
        for cls in self.registry.realtime_classes():
            size = packet_size if packet_size is not None else cls.burst
            # Keep the population admissible for this class.
            slots = self.slots_per_link(cls.name)
            per_route = min(
                flows_per_route,
                max(1, slots // max(len(self.routes), 1)),
            )
            for (src, dst), path in self.routes.items():
                for rep in range(per_route):
                    sim.add_flow(
                        FlowSpec(
                            f"val{fid}", cls.name, src, dst
                        ),
                        path,
                        PacketPattern(
                            pattern, packet_size=size, seed=fid
                        ),
                    )
                    fid += 1
        report = sim.run(horizon=horizon)
        return {
            cls.name: report.deadline_misses(cls.name, cls.deadline)
            for cls in self.registry.realtime_classes()
        }

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        classes = [
            {
                "name": c.name,
                "burst": c.burst,
                "rate": c.rate,
                "deadline": None if math.isinf(c.deadline) else c.deadline,
                "priority": c.priority,
            }
            for c in self.registry.ordered()
        ]
        routes = [
            {"source": src, "destination": dst, "path": list(path)}
            for (src, dst), path in self.routes.items()
        ]
        return {
            "schema_version": _SCHEMA_VERSION,
            "network": network_to_dict(self.network),
            "classes": classes,
            "alphas": dict(self.alphas),
            "routes": routes,
            "n_mode": self.n_mode,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ConfiguredNetwork":
        version = data.get("schema_version")
        if version != _SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported configuration schema version {version!r}"
            )
        network = network_from_dict(data["network"])
        registry = ClassRegistry(
            [
                TrafficClass(
                    name=c["name"],
                    burst=float(c["burst"]),
                    rate=float(c["rate"]),
                    deadline=(
                        math.inf if c["deadline"] is None
                        else float(c["deadline"])
                    ),
                    priority=int(c["priority"]),
                )
                for c in data["classes"]
            ]
        )
        routes = {
            (r["source"], r["destination"]): list(r["path"])
            for r in data["routes"]
        }
        return cls(
            network=network,
            registry=registry,
            alphas={k: float(v) for k, v in data["alphas"].items()},
            routes=routes,
            n_mode=str(data.get("n_mode", "uniform")),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)

    @classmethod
    def load(cls, path: str) -> "ConfiguredNetwork":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


def configure(
    network: Network,
    registry: ClassRegistry,
    alphas: Mapping[str, float],
    *,
    pairs: Optional[Sequence[Pair]] = None,
    routing: str = "heuristic",
    options: HeuristicOptions = HeuristicOptions(),
    n_mode: str = "uniform",
) -> ConfiguredNetwork:
    """One-call configuration: select routes and verify the bundle.

    Parameters
    ----------
    routing:
        ``"heuristic"`` runs the Section 5.2 safe route selection (single
        real-time class only); ``"shortest-path"`` pins hop-shortest
        routes for any number of classes.
    pairs:
        Demand; defaults to every ordered pair of edge routers.

    Raises
    ------
    ConfigurationError
        If route selection fails or the final bundle does not verify.
    """
    if pairs is None:
        pairs = all_ordered_pairs(network)
    rt = registry.realtime_classes()
    if not rt:
        raise ConfigurationError("registry has no real-time class")
    for cls in rt:
        if cls.name not in alphas:
            raise ConfigurationError(f"missing alpha for class {cls.name!r}")

    if routing in ("shortest-path", "sp"):
        routes = shortest_path_routes(network, pairs)
    elif routing == "heuristic":
        if len(rt) != 1:
            raise ConfigurationError(
                "heuristic routing currently configures a single "
                "real-time class; use routing='shortest-path' or the "
                "MultiClassRouteSelector directly"
            )
        selector = SafeRouteSelector(
            network, rt[0], options=options, n_mode=n_mode
        )
        outcome = selector.select(list(pairs), float(alphas[rt[0].name]))
        if not outcome.success:
            raise ConfigurationError(
                f"safe route selection failed at pair "
                f"{outcome.failed_pair!r} "
                f"({outcome.num_routed}/{len(pairs)} routed); "
                "lower alpha or relax the demand"
            )
        routes = outcome.routes
    else:
        raise ConfigurationError(
            f"unknown routing {routing!r}; "
            "expected 'heuristic' or 'shortest-path'"
        )
    return ConfiguredNetwork(
        network=network,
        registry=registry,
        alphas={c.name: float(alphas[c.name]) for c in rt},
        routes=dict(routes),
        n_mode=n_mode,
    )
