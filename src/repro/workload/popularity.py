"""Skewed popularity models for source/destination pairs.

Real traffic concentrates on few hot pairs; a Zipf law over the pair
rank is the standard model (and what makes admission contention
realistic: the hot pairs' paths saturate first while the tail stays
admissible).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import TrafficError

__all__ = ["ZipfPairPopularity"]


@dataclass(frozen=True)
class ZipfPairPopularity:
    """Zipf(``skew``) distribution over ``num_pairs`` pair ranks.

    Parameters
    ----------
    num_pairs:
        Size of the pair universe being ranked.
    skew:
        Zipf exponent; 0 is uniform, 1 the classic web/flow skew.
    shuffle_seed:
        When given, a seeded permutation decouples popularity rank from
        pair-list position (otherwise pair 0 is always the hottest).
    """

    num_pairs: int
    skew: float = 1.0
    shuffle_seed: Optional[int] = None

    def __post_init__(self):
        if self.num_pairs < 1:
            raise TrafficError(
                f"num_pairs must be positive, got {self.num_pairs}"
            )
        if self.skew < 0:
            raise TrafficError(f"skew must be >= 0, got {self.skew}")

    def probabilities(self) -> np.ndarray:
        """Probability of each pair index (sums to 1)."""
        ranks = np.arange(1, self.num_pairs + 1, dtype=np.float64)
        weights = ranks ** -float(self.skew)
        probs = weights / weights.sum()
        if self.shuffle_seed is not None:
            perm = np.random.default_rng(
                self.shuffle_seed
            ).permutation(self.num_pairs)
            probs = probs[perm]
        return probs

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` pair indices from the distribution."""
        return rng.choice(
            self.num_pairs, size=n, p=self.probabilities()
        ).astype(np.int64)
