"""Adversarial ``(w, b)``-bounded workload generation.

The Hypothesis suites sample arrival processes randomly; adversaries do
not.  Following the bounded-injection model of Andrews et al. ("Source
Routing and Scheduling in Packet Networks"), an adversary here may emit
at most ``rate * tau + burst`` arrivals in *any* half-open window of
length ``tau`` — and the generator in this module is the **extremal**
such adversary: a greedy token bucket that is flush against the bound
at every instant.

Three tactics are layered on top of the envelope:

* **Burst packing** — every burst of arrivals shares one timestamp, so
  batch-mode replay (:func:`~repro.workload.loadgen.drive`) lands the
  whole burst in a single epoch and the batch kernel sees the maximum
  number of intra-batch slot collisions the envelope permits.
* **Hot-edge targeting** — arrivals are drawn only from source/
  destination pairs whose routes cross the most-contended link servers
  (:func:`hot_servers`), concentrating demand instead of spreading it.
* **Thundering-herd releases** — a configurable fraction of admitted
  flows departs *exactly* at the next burst instant.  The replay tie
  break (departures before arrivals at equal times) frees those slots
  at the very moment the next burst fights over them, maximizing
  admit/release interleaving stress.

Traces are ordinary :class:`~repro.workload.trace.TraceEvent` streams,
so the same adversarial workload drives the sequential loop, the batch
kernel, the sharded controller, the service coalescer and the cluster
router unchanged.

Construction-time guard: :func:`adversarial_events` validates its own
output via :func:`validate_adversarial_events` before returning — a
generator bug can never emit a trace that releases a flow that never
arrived, releases one twice, or violates the ``(w, b)`` envelope (the
same validate-at-construction contract as
:func:`repro.faults.random_fault_schedule`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import TrafficError
from ..topology.servergraph import LinkServerGraph
from .trace import TraceEvent

__all__ = [
    "AdversaryModel",
    "adversarial_events",
    "hot_servers",
    "validate_adversarial_events",
]

Pair = Tuple[Hashable, Hashable]

#: Slack for floating-point drift when checking the (w, b) envelope —
#: the greedy generator sits exactly on the bound.
_ENVELOPE_TOLERANCE = 1e-6


@dataclass(frozen=True)
class AdversaryModel:
    """A ``(w, b)``-bounded injection envelope.

    In any half-open window of length ``tau`` the adversary may emit at
    most ``rate * tau + burst`` arrivals (token bucket: sustained rate
    ``rate``/s, bucket depth ``burst``).  ``window`` is the reference
    window length used when reporting the bound, not an extra degree of
    freedom — the envelope constrains *every* window length.
    """

    rate: float = 64.0
    burst: int = 16
    window: float = 1.0

    def __post_init__(self) -> None:
        if not (self.rate > 0.0):
            raise TrafficError(
                f"adversary rate must be > 0, got {self.rate}"
            )
        if self.burst < 1:
            raise TrafficError(
                f"adversary burst must be >= 1, got {self.burst}"
            )
        if not (self.window > 0.0):
            raise TrafficError(
                f"adversary window must be > 0, got {self.window}"
            )

    def arrivals_allowed(self, tau: float) -> float:
        """Upper bound on arrivals in any window of length ``tau``."""
        return self.rate * tau + self.burst


def hot_servers(
    graph: LinkServerGraph,
    routes: Dict[Pair, Sequence[Hashable]],
    top: int = 1,
) -> List[int]:
    """The ``top`` most route-crossed link servers (hottest first).

    Ranking is by configured route crossings — the static analogue of
    :func:`repro.faults.most_loaded_link` — with index order breaking
    ties, so the result is deterministic for a given route table.
    """
    if top < 1:
        raise TrafficError(f"top must be >= 1, got {top}")
    if not routes:
        raise TrafficError("hot_servers needs a non-empty route table")
    crossings = np.zeros(graph.num_servers, dtype=np.int64)
    for path in routes.values():
        np.add.at(crossings, graph.route_servers(path), 1)
    order = np.lexsort((np.arange(graph.num_servers), -crossings))
    return [int(s) for s in order[:top]]


def adversarial_events(
    graph: LinkServerGraph,
    routes: Dict[Pair, Sequence[Hashable]],
    class_name: str,
    *,
    num_flows: int,
    model: Optional[AdversaryModel] = None,
    seed: int = 0,
    hot_edges: int = 1,
    churn_fraction: float = 0.5,
    id_prefix: str = "adv",
) -> List[TraceEvent]:
    """Generate an extremal adversarial event stream.

    Returns a merged, time-sorted arrival/departure stream (ties broken
    departures-first, exactly as :func:`~repro.workload.loadgen.\
schedule_events` orders them) with flow ids ``{id_prefix}{seed}_{i}``.

    ``churn_fraction`` of the flows depart at the next burst instant
    after their arrival (thundering-herd contention); the rest pin
    their slots until a LIFO drain after the attack ends.  The stream
    is validated against ``model`` before being returned.
    """
    model = model or AdversaryModel()
    if num_flows < 1:
        raise TrafficError(f"num_flows must be >= 1, got {num_flows}")
    if not 0.0 <= churn_fraction <= 1.0:
        raise TrafficError(
            f"churn_fraction must be in [0, 1], got {churn_fraction}"
        )
    targets = set(hot_servers(graph, routes, top=hot_edges))
    attack_pairs = [
        pair
        for pair in sorted(routes, key=repr)
        if targets.intersection(
            graph.route_servers(routes[pair]).tolist()
        )
    ]
    if not attack_pairs:  # defensive: hot servers come from the routes
        attack_pairs = sorted(routes, key=repr)
    rng = np.random.default_rng(seed)

    # Greedy token bucket: fire a maximal burst, then wait exactly as
    # long as the envelope requires before the next one.  The emitted
    # arrival count is flush against rate * t + burst at every instant.
    arrival_times: List[float] = []
    burst_instants: List[float] = []
    level = float(model.burst)
    t = 0.0
    emitted = 0
    while emitted < num_flows:
        take = min(int(level + _ENVELOPE_TOLERANCE), num_flows - emitted)
        if take >= 1:
            burst_instants.append(t)
            arrival_times.extend([t] * take)
            level -= take
            emitted += take
        refill = float(min(model.burst, num_flows - emitted)) or 1.0
        dt = max(refill - level, 1.0) / model.rate
        t += dt
        level = min(float(model.burst), level + dt * model.rate)
    horizon = t + model.window

    # Hot-pair assignment: rotate through the attack pairs with a
    # per-burst random offset so successive bursts shift which hot
    # routes collide, while staying fully seed-deterministic.
    offsets = rng.integers(0, len(attack_pairs), size=len(burst_instants))
    churn_draws = rng.random(num_flows) < churn_fraction

    events: List[Tuple[float, int, int, TraceEvent]] = []
    seq = 0
    burst_idx = -1
    prev_time: Optional[float] = None
    cursor = 0
    for i, t_arr in enumerate(arrival_times):
        if t_arr != prev_time:
            burst_idx += 1
            prev_time = t_arr
            cursor = int(offsets[burst_idx])
        src, dst = attack_pairs[cursor % len(attack_pairs)]
        cursor += 1
        fid = f"{id_prefix}{seed}_{i}"
        events.append((
            t_arr, 1, seq,
            TraceEvent(
                time=t_arr, kind="arrival", flow_id=fid,
                class_name=class_name, source=src, destination=dst,
            ),
        ))
        seq += 1
        has_next = burst_idx + 1 < len(burst_instants)
        if churn_draws[i] and has_next:
            # Free the slot at the exact instant the next burst lands;
            # the departures-first tie break hands it to the herd.
            t_dep = burst_instants[burst_idx + 1]
        else:
            # Pin until after the attack, draining LIFO.
            t_dep = horizon + (num_flows - i) * 1e-3
        events.append((
            t_dep, 0, seq,
            TraceEvent(time=t_dep, kind="departure", flow_id=fid),
        ))
        seq += 1
    events.sort(key=lambda e: (e[0], e[1], e[2]))
    stream = [e[3] for e in events]
    validate_adversarial_events(stream, model)
    return stream


def validate_adversarial_events(
    events: Sequence[TraceEvent],
    model: Optional[AdversaryModel] = None,
) -> None:
    """Reject malformed adversarial streams at construction time.

    Checks, in order: events are time-sorted; no flow arrives twice; no
    departure references a flow that never arrived (the trace-level
    analogue of "never release a never-admitted flow" — admission
    outcomes don't exist until replay, so the strongest constructible
    guard is that every released id has a *prior arrival*); no flow
    departs twice or before it arrives.  With ``model`` given, the
    arrival process is additionally checked against the ``(w, b)``
    envelope via an O(n) leaky bucket (equivalent to bounding every
    window).  Raises :class:`~repro.errors.TrafficError` on the first
    violation.
    """
    arrived: Dict[Hashable, float] = {}
    departed = set()
    last_time = float("-inf")
    arrival_times: List[float] = []
    for event in events:
        if event.time < last_time:
            raise TrafficError(
                f"adversarial trace is not time-sorted at "
                f"flow {event.flow_id!r} (t={event.time})"
            )
        last_time = event.time
        if event.kind == "arrival":
            if event.flow_id in arrived:
                raise TrafficError(
                    f"adversarial trace re-arrives flow "
                    f"{event.flow_id!r}"
                )
            arrived[event.flow_id] = event.time
            arrival_times.append(event.time)
        else:
            if event.flow_id not in arrived:
                raise TrafficError(
                    f"adversarial trace releases flow "
                    f"{event.flow_id!r} which never arrived"
                )
            if event.flow_id in departed:
                raise TrafficError(
                    f"adversarial trace releases flow "
                    f"{event.flow_id!r} twice"
                )
            if event.time < arrived[event.flow_id]:
                raise TrafficError(
                    f"flow {event.flow_id!r} departs before it arrives"
                )
            departed.add(event.flow_id)
    if model is None or not arrival_times:
        return
    level = 0.0
    prev = arrival_times[0]
    for t_arr in arrival_times:
        level = max(0.0, level - (t_arr - prev) * model.rate)
        prev = t_arr
        level += 1.0
        if level > model.burst + _ENVELOPE_TOLERANCE:
            raise TrafficError(
                f"arrivals at t={t_arr} exceed the (w, b) envelope "
                f"(rate={model.rate}/s, burst={model.burst})"
            )
