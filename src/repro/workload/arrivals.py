"""Seeded open-loop arrival / holding-time generation.

The schedule is Poisson arrivals (rate ``arrival_rate``) with
exponential holding times — the classic telephony model behind the
paper's "admit or reject a call" framing — plus a pair index per flow
drawn from a :class:`~repro.workload.popularity.ZipfPairPopularity`.

Determinism contract
--------------------
Generation is **chunked**: arrivals ``[k * chunk_size, (k+1) *
chunk_size)`` always come from ``np.random.SeedSequence(seed,
spawn_key=(k,))``, regardless of how many worker threads compute
chunks.  ``workers`` therefore only parallelizes the work; the output
stream is a pure function of ``(seed, num_flows, rates, popularity,
chunk_size)``.  The determinism tests pin this byte-for-byte.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import TrafficError
from .popularity import ZipfPairPopularity

__all__ = ["ArrivalSchedule", "open_loop_schedule", "ramp_schedule"]

#: Arrivals generated per independent random stream (see module docs).
CHUNK_SIZE = 4096


@dataclass(frozen=True)
class ArrivalSchedule:
    """Column-oriented open-loop workload: one row per flow.

    Attributes
    ----------
    times:
        Arrival instants, strictly sorted ascending.
    holdings:
        Per-flow holding durations (departure = arrival + holding).
    pair_indices:
        Index into the caller's pair list for each flow.
    seed:
        The seed the schedule was generated from.
    """

    times: np.ndarray
    holdings: np.ndarray
    pair_indices: np.ndarray
    seed: int

    @property
    def num_flows(self) -> int:
        return int(self.times.size)

    def departure_times(self) -> np.ndarray:
        return self.times + self.holdings


def _chunk(
    seed: int,
    k: int,
    count: int,
    arrival_rate: float,
    mean_holding: float,
    popularity: ZipfPairPopularity,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gaps / holdings / pair indices of one fixed-size chunk."""
    rng = np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(k,))
    )
    gaps = rng.exponential(1.0 / arrival_rate, size=count)
    holdings = rng.exponential(mean_holding, size=count)
    pair_indices = popularity.sample(rng, count)
    return gaps, holdings, pair_indices


#: Supported overload-ramp shapes.
RAMP_SHAPES = ("linear", "step")


def _ramp_rates(
    num_flows: int, rate0: float, rate1: float, shape: str
) -> np.ndarray:
    """Per-arrival instantaneous rate along the ramp."""
    if shape == "linear":
        if num_flows == 1:
            return np.asarray([rate0], dtype=np.float64)
        return np.linspace(rate0, rate1, num_flows)
    # step: first half at rate0, second half at rate1
    rates = np.full(num_flows, rate0, dtype=np.float64)
    rates[num_flows // 2:] = rate1
    return rates


def open_loop_schedule(
    num_flows: int,
    *,
    arrival_rate: float,
    mean_holding: float,
    popularity: ZipfPairPopularity,
    seed: int = 0,
    workers: Optional[int] = None,
    chunk_size: int = CHUNK_SIZE,
) -> ArrivalSchedule:
    """Generate a deterministic open-loop schedule of ``num_flows``.

    ``workers`` computes chunks in a thread pool; the result is
    identical for every worker count (including ``None`` — inline).
    """
    if num_flows < 0:
        raise TrafficError(f"num_flows must be >= 0, got {num_flows}")
    if arrival_rate <= 0 or mean_holding <= 0:
        raise TrafficError(
            "arrival_rate and mean_holding must be positive"
        )
    if chunk_size < 1:
        raise TrafficError(f"chunk_size must be >= 1, got {chunk_size}")
    counts = [
        min(chunk_size, num_flows - start)
        for start in range(0, num_flows, chunk_size)
    ]
    if workers is not None and workers > 1 and len(counts) > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            parts: List[Tuple[np.ndarray, ...]] = list(
                pool.map(
                    lambda kc: _chunk(
                        seed, kc[0], kc[1], arrival_rate,
                        mean_holding, popularity,
                    ),
                    enumerate(counts),
                )
            )
    else:
        parts = [
            _chunk(seed, k, c, arrival_rate, mean_holding, popularity)
            for k, c in enumerate(counts)
        ]
    if not parts:
        empty_f = np.empty(0, dtype=np.float64)
        return ArrivalSchedule(
            times=empty_f,
            holdings=empty_f.copy(),
            pair_indices=np.empty(0, dtype=np.int64),
            seed=seed,
        )
    gaps = np.concatenate([p[0] for p in parts])
    holdings = np.concatenate([p[1] for p in parts])
    pair_indices = np.concatenate([p[2] for p in parts])
    return ArrivalSchedule(
        times=np.cumsum(gaps),
        holdings=holdings,
        pair_indices=pair_indices,
        seed=seed,
    )


def ramp_schedule(
    num_flows: int,
    *,
    arrival_rate: float,
    ramp_factor: float,
    mean_holding: float,
    popularity: ZipfPairPopularity,
    shape: str = "linear",
    seed: int = 0,
    chunk_size: int = CHUNK_SIZE,
) -> ArrivalSchedule:
    """Open-loop schedule whose arrival rate ramps up to overload.

    The instantaneous rate moves from ``arrival_rate`` to
    ``arrival_rate * ramp_factor`` across the run — linearly per
    arrival index (``shape="linear"``) or as a half-way step
    (``shape="step"``).  Holding times and pair choices come from the
    exact same chunked streams as :func:`open_loop_schedule` (same
    seed ⇒ same holdings/pairs); only the inter-arrival gaps are
    rescaled by the ramp, so the result is deterministic in
    ``(seed, num_flows, rates, shape)`` and directly comparable to the
    constant-rate schedule it overloads.
    """
    if shape not in RAMP_SHAPES:
        raise TrafficError(
            f"unknown ramp shape {shape!r} (expected one of {RAMP_SHAPES})"
        )
    if ramp_factor <= 0:
        raise TrafficError(
            f"ramp_factor must be positive, got {ramp_factor}"
        )
    base = open_loop_schedule(
        num_flows,
        arrival_rate=arrival_rate,
        mean_holding=mean_holding,
        popularity=popularity,
        seed=seed,
        chunk_size=chunk_size,
    )
    if base.num_flows == 0:
        return base
    # base gaps are Exp(1/arrival_rate); rescale each to the ramp's
    # instantaneous rate (gap_i ~ Exp(1/rate_i)).
    gaps = np.empty(base.num_flows, dtype=np.float64)
    gaps[0] = base.times[0]
    np.subtract(base.times[1:], base.times[:-1], out=gaps[1:])
    rates = _ramp_rates(
        base.num_flows, arrival_rate, arrival_rate * ramp_factor, shape
    )
    gaps *= arrival_rate / rates
    return ArrivalSchedule(
        times=np.cumsum(gaps),
        holdings=base.holdings,
        pair_indices=base.pair_indices,
        seed=seed,
    )
