"""Seeded open-loop arrival / holding-time generation.

The schedule is Poisson arrivals (rate ``arrival_rate``) with
exponential holding times — the classic telephony model behind the
paper's "admit or reject a call" framing — plus a pair index per flow
drawn from a :class:`~repro.workload.popularity.ZipfPairPopularity`.

Determinism contract
--------------------
Generation is **chunked**: arrivals ``[k * chunk_size, (k+1) *
chunk_size)`` always come from ``np.random.SeedSequence(seed,
spawn_key=(k,))``, regardless of how many worker threads compute
chunks.  ``workers`` therefore only parallelizes the work; the output
stream is a pure function of ``(seed, num_flows, rates, popularity,
chunk_size)``.  The determinism tests pin this byte-for-byte.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import TrafficError
from .popularity import ZipfPairPopularity

__all__ = ["ArrivalSchedule", "open_loop_schedule"]

#: Arrivals generated per independent random stream (see module docs).
CHUNK_SIZE = 4096


@dataclass(frozen=True)
class ArrivalSchedule:
    """Column-oriented open-loop workload: one row per flow.

    Attributes
    ----------
    times:
        Arrival instants, strictly sorted ascending.
    holdings:
        Per-flow holding durations (departure = arrival + holding).
    pair_indices:
        Index into the caller's pair list for each flow.
    seed:
        The seed the schedule was generated from.
    """

    times: np.ndarray
    holdings: np.ndarray
    pair_indices: np.ndarray
    seed: int

    @property
    def num_flows(self) -> int:
        return int(self.times.size)

    def departure_times(self) -> np.ndarray:
        return self.times + self.holdings


def _chunk(
    seed: int,
    k: int,
    count: int,
    arrival_rate: float,
    mean_holding: float,
    popularity: ZipfPairPopularity,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Gaps / holdings / pair indices of one fixed-size chunk."""
    rng = np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(k,))
    )
    gaps = rng.exponential(1.0 / arrival_rate, size=count)
    holdings = rng.exponential(mean_holding, size=count)
    pair_indices = popularity.sample(rng, count)
    return gaps, holdings, pair_indices


def open_loop_schedule(
    num_flows: int,
    *,
    arrival_rate: float,
    mean_holding: float,
    popularity: ZipfPairPopularity,
    seed: int = 0,
    workers: Optional[int] = None,
    chunk_size: int = CHUNK_SIZE,
) -> ArrivalSchedule:
    """Generate a deterministic open-loop schedule of ``num_flows``.

    ``workers`` computes chunks in a thread pool; the result is
    identical for every worker count (including ``None`` — inline).
    """
    if num_flows < 0:
        raise TrafficError(f"num_flows must be >= 0, got {num_flows}")
    if arrival_rate <= 0 or mean_holding <= 0:
        raise TrafficError(
            "arrival_rate and mean_holding must be positive"
        )
    if chunk_size < 1:
        raise TrafficError(f"chunk_size must be >= 1, got {chunk_size}")
    counts = [
        min(chunk_size, num_flows - start)
        for start in range(0, num_flows, chunk_size)
    ]
    if workers is not None and workers > 1 and len(counts) > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            parts: List[Tuple[np.ndarray, ...]] = list(
                pool.map(
                    lambda kc: _chunk(
                        seed, kc[0], kc[1], arrival_rate,
                        mean_holding, popularity,
                    ),
                    enumerate(counts),
                )
            )
    else:
        parts = [
            _chunk(seed, k, c, arrival_rate, mean_holding, popularity)
            for k, c in enumerate(counts)
        ]
    if not parts:
        empty_f = np.empty(0, dtype=np.float64)
        return ArrivalSchedule(
            times=empty_f,
            holdings=empty_f.copy(),
            pair_indices=np.empty(0, dtype=np.int64),
            seed=seed,
        )
    gaps = np.concatenate([p[0] for p in parts])
    holdings = np.concatenate([p[1] for p in parts])
    pair_indices = np.concatenate([p[2] for p in parts])
    return ArrivalSchedule(
        times=np.cumsum(gaps),
        holdings=holdings,
        pair_indices=pair_indices,
        seed=seed,
    )
