"""Drive an admission controller with a workload event stream.

:func:`schedule_events` turns an :class:`~repro.workload.arrivals.\
ArrivalSchedule` into the merged arrival/departure event stream;
:func:`drive` replays events against any
:class:`~repro.admission.base.AdmissionController`, either strictly
sequentially or through the batch engine.

Batch mode processes the stream in **epochs** of up to ``batch_size``
arrivals: departures falling inside an epoch are released before
(flows admitted in earlier epochs) or after (flows admitted in this
epoch) the epoch's single ``admit_batch`` call.  Within an epoch the
relative order of admissions and releases therefore differs from the
sequential replay — that reordering is the price of batching and is
why the differential *correctness* suite drives ``admit_batch``
directly rather than through this driver.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Hashable, List, Sequence, Tuple

from ..admission.base import AdmissionController
from ..errors import TrafficError
from ..traffic.flows import FlowSpec
from .arrivals import ArrivalSchedule
from .trace import TraceEvent

__all__ = ["LoadgenResult", "drive", "schedule_events"]

Pair = Tuple[Hashable, Hashable]


def schedule_events(
    schedule: ArrivalSchedule,
    pairs: Sequence[Pair],
    class_name: str,
    *,
    id_prefix: str = "w",
) -> List[TraceEvent]:
    """Merged, time-sorted arrival + departure events of a schedule.

    Flow ids are ``{id_prefix}{seed}_{i}`` for arrival ``i``.  Ties are
    broken departures-first (a slot freed at time *t* is available to
    an arrival at the same instant), then by insertion order — fully
    deterministic.
    """
    if schedule.num_flows and not pairs:
        raise TrafficError("schedule references an empty pair list")
    events: List[Tuple[float, int, int, TraceEvent]] = []
    departures = schedule.departure_times()
    for i in range(schedule.num_flows):
        src, dst = pairs[int(schedule.pair_indices[i]) % len(pairs)]
        fid = f"{id_prefix}{schedule.seed}_{i}"
        t_arr = float(schedule.times[i])
        events.append((
            t_arr, 1, i,
            TraceEvent(
                time=t_arr, kind="arrival", flow_id=fid,
                class_name=class_name, source=src, destination=dst,
            ),
        ))
        t_dep = float(departures[i])
        events.append((
            t_dep, 0, i,
            TraceEvent(time=t_dep, kind="departure", flow_id=fid),
        ))
    events.sort(key=lambda e: (e[0], e[1], e[2]))
    return [e[3] for e in events]


@dataclass(frozen=True)
class LoadgenResult:
    """Outcome summary of one :func:`drive` run."""

    mode: str
    batch_size: int
    num_arrivals: int
    num_admitted: int
    num_rejected: int
    num_released: int
    elapsed_seconds: float

    @property
    def total_ops(self) -> int:
        """Admission attempts plus releases performed."""
        return self.num_arrivals + self.num_released

    @property
    def ops_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("nan")
        return self.total_ops / self.elapsed_seconds


def _flow_of(event: TraceEvent) -> FlowSpec:
    return FlowSpec(
        flow_id=event.flow_id,
        class_name=event.class_name,
        source=event.source,
        destination=event.destination,
        route=event.route,
    )


def drive(
    controller: AdmissionController,
    events: Sequence[TraceEvent],
    *,
    batch_size: int = 1024,
    mode: str = "batch",
) -> LoadgenResult:
    """Replay a workload event stream against a controller.

    Departures of flows that were rejected (or never seen) are skipped,
    so rejection-heavy traces replay cleanly.  Event decoding — building
    :class:`FlowSpec` objects and slicing epochs — happens before the
    clock starts: ``elapsed_seconds`` measures the admission calls (and
    the bookkeeping needed to route releases), not trace parsing.
    """
    if mode not in ("batch", "sequential"):
        raise TrafficError(f"unknown drive mode {mode!r}")
    if batch_size < 1:
        raise TrafficError(f"batch_size must be >= 1, got {batch_size}")
    admitted_ids = set()
    num_arrivals = num_admitted = num_released = 0
    if mode == "sequential":
        # op = FlowSpec to admit, or a bare flow id to release.
        ops = [
            _flow_of(e) if e.kind == "arrival" else e.flow_id
            for e in events
        ]
        start = time.perf_counter()
        for op in ops:
            if isinstance(op, FlowSpec):
                num_arrivals += 1
                if controller.admit(op).admitted:
                    admitted_ids.add(op.flow_id)
                    num_admitted += 1
            elif op in admitted_ids:
                controller.release(op)
                admitted_ids.discard(op)
                num_released += 1
        elapsed = time.perf_counter() - start
    else:
        # Epoch = up to batch_size consecutive arrivals plus the
        # departure ids interleaved with them.
        epochs: List[Tuple[List[FlowSpec], List[Hashable]]] = []
        arrivals: List[FlowSpec] = []
        departures: List[Hashable] = []
        for event in events:
            if event.kind == "arrival":
                arrivals.append(_flow_of(event))
                if len(arrivals) == batch_size:
                    epochs.append((arrivals, departures))
                    arrivals, departures = [], []
            else:
                departures.append(event.flow_id)
        if arrivals or departures:
            epochs.append((arrivals, departures))
        start = time.perf_counter()
        for flows, dep_ids in epochs:
            # Flows admitted in earlier epochs leave before this
            # epoch's admissions contend for their slots.
            early = [fid for fid in dep_ids if fid in admitted_ids]
            if early:
                controller.release_batch(early)
                admitted_ids.difference_update(early)
                num_released += len(early)
            if flows:
                num_arrivals += len(flows)
                for decision in controller.admit_batch(flows):
                    if decision.admitted:
                        admitted_ids.add(decision.flow_id)
                        num_admitted += 1
            # Same-epoch departures of flows just admitted (the early
            # ones were already dropped from admitted_ids).
            late = [fid for fid in dep_ids if fid in admitted_ids]
            if late:
                controller.release_batch(late)
                admitted_ids.difference_update(late)
                num_released += len(late)
        elapsed = time.perf_counter() - start
    return LoadgenResult(
        mode=mode,
        batch_size=batch_size if mode == "batch" else 1,
        num_arrivals=num_arrivals,
        num_admitted=num_admitted,
        num_rejected=num_arrivals - num_admitted,
        num_released=num_released,
        elapsed_seconds=elapsed,
    )
