"""Drive an admission controller with a workload event stream.

:func:`schedule_events` turns an :class:`~repro.workload.arrivals.\
ArrivalSchedule` into the merged arrival/departure event stream;
:func:`drive` replays events against any
:class:`~repro.admission.base.AdmissionController`, either strictly
sequentially or through the batch engine.

Batch mode processes the stream in **epochs** of up to ``batch_size``
arrivals: departures falling inside an epoch are released before
(flows admitted in earlier epochs) or after (flows admitted in this
epoch) the epoch's single ``admit_batch`` call.  Within an epoch the
relative order of admissions and releases therefore differs from the
sequential replay — that reordering is the price of batching and is
why the differential *correctness* suite drives ``admit_batch``
directly rather than through this driver.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..admission.base import AdmissionController
from ..errors import TrafficError
from ..traffic.flows import PRIORITIES, FlowSpec
from .arrivals import ArrivalSchedule
from .trace import TraceEvent

__all__ = [
    "LoadgenResult",
    "assign_priorities",
    "drive",
    "parse_priority_mix",
    "schedule_events",
]

Pair = Tuple[Hashable, Hashable]


def schedule_events(
    schedule: ArrivalSchedule,
    pairs: Sequence[Pair],
    class_name: str,
    *,
    id_prefix: str = "w",
) -> List[TraceEvent]:
    """Merged, time-sorted arrival + departure events of a schedule.

    Flow ids are ``{id_prefix}{seed}_{i}`` for arrival ``i``.  Ties are
    broken departures-first (a slot freed at time *t* is available to
    an arrival at the same instant), then by insertion order — fully
    deterministic.
    """
    if schedule.num_flows and not pairs:
        raise TrafficError("schedule references an empty pair list")
    events: List[Tuple[float, int, int, TraceEvent]] = []
    departures = schedule.departure_times()
    for i in range(schedule.num_flows):
        src, dst = pairs[int(schedule.pair_indices[i]) % len(pairs)]
        fid = f"{id_prefix}{schedule.seed}_{i}"
        t_arr = float(schedule.times[i])
        events.append((
            t_arr, 1, i,
            TraceEvent(
                time=t_arr, kind="arrival", flow_id=fid,
                class_name=class_name, source=src, destination=dst,
            ),
        ))
        t_dep = float(departures[i])
        events.append((
            t_dep, 0, i,
            TraceEvent(time=t_dep, kind="departure", flow_id=fid),
        ))
    events.sort(key=lambda e: (e[0], e[1], e[2]))
    return [e[3] for e in events]


def parse_priority_mix(spec: str) -> Dict[str, float]:
    """Parse ``"hard_rt=0.2,soft_rt=0.3,elastic=0.5"`` into weights.

    Weights must be non-negative with a positive sum; they are used
    *unnormalized* by :func:`assign_priorities` (NumPy normalizes).
    """
    mix: Dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        name, _, value = part.partition("=")
        name = name.strip()
        if name not in PRIORITIES:
            raise TrafficError(
                f"unknown priority {name!r} in mix (expected one of "
                f"{PRIORITIES})"
            )
        try:
            weight = float(value)
        except ValueError:
            raise TrafficError(
                f"bad weight for priority {name!r}: {value!r}"
            ) from None
        if weight < 0:
            raise TrafficError(
                f"priority weight must be >= 0, got {name}={weight}"
            )
        mix[name] = weight
    if not mix or not sum(mix.values()) > 0:
        raise TrafficError(
            f"priority mix needs a positive total weight, got {spec!r}"
        )
    return mix


def assign_priorities(
    events: Sequence[TraceEvent],
    mix: Dict[str, float],
    *,
    seed: int = 0,
) -> List[TraceEvent]:
    """Stamp arrival events with priorities drawn from a weighted mix.

    Deterministic in ``(events, mix, seed)``: priorities are drawn one
    per *arrival* (in event order) from ``numpy``'s seeded generator;
    departures are passed through untouched.  Returns new events —
    inputs are never mutated.
    """
    names = sorted(mix)
    weights = np.asarray([mix[n] for n in names], dtype=np.float64)
    weights = weights / weights.sum()
    rng = np.random.default_rng(seed)
    out: List[TraceEvent] = []
    for event in events:
        if event.kind != "arrival":
            out.append(event)
            continue
        choice = names[int(rng.choice(len(names), p=weights))]
        out.append(replace(event, priority=choice))
    return out


@dataclass(frozen=True)
class LoadgenResult:
    """Outcome summary of one :func:`drive` run."""

    mode: str
    batch_size: int
    num_arrivals: int
    num_admitted: int
    num_rejected: int
    num_released: int
    elapsed_seconds: float
    #: ``{priority: {"arrivals": n, "admitted": n, "rejected": n}}``,
    #: present only when the driven events carried priorities
    #: (priority-less runs keep the historical result shape).
    per_priority: Optional[Dict[str, Dict[str, int]]] = None

    @property
    def total_ops(self) -> int:
        """Admission attempts plus releases performed."""
        return self.num_arrivals + self.num_released

    @property
    def ops_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("nan")
        return self.total_ops / self.elapsed_seconds


def _flow_of(event: TraceEvent) -> FlowSpec:
    return FlowSpec(
        flow_id=event.flow_id,
        class_name=event.class_name,
        source=event.source,
        destination=event.destination,
        route=event.route,
        priority=event.priority,
    )


def drive(
    controller: AdmissionController,
    events: Sequence[TraceEvent],
    *,
    batch_size: int = 1024,
    mode: str = "batch",
) -> LoadgenResult:
    """Replay a workload event stream against a controller.

    Departures of flows that were rejected (or never seen) are skipped,
    so rejection-heavy traces replay cleanly.  Event decoding — building
    :class:`FlowSpec` objects and slicing epochs — happens before the
    clock starts: ``elapsed_seconds`` measures the admission calls (and
    the bookkeeping needed to route releases), not trace parsing.
    """
    if mode not in ("batch", "sequential"):
        raise TrafficError(f"unknown drive mode {mode!r}")
    if batch_size < 1:
        raise TrafficError(f"batch_size must be >= 1, got {batch_size}")
    admitted_ids = set()
    num_arrivals = num_admitted = num_released = 0
    # Priority attribution happens outside the timed window: flow id ->
    # priority is resolved up front, and the per-priority tally replays
    # the controller's decision records afterwards.
    priority_of = {
        e.flow_id: e.priority
        for e in events
        if e.kind == "arrival" and e.priority is not None
    }
    first_decision = len(controller.decisions)
    if mode == "sequential":
        # op = FlowSpec to admit, or a bare flow id to release.
        ops = [
            _flow_of(e) if e.kind == "arrival" else e.flow_id
            for e in events
        ]
        start = time.perf_counter()
        for op in ops:
            if isinstance(op, FlowSpec):
                num_arrivals += 1
                if controller.admit(op).admitted:
                    admitted_ids.add(op.flow_id)
                    num_admitted += 1
            elif op in admitted_ids:
                controller.release(op)
                admitted_ids.discard(op)
                num_released += 1
        elapsed = time.perf_counter() - start
    else:
        # Epoch = up to batch_size consecutive arrivals plus the
        # departure ids interleaved with them.
        epochs: List[Tuple[List[FlowSpec], List[Hashable]]] = []
        arrivals: List[FlowSpec] = []
        departures: List[Hashable] = []
        for event in events:
            if event.kind == "arrival":
                arrivals.append(_flow_of(event))
                if len(arrivals) == batch_size:
                    epochs.append((arrivals, departures))
                    arrivals, departures = [], []
            else:
                departures.append(event.flow_id)
        if arrivals or departures:
            epochs.append((arrivals, departures))
        start = time.perf_counter()
        for flows, dep_ids in epochs:
            # Flows admitted in earlier epochs leave before this
            # epoch's admissions contend for their slots.
            early = [fid for fid in dep_ids if fid in admitted_ids]
            if early:
                controller.release_batch(early)
                admitted_ids.difference_update(early)
                num_released += len(early)
            if flows:
                num_arrivals += len(flows)
                for decision in controller.admit_batch(flows):
                    if decision.admitted:
                        admitted_ids.add(decision.flow_id)
                        num_admitted += 1
            # Same-epoch departures of flows just admitted (the early
            # ones were already dropped from admitted_ids).
            late = [fid for fid in dep_ids if fid in admitted_ids]
            if late:
                controller.release_batch(late)
                admitted_ids.difference_update(late)
                num_released += len(late)
        elapsed = time.perf_counter() - start
    per_priority: Optional[Dict[str, Dict[str, int]]] = None
    if priority_of:
        per_priority = {}
        for decision in controller.decisions[first_decision:]:
            pri = priority_of.get(decision.flow_id)
            if pri is None:
                continue
            bucket = per_priority.setdefault(
                pri, {"arrivals": 0, "admitted": 0, "rejected": 0}
            )
            bucket["arrivals"] += 1
            bucket["admitted" if decision.admitted else "rejected"] += 1
    return LoadgenResult(
        mode=mode,
        batch_size=batch_size if mode == "batch" else 1,
        num_arrivals=num_arrivals,
        num_admitted=num_admitted,
        num_rejected=num_arrivals - num_admitted,
        num_released=num_released,
        elapsed_seconds=elapsed,
        per_priority=per_priority,
    )
