"""Deterministic workload generation, tracing and replay.

Seeded open-loop arrival schedules (:mod:`~repro.workload.arrivals`),
Zipf-skewed pair popularity (:mod:`~repro.workload.popularity`),
``(w, b)``-bounded adversarial workloads
(:mod:`~repro.workload.adversarial`), canonical JSON-lines traces
(:mod:`~repro.workload.trace`) and the controller driver
(:mod:`~repro.workload.loadgen`) behind the ``repro-ubac loadgen`` CLI
and the admission throughput bench.
"""

from .adversarial import (
    AdversaryModel,
    adversarial_events,
    hot_servers,
    validate_adversarial_events,
)
from .arrivals import (
    RAMP_SHAPES,
    ArrivalSchedule,
    open_loop_schedule,
    ramp_schedule,
)
from .loadgen import (
    LoadgenResult,
    assign_priorities,
    drive,
    parse_priority_mix,
    schedule_events,
)
from .popularity import ZipfPairPopularity
from .trace import (
    TRACE_SCHEMA,
    TraceEvent,
    read_trace,
    trace_lines,
    write_trace,
)

__all__ = [
    "AdversaryModel",
    "ArrivalSchedule",
    "LoadgenResult",
    "RAMP_SHAPES",
    "TRACE_SCHEMA",
    "TraceEvent",
    "ZipfPairPopularity",
    "adversarial_events",
    "assign_priorities",
    "drive",
    "hot_servers",
    "open_loop_schedule",
    "parse_priority_mix",
    "ramp_schedule",
    "read_trace",
    "schedule_events",
    "trace_lines",
    "validate_adversarial_events",
    "write_trace",
]
