"""Compact JSON-lines workload traces (record / replay).

Format: a header object followed by one event object per line.

.. code-block:: text

   {"meta":{...},"schema":"repro-workload-trace/v1"}
   {"cls":"voice","dst":"B","id":"w7_0","k":"a","src":"A","t":0.01}
   {"id":"w7_0","k":"d","t":1.23}

Serialization is canonical — sorted keys, no whitespace — so the same
event stream always produces a byte-identical file; the determinism
tests rely on it.  Python's float repr round-trips exactly, so replayed
times equal recorded ones bit-for-bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import (
    IO,
    Any,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from ..errors import TrafficError
from ..traffic.flows import PRIORITIES

__all__ = [
    "TRACE_SCHEMA",
    "TraceEvent",
    "read_trace",
    "trace_lines",
    "write_trace",
]

TRACE_SCHEMA = "repro-workload-trace/v1"

_KINDS = {"arrival": "a", "departure": "d"}
_KIND_NAMES = {v: k for k, v in _KINDS.items()}


@dataclass(frozen=True)
class TraceEvent:
    """One workload event: a flow arrival or departure.

    ``priority`` is the optional overload-control priority of an
    arrival (serialized as ``pri``); traces without priorities stay
    byte-identical to pre-priority recordings.
    """

    time: float
    kind: str  # "arrival" | "departure"
    flow_id: Hashable
    class_name: Optional[str] = None
    source: Optional[Hashable] = None
    destination: Optional[Hashable] = None
    route: Optional[Tuple[Hashable, ...]] = None
    priority: Optional[str] = None

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise TrafficError(f"unknown event kind {self.kind!r}")
        if self.priority is not None and self.priority not in PRIORITIES:
            raise TrafficError(
                f"unknown priority {self.priority!r} on event "
                f"{self.flow_id!r} (expected one of {PRIORITIES})"
            )
        if self.kind == "arrival" and (
            self.class_name is None
            or self.source is None
            or self.destination is None
        ):
            raise TrafficError(
                f"arrival event {self.flow_id!r} needs class, source "
                "and destination"
            )


def _event_obj(event: TraceEvent) -> Dict[str, Any]:
    obj: Dict[str, Any] = {
        "t": float(event.time),
        "k": _KINDS[event.kind],
        "id": event.flow_id,
    }
    if event.kind == "arrival":
        obj["cls"] = event.class_name
        obj["src"] = event.source
        obj["dst"] = event.destination
        if event.route is not None:
            obj["route"] = list(event.route)
        if event.priority is not None:
            obj["pri"] = event.priority
    return obj


def trace_lines(
    events: Iterable[TraceEvent],
    meta: Optional[Dict[str, Any]] = None,
) -> Iterator[str]:
    """Canonical trace serialization, one string per line (no newline)."""
    dumps = json.dumps
    yield dumps(
        {"schema": TRACE_SCHEMA, "meta": meta or {}},
        sort_keys=True,
        separators=(",", ":"),
    )
    for event in events:
        yield dumps(
            _event_obj(event), sort_keys=True, separators=(",", ":")
        )


def write_trace(
    path_or_file: Union[str, IO[str]],
    events: Iterable[TraceEvent],
    meta: Optional[Dict[str, Any]] = None,
) -> None:
    """Write a canonical JSON-lines trace file."""
    if hasattr(path_or_file, "write"):
        for line in trace_lines(events, meta):
            path_or_file.write(line + "\n")
        return
    with open(path_or_file, "w", encoding="utf-8") as fh:
        for line in trace_lines(events, meta):
            fh.write(line + "\n")


def _parse_event(obj: Dict[str, Any], lineno: int) -> TraceEvent:
    try:
        kind = _KIND_NAMES[obj["k"]]
        return TraceEvent(
            time=float(obj["t"]),
            kind=kind,
            flow_id=obj["id"],
            class_name=obj.get("cls"),
            source=obj.get("src"),
            destination=obj.get("dst"),
            route=(
                tuple(obj["route"]) if obj.get("route") is not None
                else None
            ),
            priority=obj.get("pri"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TrafficError(
            f"malformed trace event on line {lineno}: {exc}"
        ) from None


def read_trace(
    path_or_file: Union[str, IO[str]],
) -> Tuple[Dict[str, Any], List[TraceEvent]]:
    """Load a trace; returns ``(meta, events)``."""
    if hasattr(path_or_file, "read"):
        return _read(path_or_file)
    with open(path_or_file, "r", encoding="utf-8") as fh:
        return _read(fh)


def _read(fh: IO[str]) -> Tuple[Dict[str, Any], List[TraceEvent]]:
    header_line = fh.readline()
    if not header_line.strip():
        raise TrafficError("empty trace file")
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as exc:
        raise TrafficError(f"malformed trace header: {exc}") from None
    if header.get("schema") != TRACE_SCHEMA:
        raise TrafficError(
            f"unsupported trace schema {header.get('schema')!r} "
            f"(expected {TRACE_SCHEMA!r})"
        )
    events: List[TraceEvent] = []
    for lineno, line in enumerate(fh, start=2):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TrafficError(
                f"malformed trace event on line {lineno}: {exc}"
            ) from None
        events.append(_parse_event(obj, lineno))
    return header.get("meta", {}), events
