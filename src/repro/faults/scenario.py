"""Canned chaos scenarios: flow schedules over configured pairs.

:func:`poisson_flow_schedule` in :mod:`repro.traffic.generators` draws
source/destination pairs from *all* edge routers, but a chaos run admits
against a :class:`~repro.config.configured.ConfiguredNetwork` whose
route map covers a fixed pair set.  The helpers here generate schedules
restricted to those pairs, plus a default deterministic link-failure
scenario (fail the most-loaded configured link mid-run, restore it
later) used by the ``repro faults`` CLI and the chaos tests.
"""

from __future__ import annotations

import math
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

import numpy as np

from ..config.configured import ConfiguredNetwork
from ..errors import FaultInjectionError
from ..traffic.flows import FlowSpec
from ..traffic.generators import FlowEvent
from ..workload.adversarial import AdversaryModel, adversarial_events
from .schedule import FaultEvent, FaultSchedule

__all__ = [
    "adversarial_flow_schedule",
    "configured_flow_schedule",
    "most_loaded_link",
    "default_link_failure_scenario",
]


def configured_flow_schedule(
    cfg: ConfiguredNetwork,
    class_name: str,
    *,
    arrival_rate: float,
    mean_holding: float,
    horizon: float,
    seed: int,
) -> List[FlowEvent]:
    """Poisson arrivals restricted to the configuration's pair set.

    Flows arrive at ``arrival_rate`` flows/second between pairs drawn
    uniformly from ``cfg.routes`` and hold for Exp(``mean_holding``)
    seconds.  Departures past the horizon are kept so every arrival has
    a matching departure.  Deterministic in ``(cfg, seed, parameters)``.
    """
    if arrival_rate <= 0 or mean_holding <= 0 or horizon <= 0:
        raise FaultInjectionError(
            "arrival_rate, mean_holding and horizon must be positive"
        )
    cfg.registry.get(class_name)  # raises for unknown classes
    pairs = sorted(cfg.routes, key=str)
    rng = np.random.default_rng(seed)
    events: List[FlowEvent] = []
    t = 0.0
    k = 0
    while True:
        t += float(rng.exponential(1.0 / arrival_rate))
        if t >= horizon:
            break
        src, dst = pairs[int(rng.integers(len(pairs)))]
        flow = FlowSpec(
            flow_id=f"c{seed}_{k}",
            class_name=class_name,
            source=src,
            destination=dst,
        )
        hold = float(rng.exponential(mean_holding))
        events.append(FlowEvent(time=t, kind="arrival", flow=flow))
        events.append(
            FlowEvent(time=t + hold, kind="departure", flow=flow)
        )
        k += 1
    events.sort(
        key=lambda e: (e.time, 0 if e.kind == "departure" else 1)
    )
    return events


def adversarial_flow_schedule(
    cfg: ConfiguredNetwork,
    class_name: str,
    *,
    horizon: float,
    seed: int,
    model: Optional[AdversaryModel] = None,
    hot_edges: int = 1,
    churn_fraction: float = 0.5,
) -> List[FlowEvent]:
    """Extremal ``(w, b)``-bounded arrivals over the configured pairs.

    The chaos-harness twin of :func:`configured_flow_schedule`: instead
    of Poisson arrivals it drives the adversarial engine
    (:func:`repro.workload.adversarial_events`) against the
    configuration's own route table — synchronized bursts flush against
    the envelope, aimed at the hottest configured link servers, with
    thundering-herd releases timed onto the next burst — so fault
    transitions land while admission pressure is at its worst-case
    shape, not its average.  The generator validates its stream at
    construction (never releasing a flow that never arrived, envelope
    respected), mirroring :func:`~repro.faults.random_fault_schedule`'s
    construction-time guard.  Departures past the horizon are kept so
    every arrival has a matching departure.  Deterministic in
    ``(cfg, seed, parameters)``.
    """
    if horizon <= 0:
        raise FaultInjectionError("horizon must be positive")
    model = model or AdversaryModel()
    cfg.registry.get(class_name)  # raises for unknown classes
    num_flows = max(
        1, int(math.ceil(model.rate * horizon)) + model.burst
    )
    events = adversarial_events(
        cfg.graph,
        cfg.routes,
        class_name,
        num_flows=num_flows,
        model=model,
        seed=seed,
        hot_edges=hot_edges,
        churn_fraction=churn_fraction,
        id_prefix="advc",
    )
    keep = {
        e.flow_id
        for e in events
        if e.kind == "arrival" and e.time < horizon
    }
    flows: Dict[Hashable, FlowSpec] = {}
    out: List[FlowEvent] = []
    for event in events:
        if event.flow_id not in keep:
            continue
        if event.kind == "arrival":
            flow = FlowSpec(
                flow_id=event.flow_id,
                class_name=event.class_name,
                source=event.source,
                destination=event.destination,
            )
            flows[event.flow_id] = flow
            out.append(
                FlowEvent(time=event.time, kind="arrival", flow=flow)
            )
        else:
            out.append(
                FlowEvent(
                    time=event.time,
                    kind="departure",
                    flow=flows[event.flow_id],
                )
            )
    return out


def most_loaded_link(
    cfg: ConfiguredNetwork,
) -> Tuple[Hashable, Hashable]:
    """The physical link crossed by the most configured routes.

    Ties break lexicographically, so the choice is deterministic.  This
    is the natural worst-case single failure for a configuration: it
    strands the largest number of routes at once.
    """
    load: Dict[FrozenSet[Hashable], int] = {}
    for path in cfg.routes.values():
        for u, v in zip(path, path[1:]):
            key = frozenset((u, v))
            load[key] = load.get(key, 0) + 1
    if not load:
        raise FaultInjectionError("configuration has no routes")
    best = sorted(
        load.items(),
        key=lambda item: (
            -item[1],
            tuple(sorted(str(x) for x in item[0])),
        ),
    )[0][0]
    return tuple(sorted(best, key=str))  # type: ignore[return-value]


def default_link_failure_scenario(
    cfg: ConfiguredNetwork,
    *,
    horizon: float = 2.0,
    down_at: float = 0.6,
    up_at: float = 1.4,
) -> FaultSchedule:
    """Fail the most-loaded configured link mid-run, restore it later."""
    if not (0 <= down_at < up_at <= horizon):
        raise FaultInjectionError(
            f"need 0 <= down_at < up_at <= horizon, got "
            f"down_at={down_at}, up_at={up_at}, horizon={horizon}"
        )
    link = most_loaded_link(cfg)
    return FaultSchedule(
        [
            FaultEvent(down_at, "link_down", link),
            FaultEvent(up_at, "link_up", link),
        ],
        network=cfg.network,
    )
