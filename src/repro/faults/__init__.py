"""Runtime fault injection and graceful degradation (:mod:`repro.faults`).

Deterministic, seedable fault schedules (link/router failures,
controller crash/restore at simulated timestamps) plus a
:class:`ChaosHarness` that replays a schedule against a running
admission co-simulation: on a topology fault it partitions the
established flows into survivors and casualties, re-routes the
casualties online through the Section 5.2 incremental repair, and falls
back to a degraded admission mode (reduced effective ``alpha``,
exponential backoff-and-retry) when no verified repair exists.  Every
run yields a deterministic :class:`TransitionReport`.
"""

from .degraded import BackoffPolicy, DegradedModePolicy
from .harness import ChaosHarness
from .process import (
    ClusterProcess,
    ServiceProcess,
    kill_restart_check,
    kill_worker_restart_check,
)
from .report import (
    FLOW_OUTCOMES,
    FlowAccount,
    TransitionRecord,
    TransitionReport,
)
from .scenario import (
    adversarial_flow_schedule,
    configured_flow_schedule,
    default_link_failure_scenario,
    most_loaded_link,
)
from .schedule import (
    FAULT_KINDS,
    FaultEvent,
    FaultSchedule,
    random_fault_schedule,
)

__all__ = [
    "BackoffPolicy",
    "ChaosHarness",
    "DegradedModePolicy",
    "FAULT_KINDS",
    "FLOW_OUTCOMES",
    "FaultEvent",
    "FaultSchedule",
    "FlowAccount",
    "ClusterProcess",
    "ServiceProcess",
    "TransitionRecord",
    "TransitionReport",
    "kill_restart_check",
    "kill_worker_restart_check",
    "adversarial_flow_schedule",
    "configured_flow_schedule",
    "default_link_failure_scenario",
    "most_loaded_link",
    "random_fault_schedule",
]
