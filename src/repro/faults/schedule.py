"""Deterministic, seedable fault schedules.

A :class:`FaultSchedule` is an ordered list of :class:`FaultEvent`
records — link down/up, router down, controller crash/restore — at
simulated timestamps.  Schedules are plain data: buildable by hand,
generated pseudo-randomly from a seed (:func:`random_fault_schedule`),
and serializable to/from JSON so a chaos scenario can be archived and
replayed bit-identically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import FaultInjectionError
from ..topology.network import Network

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "random_fault_schedule",
]

#: Recognized fault kinds and their target shapes.
FAULT_KINDS = (
    "link_down",          # target: (u, v) physical link
    "link_up",            # target: (u, v), must be currently down
    "router_down",        # target: router name (all incident links die)
    "controller_crash",   # target: None
    "controller_restore",  # target: None
)

_LINK_KINDS = ("link_down", "link_up")
_CONTROLLER_KINDS = ("controller_crash", "controller_restore")


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault at a simulated timestamp.

    ``target`` is a ``(u, v)`` router pair for link events, a router
    name for ``router_down``, and ``None`` for controller events.
    """

    time: float
    kind: str
    target: object = None

    def __post_init__(self):
        if self.time < 0:
            raise FaultInjectionError(
                f"fault time must be >= 0, got {self.time}"
            )
        if self.kind not in FAULT_KINDS:
            raise FaultInjectionError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        if self.kind in _LINK_KINDS:
            if (
                not isinstance(self.target, (tuple, list))
                or len(self.target) != 2
            ):
                raise FaultInjectionError(
                    f"{self.kind} target must be a (u, v) link, "
                    f"got {self.target!r}"
                )
            object.__setattr__(self, "target", tuple(self.target))
        elif self.kind == "router_down":
            if self.target is None:
                raise FaultInjectionError(
                    "router_down target must name a router"
                )
        elif self.target is not None:
            raise FaultInjectionError(
                f"{self.kind} takes no target, got {self.target!r}"
            )

    @property
    def link(self) -> Tuple[Hashable, Hashable]:
        if self.kind not in _LINK_KINDS:
            raise FaultInjectionError(f"{self.kind} has no link target")
        return self.target  # type: ignore[return-value]

    def to_dict(self) -> Dict[str, object]:
        target: object = self.target
        if self.kind in _LINK_KINDS:
            target = list(self.target)  # type: ignore[arg-type]
        return {"time": self.time, "kind": self.kind, "target": target}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FaultEvent":
        return cls(
            time=float(data["time"]),  # type: ignore[arg-type]
            kind=str(data["kind"]),
            target=data.get("target"),
        )


class FaultSchedule:
    """A time-ordered, validated list of fault events.

    Validation enforces the invariants the chaos harness relies on:
    events sorted by time (ties keep insertion order), ``link_up`` only
    for links previously taken down, no double-down/double-crash, and —
    when a :class:`Network` is given — link and router targets that
    exist in the topology.
    """

    def __init__(
        self,
        events: Sequence[FaultEvent],
        *,
        network: Optional[Network] = None,
    ):
        ordered = sorted(
            enumerate(events), key=lambda pair: (pair[1].time, pair[0])
        )
        self.events: List[FaultEvent] = [e for _, e in ordered]
        self._validate(network)

    # ------------------------------------------------------------------ #

    def _validate(self, network: Optional[Network]) -> None:
        down_links: set = set()
        down_routers: set = set()
        controller_up = True
        for event in self.events:
            if network is not None:
                self._validate_target(event, network)
            if event.kind == "link_down":
                key = frozenset(event.link)
                if key in down_links:
                    raise FaultInjectionError(
                        f"link {event.target!r} taken down twice "
                        f"(t={event.time})"
                    )
                down_links.add(key)
            elif event.kind == "link_up":
                key = frozenset(event.link)
                if key not in down_links:
                    raise FaultInjectionError(
                        f"link_up for {event.target!r} at t={event.time} "
                        "without a preceding link_down"
                    )
                down_links.discard(key)
            elif event.kind == "router_down":
                if event.target in down_routers:
                    raise FaultInjectionError(
                        f"router {event.target!r} taken down twice"
                    )
                down_routers.add(event.target)
            elif event.kind == "controller_crash":
                if not controller_up:
                    raise FaultInjectionError(
                        f"controller crashed twice (t={event.time})"
                    )
                controller_up = False
            elif event.kind == "controller_restore":
                if controller_up:
                    raise FaultInjectionError(
                        f"controller_restore at t={event.time} without "
                        "a preceding crash"
                    )
                controller_up = True

    @staticmethod
    def _validate_target(event: FaultEvent, network: Network) -> None:
        if event.kind in _LINK_KINDS:
            u, v = event.link
            if not network.has_link(u, v):
                raise FaultInjectionError(
                    f"{event.kind} targets unknown link {u!r} -- {v!r}"
                )
        elif event.kind == "router_down":
            if not network.has_router(event.target):
                raise FaultInjectionError(
                    f"router_down targets unknown router {event.target!r}"
                )

    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __getitem__(self, index: int) -> FaultEvent:
        return self.events[index]

    @property
    def horizon(self) -> float:
        """Time of the last event (0.0 when empty)."""
        return self.events[-1].time if self.events else 0.0

    def topology_kinds(self) -> List[FaultEvent]:
        """The events that change the topology (link/router faults)."""
        return [
            e for e in self.events if e.kind not in _CONTROLLER_KINDS
        ]

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": "repro-fault-schedule/v1",
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(
        cls,
        data: Mapping[str, object],
        *,
        network: Optional[Network] = None,
    ) -> "FaultSchedule":
        schema = data.get("schema")
        if schema != "repro-fault-schedule/v1":
            raise FaultInjectionError(
                f"unsupported fault-schedule schema {schema!r}"
            )
        events = [
            FaultEvent.from_dict(e)
            for e in data["events"]  # type: ignore[union-attr]
        ]
        return cls(events, network=network)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    @classmethod
    def load(
        cls, path: str, *, network: Optional[Network] = None
    ) -> "FaultSchedule":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh), network=network)


def random_fault_schedule(
    network: Network,
    *,
    seed: int,
    horizon: float,
    link_failures: int = 1,
    mean_downtime: float = 0.5,
    controller_crashes: int = 0,
    mean_outage: float = 0.2,
) -> FaultSchedule:
    """A seeded pseudo-random link-failure / crash schedule.

    Draws ``link_failures`` distinct links (never cutting the network in
    two: candidates whose removal disconnects the topology are skipped),
    fails each at a uniform time in ``(0, horizon)`` and restores it an
    Exp(``mean_downtime``) later (capped at the horizon; a repair past
    the horizon is dropped, leaving the link down).  Controller crashes
    are laid out the same way and never overlap each other.  The same
    ``(network, seed, parameters)`` always yields the same schedule.
    """
    if horizon <= 0:
        raise FaultInjectionError("horizon must be positive")
    rng = np.random.default_rng(seed)
    links = sorted(
        {tuple(sorted(link.key, key=str)) for link in network.directed_links()}
    )
    events: List[FaultEvent] = []

    safe_links = [
        (u, v)
        for u, v in links
        if _removal_keeps_connected(network, u, v)
    ]
    if link_failures > len(safe_links):
        raise FaultInjectionError(
            f"cannot draw {link_failures} safely removable links "
            f"(only {len(safe_links)} available)"
        )
    if link_failures:
        chosen = rng.choice(
            len(safe_links), size=link_failures, replace=False
        )
        for idx in sorted(int(i) for i in chosen):
            u, v = safe_links[idx]
            down = float(rng.uniform(0.05 * horizon, 0.75 * horizon))
            up = down + float(rng.exponential(mean_downtime))
            events.append(FaultEvent(down, "link_down", (u, v)))
            if up < horizon:
                events.append(FaultEvent(up, "link_up", (u, v)))

    t = 0.0
    for _ in range(controller_crashes):
        t += float(rng.uniform(0.05 * horizon, 0.5 * horizon))
        if t >= horizon:
            break
        restore = t + float(rng.exponential(mean_outage))
        if restore >= horizon:
            break
        events.append(FaultEvent(t, "controller_crash"))
        events.append(FaultEvent(restore, "controller_restore"))
        t = restore

    return FaultSchedule(events, network=network)


def _removal_keeps_connected(
    network: Network, u: Hashable, v: Hashable
) -> bool:
    try:
        network.without_link(u, v)
    except Exception:
        return False
    return True
