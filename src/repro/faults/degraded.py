"""Degraded-mode and retry policies for graceful degradation.

When a failure leaves no *verified* repair (the Section 5.2 selector
cannot re-route every casualty safely at the configured ``alpha``), the
chaos harness falls back to uncertified shortest-path reroutes admitted
under a reduced effective utilization — :class:`DegradedModePolicy`
says how much to reduce — and re-admissions that are rejected (no slots
free yet on the fallback path) retry with exponential backoff —
:class:`BackoffPolicy` says when, and when to give up and shed the flow.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FaultInjectionError

__all__ = ["BackoffPolicy", "DegradedModePolicy"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff-and-retry for rejected re-admissions.

    Attempt ``k`` (0-based) is retried ``base * factor**k`` simulated
    seconds after the rejection; after ``max_retries`` rejections the
    flow is shed for good.
    """

    base: float = 0.05
    factor: float = 2.0
    max_retries: int = 4

    def __post_init__(self):
        if self.base <= 0:
            raise FaultInjectionError("backoff base must be positive")
        if self.factor < 1.0:
            raise FaultInjectionError("backoff factor must be >= 1")
        if self.max_retries < 0:
            raise FaultInjectionError("max_retries must be >= 0")

    def delay(self, attempt: int) -> float:
        """Wait before retry number ``attempt`` (0-based)."""
        return self.base * self.factor ** attempt


@dataclass(frozen=True)
class DegradedModePolicy:
    """How the harness degrades when no safe repair exists.

    Attributes
    ----------
    alpha_factor:
        Effective-utilization scale applied to every admission
        controller ledger while degraded (e.g. 0.5 admits against half
        the verified slot counts).  Uncertified reroutes are only
        tolerable under a conservative load ceiling.
    backoff:
        Retry policy for re-admissions rejected during the transition.
    repair_latency:
        Simulated seconds between a failure and its repair taking
        effect (detection + recomputation time); re-admissions happen
        at ``failure_time + repair_latency``.
    """

    alpha_factor: float = 0.5
    backoff: BackoffPolicy = BackoffPolicy()
    repair_latency: float = 0.0

    def __post_init__(self):
        if not (0.0 < self.alpha_factor <= 1.0):
            raise FaultInjectionError(
                f"alpha_factor must be in (0, 1], got {self.alpha_factor}"
            )
        if self.repair_latency < 0:
            raise FaultInjectionError("repair_latency must be >= 0")
