"""Chaos harness: replay fault schedules against a live co-simulation.

The harness drives three coupled machines through a shared timeline:

* a **run-time admission controller** (shared-ledger or sharded) fed the
  flow arrival/departure schedule;
* the **configuration-time repair machinery** — on a topology fault the
  established flows are partitioned into survivors and casualties, the
  incremental Section 5.2 repair re-routes the casualties online, and
  when no *verified* repair exists the harness falls back to a degraded
  admission mode (reduced effective ``alpha``, uncertified shortest-path
  reroutes, exponential backoff-and-retry for rejected re-admissions);
* the **packet simulator**, replaying every admitted flow's lifetime —
  including mid-run failure events inside the event loop, so packets in
  flight across a dying link are genuinely lost.

Everything observable lands in a deterministic
:class:`~repro.faults.report.TransitionReport`: same configuration +
flow schedule + fault schedule + seed => bit-identical report.
Wall-clock costs (repair compute time) go to :mod:`repro.obs` only.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import networkx as nx

from ..admission.base import AdmissionController
from ..admission.sharded import ShardedAdmissionController
from ..admission.utilization import UtilizationAdmissionController
from ..config.configured import ConfiguredNetwork
from ..config.repair import repair_routes
from ..errors import AdmissionError, FaultInjectionError
from ..obs import OBS
from ..routing.heuristic import HeuristicOptions
from ..routing.partition import route_uses_link, route_uses_router
from ..simulation.events import EventQueue
from ..simulation.simulator import PacketPattern, Simulator
from ..topology.network import Network
from ..traffic.generators import FlowEvent
from .degraded import DegradedModePolicy
from .report import FlowAccount, TransitionRecord, TransitionReport
from .schedule import FaultEvent, FaultSchedule

__all__ = ["ChaosHarness"]

Pair = Tuple[Hashable, Hashable]


@dataclass
class _Segment:
    """One contiguous interval a flow spent admitted on one route."""

    flow: object
    route: List[Hashable]
    start: float
    stop: Optional[float] = None


@dataclass
class _Retry:
    flow: object
    attempt: int
    record: TransitionRecord


class ChaosHarness:
    """Replays a fault schedule against a running admission system.

    Parameters
    ----------
    cfg:
        The verified configuration under test.
    controller:
        ``"utilization"`` (shared ledger; supports controller
        crash/restore via snapshots) or ``"sharded"`` (per-edge quotas,
        rebalanced off dead links; no snapshot support).
    policy:
        Degraded-mode fallback knobs (alpha scale, backoff, repair
        latency).
    options:
        Heuristic options for the online safe re-selection.
    batch_admission:
        Route every admission through
        :meth:`~repro.admission.base.AdmissionController.admit_batch`
        (as single-flow batches) instead of
        :meth:`~repro.admission.base.AdmissionController.admit`.
        Decisions are identical by contract; the switch exists so the
        chaos suite exercises the vectorized path under faults.
    ladder:
        Optional pre-certified :class:`~repro.control.AlphaLadder`; a
        fresh :class:`~repro.control.AlphaGovernor` over it is stepped
        on every arrival (headroom-driven — the harness has no service
        queue), and its rung composes with the fault fallback as
        ``min(governor factor, degraded factor)``.
    governor_config:
        Detector knobs for the governor (with ``ladder``).
    preemption:
        Optional :class:`~repro.control.PreemptionPolicy`; rejected
        arrivals whose priority is preemption-eligible then evict
        established lower-priority flows (outcome ``"preempted"``)
        through the ordinary release path.
    """

    def __init__(
        self,
        cfg: ConfiguredNetwork,
        *,
        controller: str = "utilization",
        policy: DegradedModePolicy = DegradedModePolicy(),
        options: HeuristicOptions = HeuristicOptions(),
        batch_admission: bool = False,
        ladder=None,
        governor_config=None,
        preemption=None,
    ):
        if controller not in ("utilization", "sharded"):
            raise FaultInjectionError(
                f"unknown controller kind {controller!r}"
            )
        self.cfg = cfg
        self.controller_kind = controller
        self.policy = policy
        self.options = options
        self.batch_admission = bool(batch_admission)
        self.ladder = ladder
        self.governor_config = governor_config
        self.preemption = preemption
        self.governor = None
        self.preemptor = None

    def _admit(self, flow):
        """One admission through the configured (batch or scalar) path."""
        if self.batch_admission:
            return self.controller.admit_batch([flow])[0]
        return self.controller.admit(flow)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #

    def run(
        self,
        schedule: Sequence[FlowEvent],
        faults: FaultSchedule,
        *,
        horizon: Optional[float] = None,
        simulate_packets: bool = True,
        packet_size: Optional[float] = None,
        pattern: str = "periodic",
        seed: int = 0,
    ) -> TransitionReport:
        """Drive the full co-simulation and return the transition report.

        ``horizon`` defaults to the later of the last flow event and the
        last fault.  The packet phase replays every admitted interval
        (`pattern` sources of ``packet_size`` bits, default one maximal
        class burst) with the topology faults injected into the running
        event loop.
        """
        if not schedule:
            raise FaultInjectionError("empty flow schedule")
        needs_snapshot = any(
            e.kind in ("controller_crash", "controller_restore")
            for e in faults
        )
        if needs_snapshot and self.controller_kind == "sharded":
            raise FaultInjectionError(
                "controller crash/restore faults require the "
                "'utilization' controller (sharded has no snapshots)"
            )
        if horizon is None:
            horizon = max(
                max(e.time for e in schedule), faults.horizon
            )

        self._reset(needs_snapshot)
        report = TransitionReport(
            alpha=float(
                next(iter(self.cfg.alphas.values()))
            ),
            controller=self.controller_kind,
            horizon=float(horizon),
            seed=int(seed),
        )
        self._report = report

        obs_span = (
            OBS.span(
                "faults.run",
                controller=self.controller_kind,
                flow_events=len(schedule),
                fault_events=len(faults),
            )
            if OBS.enabled
            else None
        )
        if obs_span is not None:
            obs_span.__enter__()
        try:
            queue = EventQueue()
            for fault in faults:
                queue.push(fault.time, "fault", fault)
            for event in schedule:
                queue.push(event.time, "flow", event)

            while queue:
                time, _, kind, payload = queue.pop()
                if kind == "flow":
                    self._on_flow(time, payload)
                elif kind == "fault":
                    self._on_fault(time, payload, queue)
                elif kind == "reroute":
                    self._on_reroute(time, payload, queue)
                elif kind == "retry":
                    self._on_retry(time, payload, queue)

            self._close_open_segments(horizon)
            report.flows = self._accounts
            if simulate_packets:
                self._simulate(
                    horizon, faults, packet_size, pattern, seed
                )
                report.simulated = True
        finally:
            if obs_span is not None:
                obs_span.__exit__(None, None, None)
        return report

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #

    def _reset(self, needs_snapshot: bool) -> None:
        self.controller = self._make_controller()
        if self.ladder is not None:
            from ..control.governor import AlphaGovernor, GovernorConfig

            self.governor = AlphaGovernor(
                self.ladder,
                self.governor_config or GovernorConfig(),
            )
        if self.preemption is not None:
            from ..control.preempt import Preemptor

            self.preemptor = Preemptor(
                self.controller, self.preemption
            )
        self._routes: Dict[Pair, List[Hashable]] = {
            pair: list(path) for pair, path in self.cfg.routes.items()
        }
        self._failed_links: set = set()
        self._failed_routers: set = set()
        self._degraded = False
        self._controller_up = True
        self._needs_snapshot = needs_snapshot
        self._last_snapshot: Optional[dict] = None
        self._pending_departures: List[Hashable] = []
        self._accounts: Dict[Hashable, FlowAccount] = {}
        self._open: Dict[Hashable, _Segment] = {}
        self._segments: List[_Segment] = []
        self._pending_retries: Dict[Hashable, TransitionRecord] = {}
        self._crash_record: Optional[TransitionRecord] = None

    def _make_controller(self) -> AdmissionController:
        if self.controller_kind == "sharded":
            return ShardedAdmissionController(
                self.cfg.graph,
                self.cfg.registry,
                self.cfg.alphas,
                self.cfg.routes,
            )
        return UtilizationAdmissionController(
            self.cfg.graph,
            self.cfg.registry,
            self.cfg.alphas,
            self.cfg.routes,
        )

    def _snapshot(self) -> None:
        if self._needs_snapshot and self._controller_up:
            self._last_snapshot = self.controller.snapshot()  # type: ignore[attr-defined]

    def _apply_routes(self, routes: Dict[Pair, List[Hashable]]) -> None:
        if isinstance(self.controller, ShardedAdmissionController):
            self.controller.rebalance(routes)
        else:
            self.controller.update_routes(routes)
        self._routes.update(routes)

    def _count(self, name: str, **labels: str) -> None:
        if OBS.enabled:
            OBS.registry.counter(name, **labels).inc()

    # ------------------------------------------------------------------ #
    # overload control plane (optional governor + preemption)
    # ------------------------------------------------------------------ #

    def _apply_factor(self) -> None:
        """Compose the fault fallback and the governor rung.

        The ledger sees ``min(degraded factor, governor factor)`` —
        both sources only shrink the *effective* view, so the
        composition is at least as conservative as either alone and
        never touches the verified ceiling.
        """
        factor = 1.0
        if self._degraded:
            factor = min(factor, self.policy.alpha_factor)
        if self.governor is not None and not self.governor.at_top:
            factor = min(factor, self.governor.factor)
        if factor < 1.0:
            self.controller.enter_degraded_mode(factor)
        else:
            self.controller.exit_degraded_mode()

    def _headroom(self) -> float:
        """Free fraction of the verified (not effective) capacity."""
        ledger = getattr(self.controller, "ledger", None)
        if ledger is None:
            return 1.0
        total = used = 0
        for cls in self.cfg.registry.realtime_classes():
            total += int(ledger.verified_slots(cls.name).sum())
            used += int(ledger.used_view(cls.name).sum())
        if total <= 0:
            return 1.0
        return max(0.0, (total - used) / total)

    def _governor_step(self) -> None:
        """One headroom-driven governor observation per arrival.

        The harness has no service queue, so the queue-delay term of
        the sample is pinned to zero and the detector runs on slot
        headroom alone — deterministic in the flow schedule.
        """
        if self.governor is None or not self._controller_up:
            return
        from ..control.governor import GovernorSample

        moved = self.governor.observe(
            GovernorSample(queue_delay=0.0, headroom=self._headroom())
        )
        if moved is not None:
            self._report.governor_moves += 1
            self._apply_factor()

    def _try_preempt(self, flow, time: float) -> bool:
        """Admit a rejected arrival by evicting lower-priority flows."""
        if self.preemptor is None or not self._controller_up:
            return False
        outcome = self.preemptor.try_admit(flow)
        if not outcome.admitted:
            return False
        for victim_id in outcome.evicted:
            self._close_segment(victim_id, time)
            account = self._accounts.get(victim_id)
            if account is not None:
                account.outcome = "preempted"
                account.ended_at = time
                account.casualty = True
            self._count("repro_faults_flows_preempted_total")
        self._report.preempted_admits += 1
        return True

    # ------------------------------------------------------------------ #
    # segments / accounting
    # ------------------------------------------------------------------ #

    def _open_segment(
        self, flow, route: Sequence[Hashable], start: float
    ) -> None:
        segment = _Segment(
            flow=flow, route=list(route), start=float(start)
        )
        self._open[flow.flow_id] = segment
        self._segments.append(segment)

    def _close_segment(self, flow_id: Hashable, stop: float) -> None:
        segment = self._open.pop(flow_id, None)
        if segment is not None:
            segment.stop = float(stop)

    def _close_open_segments(self, horizon: float) -> None:
        for segment in list(self._open.values()):
            segment.stop = float(horizon)
        self._open.clear()

    # ------------------------------------------------------------------ #
    # flow events
    # ------------------------------------------------------------------ #

    def _on_flow(self, time: float, event: FlowEvent) -> None:
        flow = event.flow
        fid = flow.flow_id
        if event.kind == "arrival":
            account = FlowAccount(
                flow_id=fid,
                class_name=flow.class_name,
                pair=flow.pair,
            )
            self._accounts[fid] = account
            if not self._controller_up:
                account.outcome = "lost_outage"
                if self._crash_record is not None:
                    self._crash_record.shed.append(str(fid))
                self._count(
                    "repro_faults_flows_lost_total", reason="outage"
                )
                return
            try:
                decision = self._admit(flow)
            except AdmissionError:
                # No configured route for the pair: plain rejection.
                account.outcome = "rejected"
                return
            admitted = decision.admitted
            if not admitted and self._try_preempt(flow, time):
                admitted = True
            if admitted:
                account.outcome = "active"
                account.admitted_at = time
                self._open_segment(
                    flow, self.controller.committed_route(fid), time
                )
            else:
                account.outcome = "rejected"
            self._governor_step()
            self._snapshot()
        elif event.kind == "departure":
            account = self._accounts.get(fid)
            if account is None:
                return
            if fid in self._pending_retries:
                # Departed before any retry succeeded: finalize as shed.
                record = self._pending_retries.pop(fid)
                self._resolve_if_done(record, time)
            if self.controller.is_established(fid):
                if self._controller_up:
                    self.controller.release(fid)
                    self._snapshot()
                else:
                    self._pending_departures.append(fid)
                self._close_segment(fid, time)
                account.outcome = "completed"
                account.ended_at = time
            elif account.outcome == "active":
                # Established at crash time, departing during the outage.
                self._pending_departures.append(fid)
                self._close_segment(fid, time)
                account.outcome = "completed"
                account.ended_at = time

    # ------------------------------------------------------------------ #
    # fault events
    # ------------------------------------------------------------------ #

    def _on_fault(
        self, time: float, fault: FaultEvent, queue: EventQueue
    ) -> None:
        self._count("repro_faults_events_total", kind=fault.kind)
        if fault.kind == "link_down":
            self._on_link_down(time, fault, queue)
        elif fault.kind == "link_up":
            self._on_link_up(time, fault)
        elif fault.kind == "router_down":
            self._on_router_down(time, fault, queue)
        elif fault.kind == "controller_crash":
            self._on_crash(time, fault)
        elif fault.kind == "controller_restore":
            self._on_restore(time, fault)

    def _link_servers(self, u: Hashable, v: Hashable) -> List[int]:
        graph = self.cfg.graph
        return [
            int(graph.route_servers((u, v))[0]),
            int(graph.route_servers((v, u))[0]),
        ]

    def _degraded_network(self) -> Network:
        """The base topology minus every currently failed element."""
        base = self.cfg.network
        out = Network(f"{base.name}-degraded")
        for name in base.routers():
            if name in self._failed_routers:
                continue
            out.add_router(name, is_edge=base.router(name).is_edge)
        for link in base.directed_links():
            u, v = link.key
            if str(u) > str(v):
                continue  # one physical link per direction pair
            if frozenset((u, v)) in self._failed_links:
                continue
            if u in self._failed_routers or v in self._failed_routers:
                continue
            out.add_link(u, v, link.capacity)
        return out

    def _on_link_down(
        self, time: float, fault: FaultEvent, queue: EventQueue
    ) -> None:
        u, v = fault.link
        self._failed_links.add(frozenset((u, v)))
        self.controller.block_servers(self._link_servers(u, v))

        record = TransitionRecord(
            time=time, kind=fault.kind, target=fault.target
        )
        self._report.transitions.append(record)
        casualties = [
            flow
            for flow in self.controller.established_flows
            if route_uses_link(
                self.controller.committed_route(flow.flow_id), (u, v)
            )
        ]
        affected = [
            pair
            for pair, path in self._routes.items()
            if route_uses_link(path, (u, v))
        ]
        self._transition(time, record, casualties, affected, queue)

    def _on_router_down(
        self, time: float, fault: FaultEvent, queue: EventQueue
    ) -> None:
        router = fault.target
        self._failed_routers.add(router)
        dead: List[int] = []
        for neighbor in self.cfg.network.neighbors(router):
            self._failed_links.add(frozenset((router, neighbor)))
            dead.extend(self._link_servers(router, neighbor))
        self.controller.block_servers(sorted(set(dead)))

        record = TransitionRecord(
            time=time, kind=fault.kind, target=router
        )
        self._report.transitions.append(record)

        casualties = []
        for flow in self.controller.established_flows:
            route = self.controller.committed_route(flow.flow_id)
            if route_uses_router(route, router):
                casualties.append(flow)
        # Pairs terminating at the dead router are unrepairable: shed
        # those flows now; the rest go through the normal transition.
        repairable = []
        for flow in casualties:
            if router in flow.pair:
                self._shed(flow, time, record)
            else:
                repairable.append(flow)
        affected = [
            pair
            for pair, path in self._routes.items()
            if route_uses_router(path, router) and router not in pair
        ]
        self._transition(time, record, repairable, affected, queue)

    def _on_link_up(self, time: float, fault: FaultEvent) -> None:
        u, v = fault.link
        self._failed_links.discard(frozenset((u, v)))
        self.controller.unblock_servers(self._link_servers(u, v))
        record = TransitionRecord(
            time=time, kind=fault.kind, target=fault.target
        )
        record.time_to_resolve = 0.0
        self._report.transitions.append(record)
        if not self._failed_links and not self._failed_routers:
            # Fully healed: the original certificate applies again
            # (any governor rung below top stays composed in).
            if self._degraded:
                self._degraded = False
                self._apply_factor()
                if OBS.enabled:
                    OBS.registry.gauge(
                        "repro_faults_degraded_mode"
                    ).set(0)
            self._apply_routes(
                {p: list(r) for p, r in self.cfg.routes.items()}
            )

    def _on_crash(self, time: float, fault: FaultEvent) -> None:
        self._controller_up = False
        record = TransitionRecord(
            time=time, kind=fault.kind, target=None
        )
        self._crash_record = record
        self._report.transitions.append(record)

    def _on_restore(self, time: float, fault: FaultEvent) -> None:
        fresh = self._make_controller()
        # Re-impose the current fault state on the rebuilt controller.
        dead: List[int] = []
        for key in self._failed_links:
            dead.extend(self._link_servers(*tuple(key)))
        if dead:
            fresh.block_servers(sorted(set(dead)))
        fresh.update_routes(self._routes)
        self.controller = fresh
        if self.preemptor is not None:
            self.preemptor.controller = fresh
        self._apply_factor()
        self._controller_up = True
        self._restore_from_snapshot(time)
        for fid in self._pending_departures:
            if self.controller.is_established(fid):
                self.controller.release(fid)
        self._pending_departures.clear()
        self._snapshot()
        if self._crash_record is not None:
            self._crash_record.time_to_resolve = (
                time - self._crash_record.time
            )
            self._crash_record = None
        record = TransitionRecord(
            time=time, kind=fault.kind, target=None
        )
        record.time_to_resolve = 0.0
        self._report.transitions.append(record)

    def _restore_from_snapshot(self, time: float) -> None:
        """Tolerant snapshot replay: flows that no longer fit are shed."""
        snapshot = self._last_snapshot
        if snapshot is None:
            return
        for item in snapshot["flows"]:
            fid = item["flow_id"]
            account = self._accounts.get(fid)
            if account is None or account.outcome != "active":
                continue  # departed (or already shed) during the outage
            segment = self._open.get(fid)
            if segment is None:
                continue
            pinned = replace(segment.flow, route=tuple(segment.route))
            decision = self._admit(pinned)
            if not decision.admitted:
                account.casualty = True
                account.outcome = "shed"
                account.ended_at = time
                self._close_segment(fid, time)
                self._count(
                    "repro_faults_flows_lost_total", reason="restore"
                )

    # ------------------------------------------------------------------ #
    # the transition: repair, reroute, degrade
    # ------------------------------------------------------------------ #

    def _transition(
        self,
        time: float,
        record: TransitionRecord,
        casualties: List[object],
        affected: List[Pair],
        queue: EventQueue,
    ) -> None:
        for flow in casualties:
            record.casualties.append(str(flow.flow_id))
            self._accounts[flow.flow_id].casualty = True
        if not affected and not casualties:
            record.time_to_resolve = 0.0
            return

        degraded_net = self._degraded_network()
        # Survivors: pairs untouched by this fault whose current route
        # still exists wholesale in the degraded topology (a pair whose
        # endpoint died is unservable and simply drops out of the
        # repaired configuration).
        skip = set(affected)
        survivors = {
            pair: path
            for pair, path in self._routes.items()
            if pair not in skip
            and all(
                degraded_net.has_link(u, v)
                for u, v in zip(path, path[1:])
            )
        }
        new_routes, success, failed_pair, reason = self._repair(
            degraded_net, affected, survivors
        )
        record.repair_attempted = True
        record.repair_success = success
        record.repair_reason = reason
        self._count(
            "repro_faults_repairs_total",
            outcome="success" if success else "fallback",
        )
        if not success:
            # Graceful degradation: uncertified shortest-path reroutes
            # under a conservatively reduced admission ceiling.
            record.degraded_mode_entered = True
            if not self._degraded:
                self._degraded = True
                self._apply_factor()
                if OBS.enabled:
                    OBS.registry.gauge(
                        "repro_faults_degraded_mode"
                    ).set(1)
            new_routes = self._fallback_routes(degraded_net, affected)

        queue.push(
            time + self.policy.repair_latency,
            "reroute",
            {
                "record": record,
                "routes": new_routes,
                "casualties": [f.flow_id for f in casualties],
            },
        )

    def _repair(
        self,
        degraded_net: Network,
        affected: List[Pair],
        survivors: Dict[Pair, List[Hashable]],
    ) -> Tuple[Dict[Pair, List[Hashable]], bool, Optional[Pair], str]:
        """Verified online repair; returns (routes, ok, failed_pair, why)."""
        if not degraded_net.is_connected():
            return {}, False, None, "degraded topology is disconnected"
        try:
            repaired, failed_pair, reason = repair_routes(
                self.cfg,
                degraded_net,
                affected,
                survivors,
                options=self.options,
            )
        except Exception as exc:  # repair machinery rejected the input
            return {}, False, None, str(exc)
        if repaired is None:
            return {}, False, failed_pair, reason
        return (
            {pair: list(repaired.routes[pair]) for pair in affected},
            True,
            None,
            "",
        )

    def _fallback_routes(
        self, degraded_net: Network, affected: List[Pair]
    ) -> Dict[Pair, List[Hashable]]:
        """Uncertified hop-shortest reroutes; unreachable pairs dropped."""
        graph = degraded_net.graph
        out: Dict[Pair, List[Hashable]] = {}
        for src, dst in affected:
            if src not in graph or dst not in graph:
                continue
            try:
                out[(src, dst)] = list(
                    nx.shortest_path(graph, src, dst)
                )
            except nx.NetworkXNoPath:
                continue
        return out

    def _on_reroute(
        self, time: float, payload: dict, queue: EventQueue
    ) -> None:
        record: TransitionRecord = payload["record"]
        new_routes: Dict[Pair, List[Hashable]] = payload["routes"]
        if new_routes:
            self._apply_routes(new_routes)
        for fid in payload["casualties"]:
            if not self.controller.is_established(fid):
                continue  # departed before the repair landed
            account = self._accounts[fid]
            pair = account.pair
            route = new_routes.get(pair)
            if route is None:
                flow = self._open[fid].flow
                self._shed(flow, time, record)
                continue
            decision = self.controller.reroute(fid, route)
            if decision.admitted:
                self._close_segment(fid, time)
                self._open_segment(self._segment_flow(fid), route, time)
                account.reroutes += 1
                record.rerouted.append(str(fid))
            else:
                # Released but not re-admitted: back off and retry.
                self._close_segment(fid, time)
                account.outcome = "shed"
                account.ended_at = time
                self._pending_retries[fid] = record
                flow = replace(
                    self._account_flow(fid), route=tuple(route)
                )
                queue.push(
                    time + self.policy.backoff.delay(0),
                    "retry",
                    _Retry(flow=flow, attempt=0, record=record),
                )
        self._snapshot()
        self._resolve_if_done(record, time)

    def _on_retry(
        self, time: float, retry: _Retry, queue: EventQueue
    ) -> None:
        flow = retry.flow
        fid = flow.flow_id
        record = retry.record
        if fid not in self._pending_retries:
            return  # departed (or resolved) meanwhile
        account = self._accounts[fid]
        account.retries += 1
        record.retries += 1
        self._count("repro_faults_retries_total")
        if self._controller_up:
            # Re-resolve in case a later repair moved the pair again.
            route = self._routes.get(account.pair)
            attempt_flow = (
                replace(flow, route=tuple(route)) if route else flow
            )
            decision = self._admit(attempt_flow)
            if decision.admitted:
                del self._pending_retries[fid]
                account.outcome = "active"
                self._open_segment(
                    attempt_flow,
                    self.controller.committed_route(fid),
                    time,
                )
                self._snapshot()
                self._resolve_if_done(record, time)
                return
        if retry.attempt + 1 >= self.policy.backoff.max_retries:
            del self._pending_retries[fid]
            record.shed.append(str(fid))
            self._count("repro_faults_flows_shed_total")
            self._resolve_if_done(record, time)
            return
        queue.push(
            time + self.policy.backoff.delay(retry.attempt + 1),
            "retry",
            _Retry(
                flow=flow, attempt=retry.attempt + 1, record=record
            ),
        )

    def _shed(self, flow, time: float, record: TransitionRecord) -> None:
        fid = flow.flow_id
        if self.controller.is_established(fid):
            self.controller.release(fid)
        self._close_segment(fid, time)
        account = self._accounts[fid]
        account.casualty = True
        account.outcome = "shed"
        account.ended_at = time
        record.shed.append(str(fid))
        self._count("repro_faults_flows_shed_total")

    def _segment_flow(self, fid: Hashable):
        for segment in reversed(self._segments):
            if segment.flow.flow_id == fid:
                return segment.flow
        raise FaultInjectionError(f"no segment for flow {fid!r}")

    def _account_flow(self, fid: Hashable):
        return self._segment_flow(fid)

    def _resolve_if_done(
        self, record: TransitionRecord, time: float
    ) -> None:
        pending = [
            fid
            for fid, rec in self._pending_retries.items()
            if rec is record
        ]
        if not pending and record.time_to_resolve is None:
            record.time_to_resolve = time - record.time

    # ------------------------------------------------------------------ #
    # packet phase
    # ------------------------------------------------------------------ #

    def _simulate(
        self,
        horizon: float,
        faults: FaultSchedule,
        packet_size: Optional[float],
        pattern: str,
        seed: int,
    ) -> None:
        report = self._report
        sim = Simulator(
            self.cfg.graph,
            self.cfg.registry,
            track_flow_delays=True,
        )
        attached = 0
        for index, segment in enumerate(self._segments):
            stop = segment.stop if segment.stop is not None else horizon
            stop = min(stop, horizon)
            if segment.start >= stop:
                continue
            cls = self.cfg.registry.get(segment.flow.class_name)
            size = packet_size if packet_size is not None else cls.burst
            sim.add_flow(
                segment.flow,
                segment.route,
                PacketPattern(
                    pattern,
                    packet_size=size,
                    seed=seed * 92_821 + index,
                ),
                start=segment.start,
                stop=stop,
            )
            attached += 1
        if attached == 0:
            return

        # Inject the topology faults into the running event loop.
        ups: Dict[frozenset, float] = {}
        for event in faults.topology_kinds():
            if event.kind == "link_up":
                ups[frozenset(event.link)] = event.time
        for event in faults.topology_kinds():
            if event.kind == "link_down":
                u, v = event.link
                sim.add_link_fault(
                    u, v, event.time, ups.get(frozenset((u, v)))
                )
            elif event.kind == "router_down":
                for neighbor in self.cfg.network.neighbors(
                    event.target
                ):
                    sim.add_link_fault(
                        event.target, neighbor, event.time, None
                    )

        packet_report = sim.run(horizon=horizon)
        report.packets_injected = packet_report.packets_injected
        report.packets_delivered = packet_report.packets_delivered
        report.packets_dropped = packet_report.packets_dropped

        recorder = packet_report.recorder
        for fid, account in self._accounts.items():
            cls = self.cfg.registry.get(account.class_name)
            if cls.is_realtime:
                misses = recorder.flow_deadline_misses(
                    fid, cls.deadline
                )
            else:
                misses = 0
            account.deadline_misses = misses
            account.packets_dropped = (
                packet_report.dropped_per_flow.get(fid, 0)
            )
            if account.casualty:
                report.casualty_deadline_misses += misses
            else:
                report.survivor_deadline_misses += misses
