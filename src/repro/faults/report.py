"""Transition reports: what happened while faults were injected.

Everything in the report is *deterministic*: simulated timestamps,
event/flow accounting, packet counts — never wall-clock readings (those
go to :mod:`repro.obs` instead).  The same configuration, flow schedule
and fault schedule therefore produce a bit-identical
:meth:`TransitionReport.to_json` across runs, which is the contract the
chaos tests pin.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

__all__ = ["FlowAccount", "TransitionRecord", "TransitionReport"]

#: Final dispositions a flow can end a chaos run in.  Every flow of the
#: input schedule lands in exactly one.
FLOW_OUTCOMES = (
    "rejected",      # initial admission refused (normal blocking)
    "completed",     # departed normally
    "active",        # still established at the end of the run
    "shed",          # dropped by a fault and never re-admitted
    "lost_outage",   # arrived while the controller was down
    "preempted",     # sacrificed for a higher-priority admission
)


@dataclass
class FlowAccount:
    """Per-flow ledger line of a chaos run."""

    flow_id: Hashable
    class_name: str
    pair: Tuple[Hashable, Hashable]
    outcome: str = "rejected"
    admitted_at: Optional[float] = None
    ended_at: Optional[float] = None
    reroutes: int = 0
    retries: int = 0
    packets_dropped: int = 0
    deadline_misses: int = 0
    #: True when the flow's route crossed a failed element at some point.
    casualty: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "flow_id": str(self.flow_id),
            "class_name": self.class_name,
            "pair": [str(self.pair[0]), str(self.pair[1])],
            "outcome": self.outcome,
            "admitted_at": self.admitted_at,
            "ended_at": self.ended_at,
            "reroutes": self.reroutes,
            "retries": self.retries,
            "packets_dropped": self.packets_dropped,
            "deadline_misses": self.deadline_misses,
            "casualty": self.casualty,
        }


@dataclass
class TransitionRecord:
    """One fault event's transition, as observed by the harness."""

    time: float
    kind: str
    target: object
    #: Established flows whose committed route crossed the failed element.
    casualties: List[str] = field(default_factory=list)
    #: Casualties re-admitted immediately (at repair time).
    rerouted: List[str] = field(default_factory=list)
    #: Casualties shed for good during this transition.
    shed: List[str] = field(default_factory=list)
    repair_attempted: bool = False
    repair_success: bool = False
    repair_reason: str = ""
    degraded_mode_entered: bool = False
    #: Simulated seconds from the fault until the last casualty was
    #: re-admitted or finally shed; None while retries are still pending
    #: at the end of the run.
    time_to_resolve: Optional[float] = None
    retries: int = 0

    def to_dict(self) -> Dict[str, object]:
        target: object = self.target
        if isinstance(target, tuple):
            target = [str(t) for t in target]
        elif target is not None:
            target = str(target)
        return {
            "time": self.time,
            "kind": self.kind,
            "target": target,
            "casualties": sorted(self.casualties),
            "rerouted": sorted(self.rerouted),
            "shed": sorted(self.shed),
            "repair_attempted": self.repair_attempted,
            "repair_success": self.repair_success,
            "repair_reason": self.repair_reason,
            "degraded_mode_entered": self.degraded_mode_entered,
            "time_to_resolve": self.time_to_resolve,
            "retries": self.retries,
        }


@dataclass
class TransitionReport:
    """Full deterministic record of a chaos run."""

    alpha: float
    controller: str
    horizon: float
    seed: int
    transitions: List[TransitionRecord] = field(default_factory=list)
    flows: Dict[Hashable, FlowAccount] = field(default_factory=dict)
    #: Per-class delivered-packet deadline misses, split by whether the
    #: flow was ever a casualty.
    survivor_deadline_misses: int = 0
    casualty_deadline_misses: int = 0
    packets_injected: int = 0
    packets_delivered: int = 0
    packets_dropped: int = 0
    simulated: bool = False
    #: Rung changes the alpha governor made during the run (0 without
    #: a governor).
    governor_moves: int = 0
    #: Arrivals admitted by evicting lower-priority flows (0 without
    #: preemption).
    preempted_admits: int = 0

    # ------------------------------------------------------------------ #

    @property
    def outcomes(self) -> Dict[str, int]:
        """Histogram of final flow outcomes."""
        out: Dict[str, int] = {}
        for account in self.flows.values():
            out[account.outcome] = out.get(account.outcome, 0) + 1
        return out

    @property
    def flows_shed(self) -> int:
        return self.outcomes.get("shed", 0)

    @property
    def flows_preempted(self) -> int:
        return self.outcomes.get("preempted", 0)

    @property
    def total_retries(self) -> int:
        return sum(a.retries for a in self.flows.values())

    def accounts_for(self, flow_ids) -> bool:
        """True iff every given flow id has a ledger line."""
        return all(fid in self.flows for fid in flow_ids)

    def survivors_held(self) -> bool:
        """Zero deadline misses and zero drops for never-casualty flows."""
        return self.survivor_deadline_misses == 0 and all(
            a.packets_dropped == 0
            for a in self.flows.values()
            if not a.casualty
        )

    # ------------------------------------------------------------------ #
    # serialization / rendering
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": "repro-transition-report/v1",
            "alpha": self.alpha,
            "controller": self.controller,
            "horizon": self.horizon,
            "seed": self.seed,
            "transitions": [t.to_dict() for t in self.transitions],
            "flows": [
                self.flows[fid].to_dict()
                for fid in sorted(self.flows, key=str)
            ],
            "outcomes": self.outcomes,
            "survivor_deadline_misses": self.survivor_deadline_misses,
            "casualty_deadline_misses": self.casualty_deadline_misses,
            "packets_injected": self.packets_injected,
            "packets_delivered": self.packets_delivered,
            "packets_dropped": self.packets_dropped,
            "simulated": self.simulated,
            "governor_moves": self.governor_moves,
            "preempted_admits": self.preempted_admits,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    def render(self) -> str:
        """Terse human-readable summary (CLI output)."""
        lines = [
            f"chaos run: alpha={self.alpha:g} controller={self.controller} "
            f"horizon={self.horizon:g}s seed={self.seed}",
            f"flows: {len(self.flows)} "
            + " ".join(
                f"{k}={v}" for k, v in sorted(self.outcomes.items())
            ),
            f"deadline misses: survivors={self.survivor_deadline_misses} "
            f"casualties={self.casualty_deadline_misses}"
            + (
                f"  packets: injected={self.packets_injected} "
                f"delivered={self.packets_delivered} "
                f"dropped={self.packets_dropped}"
                if self.simulated
                else "  (packet phase skipped)"
            ),
        ]
        for t in self.transitions:
            resolve = (
                "pending" if t.time_to_resolve is None
                else f"{t.time_to_resolve:.3f}s"
            )
            lines.append(
                f"  t={t.time:.3f} {t.kind} {t.target!r}: "
                f"{len(t.casualties)} casualties, "
                f"{len(t.rerouted)} rerouted, {len(t.shed)} shed, "
                f"{t.retries} retries, resolved in {resolve}"
                + (
                    ""
                    if not t.repair_attempted
                    else (
                        " [repair ok]"
                        if t.repair_success
                        else f" [repair failed: {t.repair_reason}; "
                        "degraded mode]"
                    )
                )
            )
        return "\n".join(lines)
