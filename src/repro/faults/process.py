"""Process-level chaos: kill and restart a live admission server.

:class:`ServiceProcess` manages a ``repro-ubac serve`` subprocess — the
real server binary, not an in-process stand-in — so the chaos harness
can extend the survivor guarantee across *process death*:

1. drive traffic at the server, remember which flows it established;
2. ``kill -9`` the process mid-run (no drain, no final snapshot — only
   the periodic crash-safe snapshot survives);
3. restart it on the same socket and snapshot path;
4. assert every flow whose admission the snapshot had captured is
   established again, on its original route, before any new traffic.

:func:`kill_restart_check` packages steps 2–4.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from typing import TYPE_CHECKING, Any, Dict, Hashable, List, Optional, Sequence

from ..errors import FaultInjectionError, ServiceError
from .degraded import BackoffPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..service.client import ServiceClient

__all__ = [
    "ClusterProcess",
    "ServiceProcess",
    "kill_restart_check",
    "kill_worker_restart_check",
]


class ServiceProcess:
    """A ``repro-ubac serve`` subprocess under chaos-harness control."""

    def __init__(
        self,
        *,
        socket_path: str,
        snapshot_path: Optional[str] = None,
        snapshot_interval: Optional[float] = None,
        topology: str = "nsfnet",
        alpha: float = 0.3,
        max_batch: int = 1024,
        max_delay_ms: float = 2.0,
        high_water: Optional[int] = None,
        low_water: Optional[int] = None,
        audit_path: Optional[str] = None,
        audit_fsync_every: Optional[int] = None,
        metrics_port: Optional[int] = None,
        extra_args: Sequence[str] = (),
        startup_timeout: float = 30.0,
    ):
        self.socket_path = socket_path
        self.snapshot_path = snapshot_path
        self.snapshot_interval = snapshot_interval
        self.topology = topology
        self.alpha = alpha
        self.max_batch = max_batch
        self.max_delay_ms = max_delay_ms
        self.high_water = high_water
        self.low_water = low_water
        self.audit_path = audit_path
        self.audit_fsync_every = audit_fsync_every
        self.metrics_port = metrics_port
        self.extra_args = list(extra_args)
        self.startup_timeout = startup_timeout
        self.proc: Optional[subprocess.Popen] = None
        self.launches = 0
        #: Server stdout+stderr land here (truncated per launch) — a
        #: file, not a pipe, so a chatty server can never fill a 64 KiB
        #: pipe buffer and block with nobody draining it.
        self.log_path = socket_path + ".serve.log"

    # ------------------------------------------------------------------ #

    def command(self) -> List[str]:
        argv = [
            sys.executable,
            "-m",
            "repro.experiments.cli",
            "serve",
            "--socket",
            self.socket_path,
            "--topology",
            self.topology,
            "--alpha",
            str(self.alpha),
            "--max-batch",
            str(self.max_batch),
            "--max-delay-ms",
            str(self.max_delay_ms),
        ]
        if self.snapshot_path is not None:
            argv += ["--snapshot", self.snapshot_path]
        if self.snapshot_interval is not None:
            argv += ["--snapshot-interval", str(self.snapshot_interval)]
        if self.high_water is not None:
            argv += ["--high-water", str(self.high_water)]
        if self.low_water is not None:
            argv += ["--low-water", str(self.low_water)]
        if self.audit_path is not None:
            argv += ["--audit", self.audit_path]
        if self.audit_fsync_every is not None:
            argv += ["--audit-fsync-every", str(self.audit_fsync_every)]
        if self.metrics_port is not None:
            argv += ["--metrics-port", str(self.metrics_port)]
        argv += self.extra_args
        return argv

    def start(self) -> None:
        """Launch the server and block until it answers ``health``."""
        if self.proc is not None and self.proc.poll() is None:
            raise FaultInjectionError("server process is already running")
        env = dict(os.environ)
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(
                os.path.abspath(__file__)
            ))),
        )
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        # The child inherits a duplicate of the log fd; the parent's
        # copy closes immediately so dead launches never leak fds.
        with open(self.log_path, "wb") as log_fh:
            self.proc = subprocess.Popen(
                self.command(),
                env=env,
                stdout=log_fh,
                stderr=subprocess.STDOUT,
            )
        self.launches += 1
        self.wait_healthy()

    def read_log(self) -> str:
        """Captured stdout+stderr of the current launch (best effort)."""
        try:
            with open(self.log_path, "rb") as fh:
                return fh.read().decode("utf-8", "replace")
        except OSError:
            return ""

    def wait_healthy(self) -> Dict[str, Any]:
        """Poll ``health`` until the server responds (or dies)."""
        deadline = time.monotonic() + self.startup_timeout
        last_error: Optional[Exception] = None
        while time.monotonic() < deadline:
            if self.proc is not None and self.proc.poll() is not None:
                raise FaultInjectionError(
                    f"server exited with {self.proc.returncode} during "
                    f"startup: {self.read_log()[-2000:]}"
                )
            try:
                with self.client(retries=0) as client:
                    return client.health()
            except (ServiceError, OSError) as exc:
                last_error = exc
                time.sleep(0.05)
        raise FaultInjectionError(
            f"server did not become healthy within "
            f"{self.startup_timeout:g} s: {last_error}"
        )

    def client(self, *, retries: int = 5) -> "ServiceClient":
        """A fresh synchronous client for this server's socket."""
        # Imported here, not at module top: repro.service.client itself
        # uses the faults backoff policy, and both packages must stay
        # importable first.
        from ..service.client import ServiceClient

        return ServiceClient(
            socket_path=self.socket_path,
            backoff=BackoffPolicy(base=0.05, max_retries=retries),
        )

    # ------------------------------------------------------------------ #
    # chaos actions
    # ------------------------------------------------------------------ #

    def kill(self) -> None:
        """``kill -9``: no drain, no final snapshot."""
        if self.proc is None or self.proc.poll() is not None:
            raise FaultInjectionError("no live server process to kill")
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=30)

    def terminate(self, timeout: float = 30.0) -> int:
        """SIGTERM — the graceful-drain path; returns the exit code."""
        if self.proc is None or self.proc.poll() is not None:
            raise FaultInjectionError("no live server process to stop")
        self.proc.terminate()
        return self.proc.wait(timeout=timeout)

    def restart(self) -> None:
        """Start a fresh process on the same socket and snapshot path."""
        self.start()

    def stop(self) -> None:
        """Best-effort teardown (idempotent; for test cleanup)."""
        if self.proc is not None and self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=10)

    def __enter__(self) -> "ServiceProcess":
        return self

    def __exit__(self, *_exc) -> None:
        self.stop()


class ClusterProcess(ServiceProcess):
    """A ``repro-ubac serve --workers N`` cluster under chaos control.

    The managed subprocess is the cluster *supervisor*; its shard
    workers are grandchildren whose pids surface through the
    aggregated ``stats`` op (``worker_pids``).  On top of the whole-
    cluster actions inherited from :class:`ServiceProcess` (kill,
    terminate, restart — all against the supervisor), this adds the
    cluster-specific chaos move: ``kill -9`` one *worker* and wait for
    the supervisor to restart it.
    """

    def __init__(self, *, workers: int, **kwargs: Any):
        extra = ["--workers", str(workers)] + list(
            kwargs.pop("extra_args", ())
        )
        super().__init__(extra_args=extra, **kwargs)
        self.workers = workers

    def worker_pids(self) -> List[Optional[int]]:
        """Live worker pids as reported by the supervisor."""
        with self.client() as client:
            stats = client.stats()
        pids = stats.get("worker_pids")
        if not isinstance(pids, list) or len(pids) != self.workers:
            raise FaultInjectionError(
                f"cluster stats did not report {self.workers} worker "
                f"pids (got {pids!r}) — is {self.socket_path} really "
                "a cluster front door?"
            )
        return pids

    def kill_worker(self, index: int) -> int:
        """``kill -9`` worker ``index``; returns the pid that died."""
        if self.proc is None or self.proc.poll() is not None:
            raise FaultInjectionError(
                "no live cluster supervisor to kill a worker of"
            )
        if not 0 <= index < self.workers:
            raise FaultInjectionError(
                f"worker index {index} out of range "
                f"[0, {self.workers})"
            )
        pid = self.worker_pids()[index]
        if pid is None:
            raise FaultInjectionError(
                f"worker {index} has no live process to kill"
            )
        os.kill(pid, signal.SIGKILL)
        return pid

    def wait_worker_restarted(
        self, index: int, old_pid: int, timeout: float = 30.0
    ) -> int:
        """Block until worker ``index`` runs under a fresh pid and
        answers through the front door; returns the new pid."""
        deadline = time.monotonic() + timeout
        last: Any = None
        while time.monotonic() < deadline:
            try:
                pids = self.worker_pids()
            except (ServiceError, FaultInjectionError, OSError) as exc:
                last = exc
                time.sleep(0.05)
                continue
            new_pid = pids[index]
            last = pids
            if new_pid is not None and new_pid != old_pid:
                return new_pid
            time.sleep(0.05)
        raise FaultInjectionError(
            f"worker {index} (killed pid {old_pid}) was not restarted "
            f"within {timeout:g} s (last: {last!r})"
        )


def kill_worker_restart_check(
    cluster: ClusterProcess,
    index: int,
    established_ids: Sequence[Hashable],
) -> Dict[str, Any]:
    """Kill -9 one worker and verify the per-shard survivor guarantee.

    After the supervisor restarts the dead worker, every flow in
    ``established_ids`` — cluster-wide, not just the dead shard — must
    still answer ``query`` as established through the front door (the
    dead worker's flows restored from its crash-safe shard snapshot on
    their original routes; the other shards untouched).  Returns a
    report dict; raises :class:`FaultInjectionError` on any loss.
    """
    old_pid = cluster.kill_worker(index)
    new_pid = cluster.wait_worker_restarted(index, old_pid)
    with cluster.client() as client:
        stats = client.stats()
        lost = [
            fid for fid in established_ids if not client.query(fid)
        ]
    report = {
        "worker": index,
        "old_pid": old_pid,
        "new_pid": new_pid,
        "expected": len(established_ids),
        "established": stats.get("established", 0),
        "worker_restarts": stats.get("worker_restarts", 0),
        "lost": lost,
    }
    if lost:
        raise FaultInjectionError(
            f"survivor guarantee violated across worker {index} death: "
            f"{len(lost)} of {len(established_ids)} established flows "
            f"were lost (e.g. {lost[:5]!r})"
        )
    return report


def kill_restart_check(
    process: ServiceProcess,
    established_ids: Sequence[Hashable],
) -> Dict[str, Any]:
    """Kill -9 the server, restart it, and verify the survivor guarantee.

    ``established_ids`` are the flows known established before the kill
    (from client-side decisions, or a ``stats``/``query`` sweep).  After
    the restart, every one of them must be established again — restored
    from the crash-safe snapshot on its pinned route — before the server
    takes new traffic.  Returns a small report dict; raises
    :class:`FaultInjectionError` when the guarantee is violated.
    """
    process.kill()
    process.restart()
    with process.client() as client:
        stats = client.stats()
        lost = [
            fid for fid in established_ids if not client.query(fid)
        ]
    report = {
        "expected": len(established_ids),
        "restored": stats.get("restored", 0),
        "established": stats.get("established", 0),
        "lost": lost,
    }
    if lost:
        raise FaultInjectionError(
            f"survivor guarantee violated across process death: "
            f"{len(lost)} of {len(established_ids)} established flows "
            f"were lost (e.g. {lost[:5]!r})"
        )
    return report
