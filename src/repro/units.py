"""Unit helpers.

The library's canonical units are **bits** for traffic volume, **bits per
second** for rates and capacities, and **seconds** for time.  These helpers
exist so scenario code can say ``rate=kbps(32)`` instead of ``rate=32_000.0``
and stay readable.

All helpers return plain ``float`` values; they are conversion functions, not
unit-carrying types, which keeps the numeric kernels free of wrapper
overhead (see the HPC guides: keep hot paths on plain ndarrays/floats).
"""

from __future__ import annotations

__all__ = [
    "bits",
    "kilobits",
    "megabits",
    "bytes_",
    "bps",
    "kbps",
    "mbps",
    "gbps",
    "seconds",
    "milliseconds",
    "microseconds",
    "as_milliseconds",
    "as_mbps",
]


def bits(value: float) -> float:
    """Identity helper for symmetry: *value* bits."""
    return float(value)


def kilobits(value: float) -> float:
    """*value* kilobits, in bits."""
    return float(value) * 1e3


def megabits(value: float) -> float:
    """*value* megabits, in bits."""
    return float(value) * 1e6


def bytes_(value: float) -> float:
    """*value* bytes, in bits."""
    return float(value) * 8.0


def bps(value: float) -> float:
    """Identity helper: *value* bits per second."""
    return float(value)


def kbps(value: float) -> float:
    """*value* kilobits per second, in bits per second."""
    return float(value) * 1e3


def mbps(value: float) -> float:
    """*value* megabits per second, in bits per second."""
    return float(value) * 1e6


def gbps(value: float) -> float:
    """*value* gigabits per second, in bits per second."""
    return float(value) * 1e9


def seconds(value: float) -> float:
    """Identity helper: *value* seconds."""
    return float(value)


def milliseconds(value: float) -> float:
    """*value* milliseconds, in seconds."""
    return float(value) * 1e-3


def microseconds(value: float) -> float:
    """*value* microseconds, in seconds."""
    return float(value) * 1e-6


def as_milliseconds(value_seconds: float) -> float:
    """Convert seconds to milliseconds (for reporting)."""
    return float(value_seconds) * 1e3


def as_mbps(value_bps: float) -> float:
    """Convert bits per second to megabits per second (for reporting)."""
    return float(value_bps) * 1e-6
