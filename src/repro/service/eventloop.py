"""Event-loop policy selection for the service processes.

`uvloop <https://github.com/MagicStack/uvloop>`_ is a drop-in libuv
event loop that roughly halves the per-request asyncio overhead of the
server's read loop.  It is an **opt-in** (``serve --uvloop``) and a
soft dependency: this module degrades to the stdlib loop with a warning
when uvloop is not importable, so nothing in the package ever hard-
requires it — the same gating pattern as numba in
:mod:`repro.admission.kernels` and z3 in :mod:`repro.verify`.
"""

from __future__ import annotations

import logging

__all__ = ["HAVE_UVLOOP", "install_uvloop", "loop_label"]

logger = logging.getLogger("repro.service")

try:  # soft dependency: pure opt-in accelerator
    import uvloop  # type: ignore[import-not-found]

    HAVE_UVLOOP = True
except ImportError:  # pragma: no cover - exercised where uvloop exists
    uvloop = None  # type: ignore[assignment]
    HAVE_UVLOOP = False

_installed = False


def install_uvloop() -> bool:
    """Install the uvloop event-loop policy if available.

    Returns True when uvloop is active after the call.  Without uvloop
    this logs one warning and leaves the stdlib policy untouched —
    callers never need to branch.  Must run before the event loop is
    created (i.e. before ``asyncio.run``).
    """
    global _installed
    if not HAVE_UVLOOP:
        logger.warning(
            "uvloop requested but not importable; "
            "staying on the stdlib asyncio event loop"
        )
        return False
    if not _installed:
        uvloop.install()
        _installed = True
    return True


def loop_label() -> str:
    """``"uvloop"`` or ``"asyncio"`` — for stats/bench provenance."""
    return "uvloop" if _installed else "asyncio"
