"""Front-door router of the multi-worker admission cluster.

One asyncio process accepts client connections on the cluster's public
socket and dispatches every admission op to the worker that owns the
flow, keeping the ``repro-admission-rpc/v1`` wire protocol byte-for-byte
unchanged for clients:

* **consistent-hash dispatch** — :class:`HashRing` maps flow ids to
  workers with :func:`hashlib.blake2b` (never Python's per-process
  salted ``hash()``), so the assignment is a pure function of the
  worker count: every router process, every restart, and every client
  that wants to bypass the front door computes the same owner.  Admit,
  release and query of one flow therefore always land on the worker
  that committed it — release/query routing falls out of the hash, no
  lookup table needed;
* **order-preserving forwarding** — the per-client read loop submits to
  the owning :class:`WorkerLink`'s outbox *synchronously*, before
  reading the next frame, mirroring the single server's coalescer
  submission; one connection's ops for one flow reach the worker in
  exactly the order they were sent;
* **batch splitting** — a ``batch`` frame is split per owner (slot
  positions preserved) and re-merged into one response; a sub-op too
  malformed to route is forwarded to worker 0, whose validation answer
  is bit-identical to any other worker's (malformed ops never touch
  state);
* **aggregation** — ``stats``/``health`` fan out to every worker and
  come back as one cluster view (summed counters, worst status,
  ``per_worker`` breakdown incl. pids), which also feeds the
  ``/metrics`` endpoint; the router-only ``cluster`` op advertises the
  worker sockets and ring parameters so a multi-connection load
  generator can connect to workers directly.

A dead worker fails its in-flight requests with ``unavailable`` (the
supervisor restarts it and the link reconnects); requests for flows
hashed to live workers are untouched — the paper's per-link, no-shared-
state admission test is what makes this partition-tolerant.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import logging
import time
from typing import (
    Any,
    Awaitable,
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..errors import ProtocolError, ServiceError
from ..obs import OBS, to_prometheus_text
from . import protocol
from .server import _Conn

__all__ = ["HashRing", "WorkerLink", "ClusterRouter"]

logger = logging.getLogger("repro.service")

#: Ring salt: part of the advertised parameters, never derived from
#: process state, so every participant builds the identical ring.
DEFAULT_RING_SALT = "repro-cluster"
DEFAULT_VIRTUAL_NODES = 64


def _hash64(key: str) -> int:
    """Stable 64-bit hash (blake2b) — identical across processes."""
    return int.from_bytes(
        hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(),
        "big",
    )


class HashRing:
    """Consistent hashing of flow ids onto worker indices.

    A pure function of ``(workers, virtual_nodes, salt)``: rebuilding
    the ring after any restart yields the same assignment, and growing
    the cluster from ``n`` to ``n+1`` workers remaps only ``~1/(n+1)``
    of the id space (the consistent-hashing property the tests bound).
    """

    def __init__(
        self,
        workers: int,
        *,
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
        salt: str = DEFAULT_RING_SALT,
    ):
        if workers < 1:
            raise ServiceError(f"need at least one worker, got {workers}")
        if virtual_nodes < 1:
            raise ServiceError(
                f"need at least one virtual node, got {virtual_nodes}"
            )
        self.workers = int(workers)
        self.virtual_nodes = int(virtual_nodes)
        self.salt = str(salt)
        points: List[Tuple[int, int]] = []
        for w in range(workers):
            for v in range(virtual_nodes):
                points.append((_hash64(f"{salt}/{w}/{v}"), w))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [w for _, w in points]

    def worker_of(self, flow_id: Hashable) -> int:
        """Index of the worker owning a flow id."""
        # Type-tagged so the str "1" and the int 1 (both legal wire
        # flow ids) hash independently.
        tag = "s" if isinstance(flow_id, str) else "i"
        h = _hash64(f"{self.salt}#{tag}:{flow_id}")
        i = bisect.bisect_right(self._hashes, h) % len(self._hashes)
        return self._owners[i]

    def params(self) -> Dict[str, Any]:
        """Wire-advertised ring parameters (the ``cluster`` op)."""
        return {
            "workers": self.workers,
            "virtual_nodes": self.virtual_nodes,
            "salt": self.salt,
        }


class WorkerLink:
    """One persistent router→worker connection.

    Requests enter through :meth:`call` — a **synchronous** enqueue
    onto an ordered outbox, so the caller controls ordering — and are
    written by a single writer task with router-local request ids; a
    reader task matches responses back to futures.  When the worker
    dies, every sent-but-unanswered request resolves to an
    ``unavailable`` error frame and the link reconnects with backoff
    until the supervisor has the worker back; ops still queued in the
    outbox (never written) survive the reconnect, so no caller waits
    forever and no op is silently dropped.
    """

    def __init__(
        self,
        index: int,
        socket_path: str,
        *,
        max_pending: int = 16384,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
        reconnect_delay: float = 0.1,
        link_protocol: str = "v2",
    ):
        self.index = int(index)
        self.socket_path = str(socket_path)
        self.max_pending = int(max_pending)
        self.max_frame_bytes = int(max_frame_bytes)
        self.reconnect_delay = float(reconnect_delay)
        #: Propose the v2 binary framing on every (re)connect; a worker
        #: that answers ``unknown_op`` keeps the link on v1 — the hop
        #: downgrades transparently, exactly like the public client.
        self.want_v2 = link_protocol in (
            "v2",
            protocol.PROTOCOL_SCHEMA_V2,
        )
        self.proto = 1
        self.connects = 0
        self.failed_calls = 0
        self._outbox: "asyncio.Queue[Tuple[int, Dict[str, Any], asyncio.Future]]" = (
            asyncio.Queue()
        )
        self._pending: Dict[int, "asyncio.Future"] = {}
        self._next_id = 0
        self._closed = False
        self._up = False
        self._task: Optional["asyncio.Task"] = None

    # -------------------------------------------------------------- #

    def start(self) -> None:
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name=f"repro-cluster-link-{self.index}"
            )

    async def stop(self) -> None:
        self._closed = True
        if self._task is not None:
            self._task.cancel()
            await asyncio.gather(self._task, return_exceptions=True)
            self._task = None
        self._fail_all("link closed")

    @property
    def up(self) -> bool:
        """Connected right now (best effort; may lag a crash)."""
        return self._up

    @property
    def pending(self) -> int:
        return len(self._pending) + self._outbox.qsize()

    def call(
        self, op: str, body: Dict[str, Any]
    ) -> "asyncio.Future":
        """Enqueue one op; the future resolves to the worker's raw
        response frame (or an ``unavailable`` error frame on link
        death).  Synchronous, so enqueue order == caller order.
        """
        if self._closed:
            raise ProtocolError(
                protocol.UNAVAILABLE,
                f"worker {self.index} link is closed",
            )
        if self.pending >= self.max_pending:
            raise ProtocolError(
                protocol.OVERLOADED,
                f"worker {self.index} link has {self.pending} ops in "
                f"flight (limit {self.max_pending}); retry later",
            )
        self._next_id += 1
        rid = self._next_id
        frame: Dict[str, Any] = {"id": rid, "op": op}
        frame.update(body)
        future = asyncio.get_running_loop().create_future()
        self._outbox.put_nowait((rid, frame, future))
        return future

    # -------------------------------------------------------------- #

    def _unavailable(self, why: str) -> Dict[str, Any]:
        return protocol.error_response(
            None,
            protocol.UNAVAILABLE,
            f"worker {self.index} is unavailable ({why}); "
            "the supervisor is restarting it",
        )

    def _fail_all(self, why: str) -> None:
        """Fail every sent-but-unanswered request (outbox items were
        never written; they stay queued for the next connection)."""
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                self.failed_calls += 1
                future.set_result(self._unavailable(why))

    async def _run(self) -> None:
        try:
            while not self._closed:
                try:
                    reader, writer = await asyncio.open_unix_connection(
                        self.socket_path, limit=self.max_frame_bytes
                    )
                except (ConnectionError, OSError):
                    await asyncio.sleep(self.reconnect_delay)
                    continue
                try:
                    self.proto = await self._handshake(reader, writer)
                except (ConnectionError, OSError, ProtocolError):
                    try:
                        if not writer.is_closing():
                            writer.close()
                    except Exception:
                        pass
                    await asyncio.sleep(self.reconnect_delay)
                    continue
                self.connects += 1
                self._up = True
                write_task = asyncio.get_running_loop().create_task(
                    self._write_loop(writer)
                )
                try:
                    await self._read_loop(reader)
                finally:
                    self._up = False
                    write_task.cancel()
                    await asyncio.gather(
                        write_task, return_exceptions=True
                    )
                    try:
                        if not writer.is_closing():
                            writer.close()
                    except Exception:
                        pass
                    self._fail_all("connection lost")
                logger.warning(
                    "lost worker %d on %s; reconnecting",
                    self.index,
                    self.socket_path,
                )
                await asyncio.sleep(self.reconnect_delay)
        except asyncio.CancelledError:
            pass

    async def _handshake(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> int:
        """Negotiate the hop's framing; the settled generation (1/2).

        Runs before the write loop starts, so the hello never
        interleaves with forwarded requests and no router-local request
        id is consumed (the hello rides the reserved id 0).
        """
        if not self.want_v2:
            return 1
        writer.write(
            protocol.encode_frame(
                {
                    "id": protocol.HELLO_ID,
                    "op": protocol.HELLO_OP,
                    "protocol": protocol.PROTOCOL_SCHEMA_V2,
                }
            )
        )
        await writer.drain()
        line = await reader.readline()
        if not line:
            raise ConnectionError(
                "worker closed during protocol negotiation"
            )
        frame = protocol.decode_frame(
            line, max_bytes=self.max_frame_bytes
        )
        if (
            frame.get("ok")
            and frame.get("result", {}).get("protocol")
            == protocol.PROTOCOL_SCHEMA_V2
        ):
            return 2
        return 1  # pre-v2 worker (unknown_op): stay on v1

    def _encode(self, frame: Dict[str, Any]) -> bytes:
        """Wire bytes for one outbound frame on the settled protocol.

        On a v2 hop, a plain ``batch`` frame (no trace or other extras)
        is re-packed into a binary bulk frame — the worker's fast path —
        with the v1-shaped results restored by :meth:`_read_loop`, so
        the router's merge logic never sees the difference.
        """
        if self.proto != 2:
            return protocol.encode_frame(frame)
        if frame.get("op") == "batch" and frame.keys() == {
            "id",
            "op",
            "ops",
        }:
            packed = protocol.pack_batch_ops(frame["ops"])
            if packed is not None:
                return protocol.encode_bulk_request(frame["id"], packed)
        return protocol.encode_frame_v2(frame)

    async def _write_loop(self, writer: asyncio.StreamWriter) -> None:
        while True:
            rid, frame, future = await self._outbox.get()
            if future.done():  # caller vanished; skip the write
                continue
            self._pending[rid] = future
            try:
                writer.write(self._encode(frame))
                await writer.drain()
            except (ConnectionError, RuntimeError, OSError):
                # The read loop observes the same death and fails every
                # pending future (including this one).
                return

    async def _read_loop(self, reader: asyncio.StreamReader) -> None:
        if self.proto == 2:
            await self._read_loop_v2(reader)
        else:
            await self._read_loop_v1(reader)

    async def _read_loop_v1(self, reader: asyncio.StreamReader) -> None:
        while True:
            try:
                line = await reader.readline()
            except (
                ConnectionError,
                OSError,
                asyncio.LimitOverrunError,
                ValueError,
            ):
                return
            if not line:
                return
            if not line.strip():
                continue
            try:
                frame = protocol.decode_frame(
                    line, max_bytes=self.max_frame_bytes
                )
            except ProtocolError:
                continue  # unparseable worker frame; drop it
            self._settle(frame)

    async def _read_loop_v2(self, reader: asyncio.StreamReader) -> None:
        while True:
            try:
                header = await reader.readexactly(
                    protocol.FRAME_HEADER_BYTES
                )
                length = int.from_bytes(header, "big")
                if length == 0 or length > self.max_frame_bytes:
                    return  # framing lost; reconnect resynchronizes
                payload = await reader.readexactly(length)
            except (
                asyncio.IncompleteReadError,
                ConnectionError,
                OSError,
            ):
                return
            try:
                tag, obj = protocol.decode_payload_v2(
                    payload, max_bytes=self.max_frame_bytes
                )
                if tag == protocol.TAG_RESULTS:
                    rid, slots = protocol.parse_bulk_request(obj)
                    frame = {
                        "id": rid,
                        "ok": True,
                        "result": {
                            "results": protocol.unpack_bulk_results(
                                slots
                            )
                        },
                    }
                elif tag == protocol.TAG_JSON:
                    frame = obj
                else:
                    continue  # a bulk request from a worker; drop it
            except ProtocolError:
                continue  # unparseable worker frame; drop it
            self._settle(frame)

    def _settle(self, frame: Dict[str, Any]) -> None:
        future = self._pending.pop(frame.get("id"), None)
        if future is not None and not future.done():
            future.set_result(frame)


#: Worker-stat counter keys summed into the cluster view.
_SUMMED_KEYS = (
    "requests",
    "admitted",
    "rejected",
    "released",
    "errors",
    "shed",
    "connections",
    "snapshots",
    "restored",
    "batches",
    "coalesced_ops",
    "established",
    "queue_depth",
)

_STATUS_RANK = {"ok": 0, "degraded": 1, "overloaded": 2, "draining": 3}


class ClusterRouter:
    """Route one front-door socket onto N admission workers."""

    def __init__(
        self,
        worker_sockets: Sequence[str],
        *,
        ring: Optional[HashRing] = None,
        max_frame_bytes: int = protocol.MAX_FRAME_BYTES,
        link_max_pending: int = 16384,
        on_snapshot: Optional[
            Callable[[], Awaitable[Dict[str, Any]]]
        ] = None,
        extra_stats: Optional[Callable[[], Dict[str, Any]]] = None,
        negotiate_v2: bool = True,
        link_protocol: str = "v2",
    ):
        if not worker_sockets:
            raise ServiceError("cluster needs at least one worker")
        self.worker_sockets = [str(p) for p in worker_sockets]
        self.ring = ring or HashRing(len(worker_sockets))
        if self.ring.workers != len(worker_sockets):
            raise ServiceError(
                f"ring is sized for {self.ring.workers} workers, "
                f"got {len(worker_sockets)} sockets"
            )
        self.max_frame_bytes = int(max_frame_bytes)
        #: Async callback (the supervisor's merge) behind the
        #: ``snapshot`` op; None answers ``unavailable``.
        self.on_snapshot = on_snapshot
        #: Extra synchronous key/values merged into cluster stats
        #: (the supervisor contributes restart counts).
        self.extra_stats = extra_stats
        #: Accept client ``hello`` upgrades to v2 framing; ``False``
        #: mimics a pre-v2 front door (hello earns ``unknown_op``).
        self.negotiate_v2 = bool(negotiate_v2)
        self.links = [
            WorkerLink(
                i,
                path,
                max_pending=link_max_pending,
                max_frame_bytes=max_frame_bytes,
                link_protocol=link_protocol,
            )
            for i, path in enumerate(self.worker_sockets)
        ]
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.StreamWriter] = set()
        self._request_tasks: Set["asyncio.Task"] = set()
        self._draining = False
        self._started_at = time.time()
        self._where = "?"
        self.counts: Dict[str, int] = {
            "requests": 0,
            "errors": 0,
            "connections": 0,
            "forwarded": 0,
        }

    # -------------------------------------------------------------- #
    # lifecycle
    # -------------------------------------------------------------- #

    async def start_unix(self, path: str) -> None:
        """Connect every worker link and open the front door."""
        import os

        for link in self.links:
            link.start()
        if os.path.exists(path):
            os.unlink(path)
        self._server = await asyncio.start_unix_server(
            self._on_client, path=path, limit=self.max_frame_bytes
        )
        self._where = path
        self._started_at = time.time()
        logger.info(
            "cluster front door on %s routing to %d workers",
            path,
            len(self.links),
        )

    async def stop(self) -> None:
        """Stop accepting, answer in-flight requests, close links."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        while self._request_tasks:
            await asyncio.gather(
                *tuple(self._request_tasks), return_exceptions=True
            )
        for link in self.links:
            await link.stop()
        for writer in tuple(self._connections):
            try:
                if not writer.is_closing():
                    writer.close()
            except Exception:
                pass
        self._connections.clear()

    # -------------------------------------------------------------- #
    # client connections (mirrors AdmissionService._on_connection)
    # -------------------------------------------------------------- #

    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        self.counts["connections"] += 1
        conn = _Conn(reader, writer)
        try:
            upgraded = await self._read_v1(conn)
            if upgraded:
                await self._read_v2(conn)
        finally:
            self._connections.discard(writer)
            try:
                if not writer.is_closing():
                    writer.close()
            except Exception:
                pass

    async def _read_v1(self, conn: _Conn) -> bool:
        """Newline-delimited JSON loop; True when upgraded to v2."""
        reader = conn.reader
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                await self._send(
                    conn,
                    protocol.error_response(
                        None,
                        protocol.FRAME_TOO_LARGE,
                        f"frame exceeds "
                        f"{self.max_frame_bytes} bytes",
                    ),
                )
                return False
            except (ConnectionError, OSError):
                return False
            if not line or not line.endswith(b"\n"):
                return False
            if not line.strip():
                continue
            hello = (
                self._peek_hello(line) if self.negotiate_v2 else None
            )
            if hello is not None:
                response, upgrade = self._negotiate(conn, hello)
                await self._send(conn, response)
                if upgrade:
                    conn.proto = 2
                    return True
                continue
            self._handle_line(conn, line)

    def _peek_hello(self, line: bytes) -> Optional[protocol.Request]:
        """The parsed request iff this line is a ``hello``."""
        if b'"hello"' not in line:
            return None
        try:
            request = protocol.parse_request(
                line, max_bytes=self.max_frame_bytes
            )
        except ProtocolError:
            return None  # _handle_line produces the canonical error
        return request if request.op == protocol.HELLO_OP else None

    def _negotiate(
        self, conn: _Conn, request: protocol.Request
    ) -> Tuple[Dict[str, Any], bool]:
        """Answer one ``hello``: ``(response, upgrade_to_v2)``.

        Same rules as the single server: negotiation only before the
        first ordinary request, same refusal messages — a client cannot
        tell a front door from a worker.
        """
        self.counts["requests"] += 1
        rid = request.id
        if conn.saw_request:
            self.counts["errors"] += 1
            return (
                protocol.error_response(
                    rid,
                    protocol.BAD_REQUEST,
                    "hello must be the first request on a connection",
                ),
                False,
            )
        conn.saw_request = True
        proposed = request.body.get("protocol")
        if proposed == protocol.PROTOCOL_SCHEMA_V2:
            return (
                protocol.ok_response(
                    rid, {"protocol": protocol.PROTOCOL_SCHEMA_V2}
                ),
                True,
            )
        if proposed == protocol.PROTOCOL_SCHEMA:
            return (
                protocol.ok_response(
                    rid, {"protocol": protocol.PROTOCOL_SCHEMA}
                ),
                False,
            )
        self.counts["errors"] += 1
        return (
            protocol.error_response(
                rid,
                protocol.BAD_REQUEST,
                f"unsupported protocol {proposed!r} (supported: "
                f"{protocol.PROTOCOL_SCHEMA}, "
                f"{protocol.PROTOCOL_SCHEMA_V2})",
            ),
            False,
        )

    async def _read_v2(self, conn: _Conn) -> None:
        """Binary frame loop (negotiated); mirrors the single server's
        fault rules — keep the connection while the length prefix can
        be trusted, close when it cannot."""
        reader = conn.reader
        max_bytes = self.max_frame_bytes
        while True:
            try:
                header = await reader.readexactly(
                    protocol.FRAME_HEADER_BYTES
                )
            except (
                asyncio.IncompleteReadError,
                ConnectionError,
                OSError,
            ):
                return
            length = int.from_bytes(header, "big")
            if length == 0:
                self.counts["errors"] += 1
                await self._send(
                    conn,
                    protocol.error_response(
                        None,
                        protocol.BAD_REQUEST,
                        "zero-length v2 frame",
                    ),
                )
                return
            if length > max_bytes:
                self.counts["errors"] += 1
                if header[0:1] == b"{":
                    response = protocol.error_response(
                        None,
                        protocol.BAD_REQUEST,
                        "v1 text frame on a v2-negotiated connection",
                    )
                else:
                    response = protocol.error_response(
                        None,
                        protocol.FRAME_TOO_LARGE,
                        f"v2 frame of {length} bytes exceeds the "
                        f"{max_bytes}-byte limit",
                    )
                await self._send(conn, response)
                return
            try:
                payload = await reader.readexactly(length)
            except (
                asyncio.IncompleteReadError,
                ConnectionError,
                OSError,
            ):
                return
            self._handle_v2_payload(conn, payload)

    def _handle_v2_payload(self, conn: _Conn, payload: bytes) -> None:
        self.counts["requests"] += 1
        try:
            tag, obj = protocol.decode_payload_v2(
                payload, max_bytes=self.max_frame_bytes
            )
        except ProtocolError as exc:
            self.counts["errors"] += 1
            self._spawn(
                self._send(
                    conn,
                    protocol.error_response(None, exc.code, str(exc)),
                )
            )
            return
        if tag == protocol.TAG_BULK:
            self._begin_bulk(conn, obj)
            return
        if tag == protocol.TAG_RESULTS:
            self.counts["errors"] += 1
            self._spawn(
                self._send(
                    conn,
                    protocol.error_response(
                        None,
                        protocol.BAD_REQUEST,
                        "unexpected bulk-response frame from a client",
                    ),
                )
            )
            return
        rid = obj.get("id")
        if not isinstance(rid, (str, int)) or isinstance(rid, bool):
            self.counts["errors"] += 1
            self._spawn(
                self._send(
                    conn,
                    protocol.error_response(
                        None,
                        protocol.BAD_REQUEST,
                        "request id must be a string or integer",
                    ),
                )
            )
            return
        op = obj.get("op")
        if not isinstance(op, str):
            self.counts["errors"] += 1
            self._spawn(
                self._send(
                    conn,
                    protocol.error_response(
                        None,
                        protocol.BAD_REQUEST,
                        "request op must be a string",
                    ),
                )
            )
            return
        body = {k: v for k, v in obj.items() if k not in ("id", "op")}
        self._dispatch_request(
            conn, protocol.Request(id=rid, op=op, body=body)
        )

    def _handle_line(self, conn: _Conn, line: bytes) -> None:
        """Parse one frame and forward it — synchronously, so per-flow
        op order survives the extra hop."""
        self.counts["requests"] += 1
        try:
            request = protocol.parse_request(
                line, max_bytes=self.max_frame_bytes
            )
        except ProtocolError as exc:
            self.counts["errors"] += 1
            self._spawn(
                self._send(
                    conn,
                    protocol.error_response(None, exc.code, str(exc)),
                )
            )
            return
        self._dispatch_request(conn, request)

    def _dispatch_request(
        self, conn: _Conn, request: protocol.Request
    ) -> None:
        conn.saw_request = True
        if request.op == protocol.HELLO_OP and self.negotiate_v2:
            self.counts["errors"] += 1
            self._spawn(
                self._send(
                    conn,
                    protocol.error_response(
                        request.id,
                        protocol.BAD_REQUEST,
                        "hello must be the first request on a "
                        "connection",
                    ),
                )
            )
            return
        if request.id in conn.inflight:
            self.counts["errors"] += 1
            self._spawn(
                self._send(
                    conn,
                    protocol.error_response(
                        request.id,
                        protocol.DUPLICATE_ID,
                        f"request id {request.id!r} is already in "
                        "flight on this connection",
                    ),
                )
            )
            return
        conn.inflight.add(request.id)
        try:
            pending = self._begin(request)
        except ProtocolError as exc:
            conn.inflight.discard(request.id)
            self.counts["errors"] += 1
            self._spawn(
                self._send(
                    conn,
                    protocol.error_response(
                        request.id, exc.code, str(exc)
                    ),
                )
            )
            return
        except Exception as exc:  # defensive: keep the read loop alive
            conn.inflight.discard(request.id)
            self.counts["errors"] += 1
            logger.exception(
                "internal error routing request %r", request.id
            )
            self._spawn(
                self._send(
                    conn,
                    protocol.error_response(
                        request.id,
                        protocol.INTERNAL,
                        f"{type(exc).__name__}: {exc}",
                    ),
                )
            )
            return
        self._spawn(self._finish(request, pending, conn))

    # -------------------------------------------------------------- #
    # v2 packed bulk: split per owner, merge, re-pack
    # -------------------------------------------------------------- #

    def _begin_bulk(self, conn: _Conn, obj: Any) -> None:
        """Split one packed bulk frame per owning worker.

        Each sub-op is validated with the same codec functions the
        single server uses (identical error strings), converted to its
        v1-shaped op, and forwarded in the owner's carrier ``batch``
        call — the worker link re-packs it to binary when its hop
        negotiated v2.  Slots that fail validation are decided here,
        exactly like the single server decides them before the
        coalescer.
        """
        rid, subops = protocol.parse_bulk_request(obj)
        if rid in conn.inflight:
            self.counts["errors"] += 1
            self._spawn(
                self._send(
                    conn,
                    protocol.error_response(
                        rid,
                        protocol.DUPLICATE_ID,
                        f"request id {rid!r} is already in "
                        "flight on this connection",
                    ),
                )
            )
            return
        conn.inflight.add(rid)
        if self._draining:
            self._spawn(
                self._finish(
                    protocol.Request(id=rid, op="bulk", body={}),
                    protocol.error_response(
                        rid, protocol.UNAVAILABLE, "cluster is draining"
                    ),
                    conn,
                )
            )
            return
        fixed: Dict[int, Dict[str, Any]] = {}
        per_worker: Dict[int, List[Any]] = {}
        slot_map: Dict[int, List[int]] = {}
        for slot, sub in enumerate(subops):
            try:
                op_dict, fid = self._bulk_sub_to_op(sub)
            except ProtocolError as exc:
                fixed[slot] = {
                    "ok": False,
                    "error": {"code": exc.code, "message": str(exc)},
                }
                continue
            w = self.ring.worker_of(fid)
            per_worker.setdefault(w, []).append(op_dict)
            slot_map.setdefault(w, []).append(slot)
        futures: Dict[int, Any] = {}
        for w, sub_ops in per_worker.items():
            try:
                futures[w] = self.links[w].call(
                    "batch", {"ops": sub_ops}
                )
            except ProtocolError as exc:
                futures[w] = protocol.error_response(
                    None, exc.code, str(exc)
                )
        self.counts["forwarded"] += len(per_worker)
        self._spawn(
            self._finish_bulk(
                conn, rid, (futures, slot_map, len(subops)), fixed
            )
        )

    def _bulk_sub_to_op(
        self, sub: Any
    ) -> Tuple[Dict[str, Any], Any]:
        """``(v1_op_dict, flow_id)`` of one valid packed sub-op.

        Raises :class:`ProtocolError` with the single server's exact
        message for any malformed entry, so fuzzing the front door and
        a worker yields the same bytes.
        """
        if not isinstance(sub, list) or not sub:
            raise ProtocolError(
                protocol.BAD_REQUEST,
                "bulk sub-op must be a non-empty array",
            )
        kind = sub[0]
        if kind == protocol.BULK_ADMIT:
            protocol.bulk_admit_flow(sub)  # shared validation
            flow: Dict[str, Any] = {
                "id": sub[1],
                "cls": sub[2],
                "src": sub[3],
                "dst": sub[4],
            }
            if sub[5] is not None:
                flow["route"] = list(sub[5])
            return {"op": "admit", "flow": flow}, sub[1]
        if kind == protocol.BULK_RELEASE:
            if len(sub) != 2:
                raise ProtocolError(
                    protocol.BAD_REQUEST,
                    "packed release sub-op must have 2 fields",
                )
            fid = protocol.validate_flow_id(sub[1])
            return {"op": "release", "flow_id": fid}, fid
        raise ProtocolError(
            protocol.BAD_REQUEST,
            f"bulk sub-op kind must be {protocol.BULK_ADMIT} (admit) "
            f"or {protocol.BULK_RELEASE} (release), got {kind!r}",
        )

    async def _finish_bulk(
        self,
        conn: _Conn,
        rid: protocol.RequestId,
        plan: Tuple[Any, ...],
        fixed: Dict[int, Dict[str, Any]],
    ) -> None:
        try:
            response = await self._finish_batch(rid, plan)
            results = response["result"]["results"]
            for slot, r in fixed.items():
                results[slot] = r
            if any(not r.get("ok", False) for r in results):
                self.counts["errors"] += 1
            await self._send_raw(
                conn,
                protocol.encode_bulk_response(
                    rid, protocol.pack_bulk_results(results)
                ),
            )
        finally:
            conn.inflight.discard(rid)

    def _spawn(self, coro: Awaitable[None]) -> None:
        task = asyncio.get_running_loop().create_task(coro)
        self._request_tasks.add(task)
        task.add_done_callback(self._request_tasks.discard)

    # -------------------------------------------------------------- #
    # dispatch
    # -------------------------------------------------------------- #

    def _owner(self, flow_id: Any) -> WorkerLink:
        fid = protocol.validate_flow_id(flow_id)
        return self.links[self.ring.worker_of(fid)]

    def _begin(self, request: protocol.Request) -> Any:
        """Synchronous routing of one request.

        Returns a ready response dict, a single link future, a
        ``(futures, slot_map, n_slots, inline)`` batch plan, or a
        coroutine for the fan-out ops.
        """
        op = request.op
        body = request.body
        rid = request.id
        if op == "health":
            return self._cluster_health(rid)
        if op == "stats":
            return self._cluster_stats_response(rid)
        if op == "cluster":
            return protocol.ok_response(
                rid,
                {
                    "schema": protocol.PROTOCOL_SCHEMA,
                    "sockets": list(self.worker_sockets),
                    **self.ring.params(),
                },
            )
        if op == "snapshot":
            if self.on_snapshot is None:
                return protocol.error_response(
                    rid,
                    protocol.UNAVAILABLE,
                    "no snapshot path configured",
                )
            return self._cluster_snapshot(rid)
        if op not in ("admit", "release", "batch", "query"):
            return protocol.error_response(
                rid,
                protocol.UNKNOWN_OP,
                f"unknown op {op!r} (expected one of "
                f"{', '.join(protocol.OPS)} or cluster)",
            )
        if self._draining:
            return protocol.error_response(
                rid, protocol.UNAVAILABLE, "cluster is draining"
            )
        if op == "admit":
            flow = body.get("flow")
            if not isinstance(flow, dict) or "id" not in flow:
                # Let a worker produce the canonical validation error.
                return self._forward(self.links[0], op, body)
            return self._forward(
                self._owner(flow["id"]), op, body
            )
        if op in ("release", "query"):
            if "flow_id" not in body:
                raise ProtocolError(
                    protocol.BAD_REQUEST, f"{op} needs flow_id"
                )
            return self._forward(
                self._owner(body["flow_id"]), op, body
            )
        # batch: split per owning worker, slot positions preserved.
        ops = body.get("ops")
        if not isinstance(ops, list):
            raise ProtocolError(
                protocol.BAD_REQUEST, "batch needs an ops list"
            )
        extra = {k: v for k, v in body.items() if k != "ops"}
        per_worker: Dict[int, List[Any]] = {}
        slot_map: Dict[int, List[int]] = {}
        for slot, sub in enumerate(ops):
            w = self._route_sub_op(sub)
            per_worker.setdefault(w, []).append(sub)
            slot_map.setdefault(w, []).append(slot)
        futures: Dict[int, Any] = {}
        for w, sub_ops in per_worker.items():
            try:
                futures[w] = self.links[w].call(
                    "batch", {"ops": sub_ops, **extra}
                )
            except ProtocolError as exc:
                futures[w] = protocol.error_response(
                    None, exc.code, str(exc)
                )
        self.counts["forwarded"] += len(per_worker)
        return (futures, slot_map, len(ops))

    def _route_sub_op(self, sub: Any) -> int:
        """Owning worker of one batch sub-op.

        Unroutable (malformed) sub-ops go to worker 0: they never touch
        admission state, so any worker's validation answer is identical
        — and this keeps the error messages bit-compatible with the
        single-server path.
        """
        if not isinstance(sub, dict):
            return 0
        sub_op = sub.get("op")
        try:
            if sub_op == "admit":
                flow = sub.get("flow")
                if isinstance(flow, dict) and "id" in flow:
                    return self.ring.worker_of(
                        protocol.validate_flow_id(flow["id"])
                    )
            elif sub_op == "release" and "flow_id" in sub:
                return self.ring.worker_of(
                    protocol.validate_flow_id(sub["flow_id"])
                )
        except ProtocolError:
            return 0
        return 0

    def _forward(
        self, link: WorkerLink, op: str, body: Dict[str, Any]
    ) -> "asyncio.Future":
        self.counts["forwarded"] += 1
        return link.call(op, body)

    async def _finish(
        self,
        request: protocol.Request,
        pending: Any,
        conn: _Conn,
    ) -> None:
        try:
            if isinstance(pending, dict):
                response = pending
            elif asyncio.isfuture(pending):
                frame = await pending
                response = self._restamp(frame, request.id)
            elif isinstance(pending, tuple):
                response = await self._finish_batch(request.id, pending)
            else:  # coroutine (fan-out op)
                response = await pending
            if not response.get("ok", False):
                self.counts["errors"] += 1
            await self._send(conn, response)
        finally:
            conn.inflight.discard(request.id)

    @staticmethod
    def _restamp(
        frame: Dict[str, Any], rid: protocol.RequestId
    ) -> Dict[str, Any]:
        """Swap the router-local id back for the client's."""
        out = dict(frame)
        out["id"] = rid
        return out

    async def _finish_batch(
        self, rid: protocol.RequestId, plan: Tuple[Any, ...]
    ) -> Dict[str, Any]:
        futures, slot_map, n_slots = plan
        results: List[Any] = [None] * n_slots
        for w, pending in futures.items():
            slots = slot_map[w]
            if isinstance(pending, dict):  # link refused the call
                err = pending.get("error", {})
                fill = {"ok": False, "error": err}
                for slot in slots:
                    results[slot] = dict(fill)
                continue
            frame = await pending
            if frame.get("ok"):
                sub_results = frame.get("result", {}).get("results", [])
                if len(sub_results) != len(slots):
                    fill = {
                        "ok": False,
                        "error": {
                            "code": protocol.INTERNAL,
                            "message": (
                                f"worker {w} returned "
                                f"{len(sub_results)} results for "
                                f"{len(slots)} ops"
                            ),
                        },
                    }
                    for slot in slots:
                        results[slot] = dict(fill)
                else:
                    for slot, sub in zip(slots, sub_results):
                        results[slot] = sub
            else:
                err = frame.get("error", {})
                fill = {"ok": False, "error": err}
                for slot in slots:
                    results[slot] = dict(fill)
        return protocol.ok_response(rid, {"results": results})

    async def _send(
        self, conn: _Conn, response: Dict[str, Any]
    ) -> None:
        if conn.proto == 2:
            frame = protocol.encode_frame_v2(response)
        else:
            frame = protocol.encode_frame(response)
        await self._send_raw(conn, frame)

    async def _send_raw(self, conn: _Conn, frame: bytes) -> None:
        try:
            async with conn.lock:
                conn.writer.write(frame)
                await conn.writer.drain()
        except (ConnectionError, RuntimeError, OSError):
            logger.debug("dropped a response to a closed connection")

    # -------------------------------------------------------------- #
    # fan-out ops and aggregation
    # -------------------------------------------------------------- #

    async def _fan_out(self, op: str) -> List[Optional[Dict[str, Any]]]:
        """One ``op`` per worker; ``None`` for unreachable workers."""
        futures: List[Any] = []
        for link in self.links:
            try:
                futures.append(link.call(op, {}))
            except ProtocolError:
                futures.append(None)
        out: List[Optional[Dict[str, Any]]] = []
        for future in futures:
            if future is None:
                out.append(None)
                continue
            frame = await future
            out.append(frame.get("result") if frame.get("ok") else None)
        return out

    def worker_stats(self) -> "Awaitable[List[Optional[Dict[str, Any]]]]":
        """Per-worker ``stats`` results (None for dead workers)."""
        return self._fan_out("stats")

    async def cluster_stats(self) -> Dict[str, Any]:
        """Aggregated cluster stats with a ``per_worker`` breakdown."""
        per_worker = await self.worker_stats()
        out: Dict[str, Any] = {
            "schema": protocol.PROTOCOL_SCHEMA,
            "controller": "cluster",
            "workers": len(self.links),
            "workers_up": sum(1 for s in per_worker if s is not None),
            "status": self._cluster_status(per_worker),
            "draining": self._draining,
            "uptime_seconds": max(0.0, time.time() - self._started_at),
        }
        for key in _SUMMED_KEYS:
            out[key] = sum(
                int(s.get(key, 0))
                for s in per_worker
                if s is not None and s.get(key) is not None
            )
        out["shedding"] = any(
            bool(s.get("shedding")) for s in per_worker if s is not None
        )
        out["largest_batch"] = max(
            (int(s.get("largest_batch", 0)) for s in per_worker if s),
            default=0,
        )
        out["mean_batch_fill"] = (
            out["coalesced_ops"] / out["batches"]
            if out["batches"]
            else 0.0
        )
        out["slo"] = {
            "breaching": any(
                bool(s.get("slo", {}).get("breaching"))
                for s in per_worker
                if s is not None
            ),
        }
        out["router"] = {
            **{k: v for k, v in self.counts.items()},
            "links": [
                {
                    "worker": link.index,
                    "socket": link.socket_path,
                    "up": link.up,
                    "connects": link.connects,
                    "failed_calls": link.failed_calls,
                    "pending": link.pending,
                }
                for link in self.links
            ],
        }
        if self.extra_stats is not None:
            out.update(self.extra_stats())
        out["per_worker"] = [
            (
                {"worker_index": i, **s}
                if s is not None
                else {"worker_index": i, "up": False}
            )
            for i, s in enumerate(per_worker)
        ]
        return out

    def _cluster_status(
        self, per_worker: Sequence[Optional[Dict[str, Any]]]
    ) -> str:
        if self._draining:
            return "draining"
        worst = "ok"
        for s in per_worker:
            status = "degraded" if s is None else str(
                s.get("status", "ok")
            )
            if _STATUS_RANK.get(status, 1) > _STATUS_RANK.get(worst, 0):
                worst = status
        return worst

    async def _cluster_stats_response(
        self, rid: protocol.RequestId
    ) -> Dict[str, Any]:
        return protocol.ok_response(rid, await self.cluster_stats())

    async def _cluster_health(
        self, rid: protocol.RequestId
    ) -> Dict[str, Any]:
        return protocol.ok_response(rid, await self.cluster_health())

    async def cluster_health(self) -> Dict[str, Any]:
        per_worker = await self._fan_out("health")
        return {
            "status": self._cluster_status(per_worker),
            "schema": protocol.PROTOCOL_SCHEMA,
            "workers": len(self.links),
            "workers_up": sum(1 for s in per_worker if s is not None),
            "established": sum(
                int(s.get("established", 0))
                for s in per_worker
                if s is not None
            ),
            "queue_depth": sum(
                int(s.get("queue_depth", 0))
                for s in per_worker
                if s is not None
            ),
            "shedding": any(
                bool(s.get("shedding"))
                for s in per_worker
                if s is not None
            ),
            "draining": self._draining,
            "uptime_seconds": max(0.0, time.time() - self._started_at),
            "per_worker": [
                (
                    {"worker_index": i, **s}
                    if s is not None
                    else {"worker_index": i, "status": "down"}
                )
                for i, s in enumerate(per_worker)
            ],
        }

    async def _cluster_snapshot(
        self, rid: protocol.RequestId
    ) -> Dict[str, Any]:
        assert self.on_snapshot is not None
        try:
            result = await self.on_snapshot()
        except ServiceError as exc:
            return protocol.error_response(
                rid, protocol.INTERNAL, str(exc)
            )
        return protocol.ok_response(rid, result)

    # -------------------------------------------------------------- #
    # telemetry endpoint hooks (MetricsEndpoint-compatible, async)
    # -------------------------------------------------------------- #

    async def healthz(self) -> Tuple[int, Dict[str, Any]]:
        obj = await self.cluster_health()
        status = (
            503 if obj["status"] in ("draining", "overloaded") else 200
        )
        return status, obj

    async def stats(self) -> Dict[str, Any]:
        return await self.cluster_stats()

    async def scrape_text(self) -> str:
        """Prometheus exposition of the per-worker aggregation."""
        stats = await self.cluster_stats()
        lines = [
            "# TYPE repro_cluster_workers gauge",
            f"repro_cluster_workers {stats['workers']}",
            "# TYPE repro_cluster_workers_up gauge",
            f"repro_cluster_workers_up {stats['workers_up']}",
        ]
        for key in (
            "requests",
            "admitted",
            "rejected",
            "released",
            "shed",
            "established",
            "queue_depth",
        ):
            lines.append(f"# TYPE repro_cluster_{key} gauge")
            lines.append(f"repro_cluster_{key} {stats[key]}")
            for entry in stats["per_worker"]:
                value = entry.get(key)
                if value is None:
                    continue
                lines.append(
                    f'repro_cluster_worker_{key}'
                    f'{{worker="{entry["worker_index"]}"}} {value}'
                )
        lines.append("# TYPE repro_cluster_worker_up gauge")
        for entry, link in zip(stats["per_worker"], self.links):
            lines.append(
                f'repro_cluster_worker_up'
                f'{{worker="{entry["worker_index"]}"}} '
                f"{1 if link.up else 0}"
            )
        restarts = stats.get("worker_restarts")
        if restarts is not None:
            lines.append("# TYPE repro_cluster_worker_restarts gauge")
            lines.append(f"repro_cluster_worker_restarts {restarts}")
        text = "\n".join(lines) + "\n"
        if OBS.enabled:
            text += to_prometheus_text(OBS.registry)
        return text
