"""Minimal asyncio HTTP listener for live telemetry scrapes.

One tiny purpose-built server (no third-party web framework, matching
the repo's zero-dependency rule) exposing three read-only endpoints
next to the RPC socket:

* ``GET /metrics`` — the obs registry in Prometheus exposition format
  (``repro.obs.export.to_prometheus_text``), with the service's live
  gauges (queue depth, snapshot age, SLO burn rates) refreshed first;
* ``GET /healthz`` — JSON health: ``ok`` / ``degraded`` / ``overloaded``
  / ``draining`` with HTTP 200 for the servable states and 503 once the
  server sheds or drains, so load balancers can react without parsing;
* ``GET /stats`` — the ``stats`` op as JSON for humans with ``curl``.

Only GET is implemented; anything else earns a 405, unknown paths a
404.  Connections are one-shot (``Connection: close``) — scrapers poll
at second granularity, keep-alive would buy nothing.
"""

from __future__ import annotations

import asyncio
import inspect
import json
import logging
from typing import TYPE_CHECKING, Any, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .server import AdmissionService

__all__ = ["MetricsEndpoint"]

logger = logging.getLogger("repro.service")

_MAX_REQUEST_BYTES = 16384


class MetricsEndpoint:
    """Serve ``/metrics``, ``/healthz``, ``/stats`` for one service.

    The fronted object needs ``scrape_text()``, ``healthz()`` and
    ``stats()``; each may be synchronous (the single-process
    :class:`~repro.service.server.AdmissionService`) or a coroutine
    function (the cluster front door, whose aggregation awaits the
    worker links) — awaitable results are awaited transparently.
    """

    def __init__(
        self,
        service: "AdmissionService",
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self.host = host
        self._requested_port = int(port)
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> int:
        """Bind the listener; returns the bound port."""
        self._server = await asyncio.start_server(
            self._on_connection,
            host=self.host,
            port=self._requested_port,
            limit=_MAX_REQUEST_BYTES,
        )
        logger.info(
            "telemetry endpoint listening on http://%s:%d",
            self.host,
            self.port,
        )
        return self.port

    @property
    def port(self) -> int:
        assert self._server is not None and self._server.sockets
        return int(self._server.sockets[0].getsockname()[1])

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -------------------------------------------------------------- #

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1", "replace").split()
            # Drain headers; the request line is all we route on.
            while True:
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            if len(parts) < 2:
                status, ctype, body = 400, "text/plain", "bad request\n"
            elif parts[0] != "GET":
                status, ctype, body = (
                    405,
                    "text/plain",
                    "only GET is supported\n",
                )
            else:
                status, ctype, body = await self._route(parts[1])
            payload = body.encode("utf-8")
            head = (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                f"Content-Type: {ctype}; charset=utf-8\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
        except (ConnectionError, OSError, asyncio.LimitOverrunError):
            pass
        finally:
            try:
                if not writer.is_closing():
                    writer.close()
            except Exception:  # pragma: no cover - teardown races
                pass

    @staticmethod
    async def _call(method: Any) -> Any:
        result = method()
        if inspect.isawaitable(result):
            result = await result
        return result

    async def _route(self, path: str) -> Tuple[int, str, str]:
        path = path.split("?", 1)[0]
        if path == "/metrics":
            return (
                200,
                "text/plain; version=0.0.4",
                await self._call(self.service.scrape_text),
            )
        if path == "/healthz":
            status, obj = await self._call(self.service.healthz)
            return (
                status,
                "application/json",
                json.dumps(obj, sort_keys=True) + "\n",
            )
        if path == "/stats":
            stats = await self._call(self.service.stats)
            return (
                200,
                "application/json",
                json.dumps(stats, sort_keys=True) + "\n",
            )
        return (
            404,
            "text/plain",
            "unknown path (try /metrics, /healthz, /stats)\n",
        )


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    503: "Service Unavailable",
}
