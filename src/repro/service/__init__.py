"""repro.service — the admission controller as a network service.

An asyncio server (:class:`~repro.service.server.AdmissionService`)
fronts any admission controller over TCP or a Unix socket, speaking the
newline-delimited JSON protocol of :mod:`repro.service.protocol`
(``repro-admission-rpc/v1``).  Its core is the
:class:`~repro.service.coalescer.MicroBatchCoalescer`: requests arriving
within a small window are decided by one vectorized batch-kernel call —
with decisions **bit-identical to sequential submission** — so the
service inherits the batch engine's throughput while clients keep the
one-request-one-response API.

Around the core: bounded-queue backpressure with explicit load shedding
(``overloaded`` responses, hysteresis resume), graceful drain on
SIGTERM/SIGINT, and crash-safe periodic snapshots
(:mod:`repro.service.snapshots`) so a restarted server re-admits its
established flows on their original routes before accepting new
traffic.

For multi-core scale-out, :class:`~repro.service.cluster.ClusterSupervisor`
runs N worker processes — each a full :class:`AdmissionService` owning
shard ``i``/``N`` of the verified slot capacity
(:class:`~repro.admission.SlotShardController`) — behind one
:class:`~repro.service.router.ClusterRouter` front door that dispatches
flows by consistent hash.  The wire protocol is unchanged and the
per-worker crash-safe snapshots merge into a single cluster manifest
(:func:`~repro.service.snapshots.merge_cluster_snapshot`).

Client side, :class:`~repro.service.client.ServiceClient` (sync) and
:class:`~repro.service.client.AsyncServiceClient` (asyncio) pipeline
requests and retry sheds under a backoff policy;
:func:`~repro.service.replay.replay_trace` drives recorded workload
traces at a live server.  CLI entry points: ``repro-ubac serve`` and
``repro-ubac client``.
"""

from .audit import (
    AUDIT_SCHEMA,
    AuditLog,
    audit_to_trace_events,
    flow_set_digest,
    iter_audit,
    verify_audit,
)
from .client import AsyncServiceClient, ServiceClient, WireDecision
from .cluster import ClusterConfig, ClusterSupervisor, worker_serve_command
from .coalescer import MicroBatchCoalescer
from .http import MetricsEndpoint
from .protocol import JSON_BACKEND, MAX_FRAME_BYTES, OPS, PROTOCOL_SCHEMA
from .replay import (
    ServiceReplayResult,
    partition_events,
    replay_events,
    replay_events_concurrent,
    replay_trace,
)
from .router import ClusterRouter, HashRing
from .server import AdmissionService, ServiceConfig
from .snapshots import (
    SNAPSHOT_SCHEMA,
    SnapshotStore,
    merge_cluster_snapshot,
    service_snapshot,
    split_cluster_snapshot,
)

__all__ = [
    "PROTOCOL_SCHEMA",
    "SNAPSHOT_SCHEMA",
    "AUDIT_SCHEMA",
    "JSON_BACKEND",
    "MAX_FRAME_BYTES",
    "OPS",
    "AdmissionService",
    "ServiceConfig",
    "ClusterConfig",
    "ClusterRouter",
    "ClusterSupervisor",
    "HashRing",
    "worker_serve_command",
    "merge_cluster_snapshot",
    "split_cluster_snapshot",
    "MicroBatchCoalescer",
    "AsyncServiceClient",
    "ServiceClient",
    "WireDecision",
    "SnapshotStore",
    "service_snapshot",
    "AuditLog",
    "audit_to_trace_events",
    "flow_set_digest",
    "iter_audit",
    "verify_audit",
    "MetricsEndpoint",
    "ServiceReplayResult",
    "partition_events",
    "replay_events",
    "replay_events_concurrent",
    "replay_trace",
]
