"""repro.service — the admission controller as a network service.

An asyncio server (:class:`~repro.service.server.AdmissionService`)
fronts any admission controller over TCP or a Unix socket, speaking the
newline-delimited JSON protocol of :mod:`repro.service.protocol`
(``repro-admission-rpc/v1``).  Its core is the
:class:`~repro.service.coalescer.MicroBatchCoalescer`: requests arriving
within a small window are decided by one vectorized batch-kernel call —
with decisions **bit-identical to sequential submission** — so the
service inherits the batch engine's throughput while clients keep the
one-request-one-response API.

Around the core: bounded-queue backpressure with explicit load shedding
(``overloaded`` responses, hysteresis resume), graceful drain on
SIGTERM/SIGINT, and crash-safe periodic snapshots
(:mod:`repro.service.snapshots`) so a restarted server re-admits its
established flows on their original routes before accepting new
traffic.

Client side, :class:`~repro.service.client.ServiceClient` (sync) and
:class:`~repro.service.client.AsyncServiceClient` (asyncio) pipeline
requests and retry sheds under a backoff policy;
:func:`~repro.service.replay.replay_trace` drives recorded workload
traces at a live server.  CLI entry points: ``repro-ubac serve`` and
``repro-ubac client``.
"""

from .audit import (
    AUDIT_SCHEMA,
    AuditLog,
    audit_to_trace_events,
    flow_set_digest,
    iter_audit,
    verify_audit,
)
from .client import AsyncServiceClient, ServiceClient, WireDecision
from .coalescer import MicroBatchCoalescer
from .http import MetricsEndpoint
from .protocol import MAX_FRAME_BYTES, OPS, PROTOCOL_SCHEMA
from .replay import ServiceReplayResult, replay_events, replay_trace
from .server import AdmissionService, ServiceConfig
from .snapshots import SNAPSHOT_SCHEMA, SnapshotStore, service_snapshot

__all__ = [
    "PROTOCOL_SCHEMA",
    "SNAPSHOT_SCHEMA",
    "AUDIT_SCHEMA",
    "MAX_FRAME_BYTES",
    "OPS",
    "AdmissionService",
    "ServiceConfig",
    "MicroBatchCoalescer",
    "AsyncServiceClient",
    "ServiceClient",
    "WireDecision",
    "SnapshotStore",
    "service_snapshot",
    "AuditLog",
    "audit_to_trace_events",
    "flow_set_digest",
    "iter_audit",
    "verify_audit",
    "MetricsEndpoint",
    "ServiceReplayResult",
    "replay_events",
    "replay_trace",
]
