"""Wire protocol of the admission service (``repro-admission-rpc/v1``).

Newline-delimited JSON over a stream transport (TCP or a Unix socket):
one request object per line, one response object per line.  Frames are
canonically serialized — sorted keys, no whitespace — and UTF-8 encoded.

Requests carry a client-chosen ``id`` (string or integer, unique among
the connection's in-flight requests) and an ``op``::

    {"id":1,"op":"admit","flow":{"id":"f1","cls":"voice","src":"A","dst":"B"}}
    {"id":2,"op":"release","flow_id":"f1"}
    {"id":3,"op":"batch","ops":[{"op":"admit","flow":{...}}, ...]}
    {"id":4,"op":"query","flow_id":"f1"}
    {"id":5,"op":"stats"}
    {"id":6,"op":"health"}
    {"id":7,"op":"snapshot"}

Responses echo the request id and carry either a ``result`` object or a
structured ``error`` with a machine-readable ``code``::

    {"id":1,"ok":true,"result":{"admitted":true,"batch_size":64,"reason":""}}
    {"id":2,"ok":false,"error":{"code":"admission_error","message":"..."}}

A frame the server cannot attribute to a request (malformed JSON, or an
oversized line) is answered with ``"id": null``.  Error codes are the
:data:`ERROR_CODES` constants; everything else about a failure lives in
the human-readable ``message``.

Requests may additionally carry an optional ``trace`` object (W3C
traceparent-style ids, see :mod:`repro.obs.trace`)::

    {"id":1,"op":"admit","flow":{...},
     "trace":{"trace_id":"<32 hex>","parent_id":"<16 hex>"}}

The schema stays ``repro-admission-rpc/v1``: the field rides in the
request body like any other key, servers without tracing simply ignore
it, and a malformed ``trace`` never fails the request (it is dropped,
not rejected).  Tracing-aware servers open a per-request span parented
on ``parent_id`` so client and server telemetry join on the ids.

**Binary framing (v2).**  ``repro-admission-rpc/v2`` replaces newline
delimiting with length-prefixed binary frames, negotiated per
connection *before the first request id is assigned*::

    frame   := length:u32_be || payload          (length = len(payload))
    payload := tag:u8 || body

Tags (see :data:`TAG_JSON` / :data:`TAG_BULK` / :data:`TAG_RESULTS`):

``J`` (0x4A)
    JSON carrier: ``body`` is one canonical JSON object with exactly
    the v1 line shape (request or response, no trailing newline).
    Every v1 op travels unchanged inside carrier frames.
``B`` (0x42)
    Packed bulk request: ``body`` is canonical JSON
    ``[id, [subop, ...]]`` where ``subop`` is positional —
    ``[0, fid, cls, src, dst, route|null]`` for admit (an optional
    seventh field carries the flow priority),
    ``[1, fid]`` for release.  Decoded straight into flow specs and
    decided as one coalesced unit (the fast path).
``R`` (0x52)
    Packed bulk response: ``body`` is ``[id, [slot, ...]]`` with one
    slot per sub-op — ``[0, reason, batch_size]`` admitted,
    ``[1, reason, batch_size]`` rejected, ``[2]`` released,
    ``[3, code, message]`` error.

Negotiation: the client's first frame is a v1 ``hello`` line carrying
the reserved request id 0 (ordinary ids start at 1) and the proposed
schema; a v2-aware server answers ok and both sides switch to binary
frames immediately after that response line; an old server answers
``unknown_op`` and the connection transparently stays on v1.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Tuple, Union

from ..errors import ProtocolError
from ..traffic.flows import PRIORITIES, FlowSpec

try:  # pragma: no cover - exercised only where orjson is installed
    import orjson as _orjson
except ImportError:  # pragma: no cover
    _orjson = None  # type: ignore[assignment]

__all__ = [
    "JSON_BACKEND",
    "PROTOCOL_SCHEMA",
    "PROTOCOL_SCHEMA_V2",
    "HELLO_OP",
    "HELLO_ID",
    "FRAME_HEADER_BYTES",
    "TAG_JSON",
    "TAG_BULK",
    "TAG_RESULTS",
    "MAX_FRAME_BYTES",
    "OPS",
    "ERROR_CODES",
    "BAD_REQUEST",
    "UNKNOWN_OP",
    "DUPLICATE_ID",
    "FRAME_TOO_LARGE",
    "OVERLOADED",
    "ADMISSION_ERROR",
    "UNAVAILABLE",
    "INTERNAL",
    "Request",
    "encode_frame",
    "decode_frame",
    "parse_request",
    "flow_to_obj",
    "flow_from_obj",
    "validate_flow_id",
    "ok_response",
    "error_response",
    "encode_frame_v2",
    "encode_bulk_request",
    "encode_bulk_response",
    "decode_payload_v2",
    "parse_bulk_request",
    "bulk_admit_flow",
    "pack_batch_ops",
    "pack_bulk_results",
    "unpack_bulk_results",
]

PROTOCOL_SCHEMA = "repro-admission-rpc/v1"
PROTOCOL_SCHEMA_V2 = "repro-admission-rpc/v2"

#: Negotiation op name and the request id reserved for it.  Clients
#: assign ordinary request ids starting at 1, so the hello exchange
#: happens strictly before the first request id exists.
HELLO_OP = "hello"
HELLO_ID = 0

#: v2 frame header: one u32 big-endian payload length.
FRAME_HEADER_BYTES = 4

#: v2 payload tags (first payload byte).
TAG_JSON = 0x4A  # 'J': JSON carrier (v1 object shape)
TAG_BULK = 0x42  # 'B': packed bulk request
TAG_RESULTS = 0x52  # 'R': packed bulk response

#: Default per-frame size ceiling (1 MiB); both ends enforce it.
MAX_FRAME_BYTES = 1 << 20

#: Operations understood by the server.
OPS = ("admit", "release", "batch", "query", "snapshot", "stats", "health")

BAD_REQUEST = "bad_request"
UNKNOWN_OP = "unknown_op"
DUPLICATE_ID = "duplicate_id"
FRAME_TOO_LARGE = "frame_too_large"
OVERLOADED = "overloaded"
ADMISSION_ERROR = "admission_error"
UNAVAILABLE = "unavailable"
INTERNAL = "internal"

ERROR_CODES = (
    BAD_REQUEST,
    UNKNOWN_OP,
    DUPLICATE_ID,
    FRAME_TOO_LARGE,
    OVERLOADED,
    ADMISSION_ERROR,
    UNAVAILABLE,
    INTERNAL,
)

RequestId = Union[str, int]
FlowId = Union[str, int]


def validate_flow_id(value: Any, *, what: str = "flow_id") -> FlowId:
    """Validated wire flow id: a string or an integer.

    JSON permits any type in a ``flow_id`` slot, but only hashable
    scalar ids may reach the controller's ledger (an unhashable id
    would raise ``TypeError`` deep inside the coalescer's batch step).
    """
    if not isinstance(value, (str, int)) or isinstance(value, bool):
        raise ProtocolError(
            BAD_REQUEST,
            f"{what} must be a string or integer, "
            f"got {type(value).__name__}",
        )
    return value


@dataclass(frozen=True)
class Request:
    """One parsed request frame."""

    id: RequestId
    op: str
    body: Dict[str, Any]


def _dumps_std(obj: Any) -> bytes:
    """Stdlib canonical encoding (sorted keys, no whitespace)."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


if _orjson is not None:
    #: Name of the active JSON backend ("orjson" or "json").
    JSON_BACKEND = "orjson"

    def _dumps(obj: Any) -> bytes:
        # orjson is 3-10x faster on the small frames this protocol
        # ships; its JSONEncodeError is a TypeError subclass, so the
        # rare object it cannot serialize (tuples, exotic key types)
        # transparently falls back to the stdlib encoder instead of
        # changing the seam's contract.
        try:
            return _orjson.dumps(obj, option=_orjson.OPT_SORT_KEYS)
        except TypeError:
            return _dumps_std(obj)

    _loads = _orjson.loads
else:
    JSON_BACKEND = "json"
    _dumps = _dumps_std
    _loads = json.loads


def encode_frame(obj: Dict[str, Any]) -> bytes:
    """Canonical one-line JSON encoding of a frame (trailing newline).

    Both the server and the client encode through this single seam;
    when :mod:`orjson` is importable it is used automatically
    (``JSON_BACKEND == "orjson"``), with a per-object stdlib fallback,
    so installing the optional dependency speeds up every frame on the
    wire without any configuration.
    """
    return _dumps(obj) + b"\n"


def decode_frame(
    line: Union[str, bytes], *, max_bytes: int = MAX_FRAME_BYTES
) -> Dict[str, Any]:
    """Parse one frame line into an object.

    Raises :class:`ProtocolError` (``frame_too_large`` / ``bad_request``)
    on oversized input, invalid JSON, or a non-object frame.
    """
    if len(line) > max_bytes:
        raise ProtocolError(
            FRAME_TOO_LARGE,
            f"frame of {len(line)} bytes exceeds the "
            f"{max_bytes}-byte limit",
        )
    try:
        obj = _loads(line)
    except ValueError as exc:
        # Covers json.JSONDecodeError, orjson.JSONDecodeError and
        # UnicodeDecodeError — all ValueError subclasses.
        raise ProtocolError(
            BAD_REQUEST, f"malformed JSON frame: {exc}"
        ) from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            BAD_REQUEST,
            f"frame must be a JSON object, got {type(obj).__name__}",
        )
    return obj


def parse_request(
    line: Union[str, bytes], *, max_bytes: int = MAX_FRAME_BYTES
) -> Request:
    """Parse and validate one request frame.

    ``op`` validity (known operation name) is checked here; op-specific
    body fields are validated by the server so the error can carry the
    request id.
    """
    obj = decode_frame(line, max_bytes=max_bytes)
    rid = obj.get("id")
    if not isinstance(rid, (str, int)) or isinstance(rid, bool):
        raise ProtocolError(
            BAD_REQUEST,
            "request id must be a string or integer",
        )
    op = obj.get("op")
    if not isinstance(op, str):
        raise ProtocolError(BAD_REQUEST, "request op must be a string")
    body = {k: v for k, v in obj.items() if k not in ("id", "op")}
    return Request(id=rid, op=op, body=body)


def flow_to_obj(flow: FlowSpec) -> Dict[str, Any]:
    """Wire form of a flow request (keys match the workload-trace idiom)."""
    obj: Dict[str, Any] = {
        "id": flow.flow_id,
        "cls": flow.class_name,
        "src": flow.source,
        "dst": flow.destination,
    }
    if flow.route is not None:
        obj["route"] = list(flow.route)
    if flow.priority is not None:
        obj["pri"] = flow.priority
    return obj


def flow_from_obj(obj: Any) -> FlowSpec:
    """Validated :class:`FlowSpec` from a wire flow object."""
    if not isinstance(obj, dict):
        raise ProtocolError(
            BAD_REQUEST,
            f"flow must be an object, got {type(obj).__name__}",
        )
    for key in ("id", "cls", "src", "dst"):
        if key not in obj:
            raise ProtocolError(
                BAD_REQUEST, f"flow object is missing {key!r}"
            )
    validate_flow_id(obj["id"], what="flow id")
    cls = obj["cls"]
    if not isinstance(cls, str):
        raise ProtocolError(BAD_REQUEST, "flow cls must be a string")
    route = obj.get("route")
    if route is not None and (
        not isinstance(route, list) or len(route) < 2
    ):
        raise ProtocolError(
            BAD_REQUEST, "flow route must be a list of >= 2 routers"
        )
    pri = obj.get("pri")
    if pri is not None and pri not in PRIORITIES:
        raise ProtocolError(
            BAD_REQUEST,
            f"flow pri must be one of {PRIORITIES}, got {pri!r}",
        )
    try:
        return FlowSpec(
            flow_id=obj["id"],
            class_name=cls,
            source=obj["src"],
            destination=obj["dst"],
            route=None if route is None else tuple(route),
            priority=pri,
        )
    except Exception as exc:  # TrafficError and friends: bad field values
        raise ProtocolError(BAD_REQUEST, str(exc)) from None


def ok_response(
    rid: Optional[RequestId], result: Dict[str, Any]
) -> Dict[str, Any]:
    return {"id": rid, "ok": True, "result": result}


def error_response(
    rid: Optional[RequestId], code: str, message: str
) -> Dict[str, Any]:
    return {
        "id": rid,
        "ok": False,
        "error": {"code": code, "message": message},
    }


def flow_key(flow: FlowSpec) -> Tuple[Hashable, ...]:
    """Hashable identity of a wire flow (used by tests)."""
    return (flow.flow_id, flow.class_name, flow.source, flow.destination)


# ---------------------------------------------------------------------- #
# v2 binary framing
# ---------------------------------------------------------------------- #

#: Packed bulk sub-op kinds.
BULK_ADMIT = 0
BULK_RELEASE = 1

#: Packed bulk response slot kinds.
SLOT_ADMITTED = 0
SLOT_REJECTED = 1
SLOT_RELEASED = 2
SLOT_ERROR = 3


def _frame_v2(payload: bytes) -> bytes:
    return len(payload).to_bytes(FRAME_HEADER_BYTES, "big") + payload


def encode_frame_v2(obj: Dict[str, Any]) -> bytes:
    """One JSON-carrier v2 frame: header + tag ``J`` + canonical JSON."""
    return _frame_v2(b"\x4a" + _dumps(obj))


def encode_bulk_request(
    rid: RequestId, subops: list
) -> bytes:
    """One packed bulk request frame (tag ``B``).

    ``subops`` must already be positional:
    ``[0, fid, cls, src, dst, route|None]`` or ``[1, fid]``.
    """
    return _frame_v2(b"\x42" + _dumps([rid, subops]))


def encode_bulk_response(rid: RequestId, slots: list) -> bytes:
    """One packed bulk response frame (tag ``R``)."""
    return _frame_v2(b"\x52" + _dumps([rid, slots]))


def decode_payload_v2(
    payload: bytes, *, max_bytes: int = MAX_FRAME_BYTES
) -> Tuple[int, Any]:
    """Parse one v2 payload into ``(tag, obj)``.

    For :data:`TAG_JSON`, ``obj`` is the carried object (a dict);
    for :data:`TAG_BULK` / :data:`TAG_RESULTS`, ``obj`` is the decoded
    ``[id, list]`` pair, shape-checked but with sub-entries left for
    the caller to validate.  Raises :class:`ProtocolError` on unknown
    tags, malformed JSON, or shape violations.
    """
    if len(payload) > max_bytes:
        raise ProtocolError(
            FRAME_TOO_LARGE,
            f"frame of {len(payload)} bytes exceeds the "
            f"{max_bytes}-byte limit",
        )
    if not payload:
        raise ProtocolError(BAD_REQUEST, "empty v2 frame payload")
    tag = payload[0]
    if tag not in (TAG_JSON, TAG_BULK, TAG_RESULTS):
        raise ProtocolError(
            BAD_REQUEST, f"unknown v2 frame tag 0x{tag:02x}"
        )
    try:
        obj = _loads(payload[1:])
    except ValueError as exc:
        raise ProtocolError(
            BAD_REQUEST, f"malformed v2 frame body: {exc}"
        ) from None
    if tag == TAG_JSON:
        if not isinstance(obj, dict):
            raise ProtocolError(
                BAD_REQUEST,
                "v2 carrier frame must hold a JSON object, "
                f"got {type(obj).__name__}",
            )
        return tag, obj
    if (
        not isinstance(obj, list)
        or len(obj) != 2
        or not isinstance(obj[1], list)
    ):
        raise ProtocolError(
            BAD_REQUEST,
            "v2 bulk frame body must be [id, [entries...]]",
        )
    rid = obj[0]
    if not isinstance(rid, (str, int)) or isinstance(rid, bool):
        raise ProtocolError(
            BAD_REQUEST, "request id must be a string or integer"
        )
    return tag, obj


def parse_bulk_request(obj: Any) -> Tuple[RequestId, list]:
    """``(rid, subops)`` of a decoded :data:`TAG_BULK` body."""
    return obj[0], obj[1]


_FLOW_NEW = FlowSpec.__new__


def bulk_admit_flow(sub: list) -> FlowSpec:
    """Validated :class:`FlowSpec` from one packed admit sub-op.

    Six fields is the classic shape; a seventh (optional) field carries
    the flow priority, so priority-less frames stay byte-identical to
    pre-priority senders.
    """
    if len(sub) == 6:
        _, fid, cls, src, dst, route = sub
        pri = None
    elif len(sub) == 7:
        _, fid, cls, src, dst, route, pri = sub
        if pri is not None and pri not in PRIORITIES:
            raise ProtocolError(
                BAD_REQUEST,
                f"flow pri must be one of {PRIORITIES}, got {pri!r}",
            )
    else:
        raise ProtocolError(
            BAD_REQUEST,
            f"packed admit sub-op must have 6 or 7 fields, "
            f"got {len(sub)}",
        )
    if not isinstance(fid, (str, int)) or isinstance(fid, bool):
        raise ProtocolError(
            BAD_REQUEST,
            f"flow id must be a string or integer, "
            f"got {type(fid).__name__}",
        )
    if not isinstance(cls, str):
        raise ProtocolError(BAD_REQUEST, "flow cls must be a string")
    if route is None:
        # Hot path: a frozen dataclass pays ``object.__setattr__`` per
        # field in ``__init__``, so the common route-less flow is built
        # through ``__dict__`` directly.  With no pinned route the only
        # ``__post_init__`` rule left is the endpoint-distinctness
        # check, replicated here with the identical message.
        if src == dst:
            raise ProtocolError(
                BAD_REQUEST,
                f"flow {fid!r}: source equals destination ({src!r})",
            )
        flow = _FLOW_NEW(FlowSpec)
        flow.__dict__.update(
            flow_id=fid,
            class_name=cls,
            source=src,
            destination=dst,
            route=None,
            priority=pri,
        )
        return flow
    if not isinstance(route, list) or len(route) < 2:
        raise ProtocolError(
            BAD_REQUEST, "flow route must be a list of >= 2 routers"
        )
    try:
        return FlowSpec(fid, cls, src, dst, tuple(route), pri)
    except Exception as exc:  # TrafficError and friends: bad field values
        raise ProtocolError(BAD_REQUEST, str(exc)) from None


def pack_batch_ops(ops: list) -> Optional[list]:
    """Positional form of a v1 ``batch`` ops list, or None.

    Returns None when any sub-op does not fit the packed shapes (a
    malformed or exotic entry); callers then fall back to a carrier
    ``batch`` frame so validation errors stay bit-identical to v1.
    """
    packed: list = []
    for sub in ops:
        if not isinstance(sub, dict):
            return None
        sub_op = sub.get("op")
        if sub_op == "admit":
            flow = sub.get("flow")
            if (
                not isinstance(flow, dict)
                or len(sub) != 2
                or not {"id", "cls", "src", "dst"} <= flow.keys()
                or not flow.keys()
                <= {"id", "cls", "src", "dst", "route", "pri"}
            ):
                return None
            entry = [
                BULK_ADMIT,
                flow["id"],
                flow["cls"],
                flow["src"],
                flow["dst"],
                flow.get("route"),
            ]
            if flow.get("pri") is not None:
                # Priority rides as an optional 7th field so frames
                # without one stay byte-identical to pre-priority v2.
                entry.append(flow["pri"])
            packed.append(entry)
        elif sub_op == "release":
            if "flow_id" not in sub or len(sub) != 2:
                return None
            packed.append([BULK_RELEASE, sub["flow_id"]])
        else:
            return None
    return packed


def pack_bulk_results(results: list) -> list:
    """Packed response slots from v1-shaped per-sub-op result objects.

    Exact inverse of :func:`unpack_bulk_results`; the router uses it to
    answer a packed bulk request from slot-wise merged v1-shaped worker
    results without a second protocol pipeline.
    """
    slots: list = []
    for r in results:
        if r.get("ok"):
            res = r.get("result", {})
            if res.get("released"):
                slots.append([SLOT_RELEASED])
            elif res.get("admitted"):
                slots.append(
                    [
                        SLOT_ADMITTED,
                        res.get("reason", ""),
                        res.get("batch_size", 1),
                    ]
                )
            else:
                slots.append(
                    [
                        SLOT_REJECTED,
                        res.get("reason", ""),
                        res.get("batch_size", 1),
                    ]
                )
        else:
            err = r.get("error", {})
            slots.append(
                [
                    SLOT_ERROR,
                    err.get("code", INTERNAL),
                    err.get("message", ""),
                ]
            )
    return slots


def unpack_bulk_results(slots: list) -> list:
    """v1-shaped per-sub-op result objects from packed response slots.

    The output is exactly what a v1 ``batch`` response carries in
    ``result.results``, so client code above the codec never sees the
    protocol difference.
    """
    out: list = []
    for slot in slots:
        if not isinstance(slot, list) or not slot:
            raise ProtocolError(
                BAD_REQUEST, "malformed packed result slot"
            )
        kind = slot[0]
        if kind in (SLOT_ADMITTED, SLOT_REJECTED) and len(slot) == 3:
            out.append(
                {
                    "ok": True,
                    "result": {
                        "admitted": kind == SLOT_ADMITTED,
                        "reason": slot[1],
                        "batch_size": slot[2],
                    },
                }
            )
        elif kind == SLOT_RELEASED and len(slot) == 1:
            out.append({"ok": True, "result": {"released": True}})
        elif kind == SLOT_ERROR and len(slot) == 3:
            out.append(
                {
                    "ok": False,
                    "error": {"code": slot[1], "message": slot[2]},
                }
            )
        else:
            raise ProtocolError(
                BAD_REQUEST, f"malformed packed result slot {slot!r}"
            )
    return out
