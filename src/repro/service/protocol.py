"""Wire protocol of the admission service (``repro-admission-rpc/v1``).

Newline-delimited JSON over a stream transport (TCP or a Unix socket):
one request object per line, one response object per line.  Frames are
canonically serialized — sorted keys, no whitespace — and UTF-8 encoded.

Requests carry a client-chosen ``id`` (string or integer, unique among
the connection's in-flight requests) and an ``op``::

    {"id":1,"op":"admit","flow":{"id":"f1","cls":"voice","src":"A","dst":"B"}}
    {"id":2,"op":"release","flow_id":"f1"}
    {"id":3,"op":"batch","ops":[{"op":"admit","flow":{...}}, ...]}
    {"id":4,"op":"query","flow_id":"f1"}
    {"id":5,"op":"stats"}
    {"id":6,"op":"health"}
    {"id":7,"op":"snapshot"}

Responses echo the request id and carry either a ``result`` object or a
structured ``error`` with a machine-readable ``code``::

    {"id":1,"ok":true,"result":{"admitted":true,"batch_size":64,"reason":""}}
    {"id":2,"ok":false,"error":{"code":"admission_error","message":"..."}}

A frame the server cannot attribute to a request (malformed JSON, or an
oversized line) is answered with ``"id": null``.  Error codes are the
:data:`ERROR_CODES` constants; everything else about a failure lives in
the human-readable ``message``.

Requests may additionally carry an optional ``trace`` object (W3C
traceparent-style ids, see :mod:`repro.obs.trace`)::

    {"id":1,"op":"admit","flow":{...},
     "trace":{"trace_id":"<32 hex>","parent_id":"<16 hex>"}}

The schema stays ``repro-admission-rpc/v1``: the field rides in the
request body like any other key, servers without tracing simply ignore
it, and a malformed ``trace`` never fails the request (it is dropped,
not rejected).  Tracing-aware servers open a per-request span parented
on ``parent_id`` so client and server telemetry join on the ids.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Tuple, Union

from ..errors import ProtocolError
from ..traffic.flows import FlowSpec

try:  # pragma: no cover - exercised only where orjson is installed
    import orjson as _orjson
except ImportError:  # pragma: no cover
    _orjson = None  # type: ignore[assignment]

__all__ = [
    "JSON_BACKEND",
    "PROTOCOL_SCHEMA",
    "MAX_FRAME_BYTES",
    "OPS",
    "ERROR_CODES",
    "BAD_REQUEST",
    "UNKNOWN_OP",
    "DUPLICATE_ID",
    "FRAME_TOO_LARGE",
    "OVERLOADED",
    "ADMISSION_ERROR",
    "UNAVAILABLE",
    "INTERNAL",
    "Request",
    "encode_frame",
    "decode_frame",
    "parse_request",
    "flow_to_obj",
    "flow_from_obj",
    "validate_flow_id",
    "ok_response",
    "error_response",
]

PROTOCOL_SCHEMA = "repro-admission-rpc/v1"

#: Default per-frame size ceiling (1 MiB); both ends enforce it.
MAX_FRAME_BYTES = 1 << 20

#: Operations understood by the server.
OPS = ("admit", "release", "batch", "query", "snapshot", "stats", "health")

BAD_REQUEST = "bad_request"
UNKNOWN_OP = "unknown_op"
DUPLICATE_ID = "duplicate_id"
FRAME_TOO_LARGE = "frame_too_large"
OVERLOADED = "overloaded"
ADMISSION_ERROR = "admission_error"
UNAVAILABLE = "unavailable"
INTERNAL = "internal"

ERROR_CODES = (
    BAD_REQUEST,
    UNKNOWN_OP,
    DUPLICATE_ID,
    FRAME_TOO_LARGE,
    OVERLOADED,
    ADMISSION_ERROR,
    UNAVAILABLE,
    INTERNAL,
)

RequestId = Union[str, int]
FlowId = Union[str, int]


def validate_flow_id(value: Any, *, what: str = "flow_id") -> FlowId:
    """Validated wire flow id: a string or an integer.

    JSON permits any type in a ``flow_id`` slot, but only hashable
    scalar ids may reach the controller's ledger (an unhashable id
    would raise ``TypeError`` deep inside the coalescer's batch step).
    """
    if not isinstance(value, (str, int)) or isinstance(value, bool):
        raise ProtocolError(
            BAD_REQUEST,
            f"{what} must be a string or integer, "
            f"got {type(value).__name__}",
        )
    return value


@dataclass(frozen=True)
class Request:
    """One parsed request frame."""

    id: RequestId
    op: str
    body: Dict[str, Any]


def _dumps_std(obj: Dict[str, Any]) -> bytes:
    """Stdlib canonical encoding (sorted keys, no whitespace)."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


if _orjson is not None:
    #: Name of the active JSON backend ("orjson" or "json").
    JSON_BACKEND = "orjson"

    def _dumps(obj: Dict[str, Any]) -> bytes:
        # orjson is 3-10x faster on the small frames this protocol
        # ships; its JSONEncodeError is a TypeError subclass, so the
        # rare object it cannot serialize (tuples, exotic key types)
        # transparently falls back to the stdlib encoder instead of
        # changing the seam's contract.
        try:
            return _orjson.dumps(obj, option=_orjson.OPT_SORT_KEYS)
        except TypeError:
            return _dumps_std(obj)

    _loads = _orjson.loads
else:
    JSON_BACKEND = "json"
    _dumps = _dumps_std
    _loads = json.loads


def encode_frame(obj: Dict[str, Any]) -> bytes:
    """Canonical one-line JSON encoding of a frame (trailing newline).

    Both the server and the client encode through this single seam;
    when :mod:`orjson` is importable it is used automatically
    (``JSON_BACKEND == "orjson"``), with a per-object stdlib fallback,
    so installing the optional dependency speeds up every frame on the
    wire without any configuration.
    """
    return _dumps(obj) + b"\n"


def decode_frame(
    line: Union[str, bytes], *, max_bytes: int = MAX_FRAME_BYTES
) -> Dict[str, Any]:
    """Parse one frame line into an object.

    Raises :class:`ProtocolError` (``frame_too_large`` / ``bad_request``)
    on oversized input, invalid JSON, or a non-object frame.
    """
    if len(line) > max_bytes:
        raise ProtocolError(
            FRAME_TOO_LARGE,
            f"frame of {len(line)} bytes exceeds the "
            f"{max_bytes}-byte limit",
        )
    try:
        obj = _loads(line)
    except ValueError as exc:
        # Covers json.JSONDecodeError, orjson.JSONDecodeError and
        # UnicodeDecodeError — all ValueError subclasses.
        raise ProtocolError(
            BAD_REQUEST, f"malformed JSON frame: {exc}"
        ) from None
    if not isinstance(obj, dict):
        raise ProtocolError(
            BAD_REQUEST,
            f"frame must be a JSON object, got {type(obj).__name__}",
        )
    return obj


def parse_request(
    line: Union[str, bytes], *, max_bytes: int = MAX_FRAME_BYTES
) -> Request:
    """Parse and validate one request frame.

    ``op`` validity (known operation name) is checked here; op-specific
    body fields are validated by the server so the error can carry the
    request id.
    """
    obj = decode_frame(line, max_bytes=max_bytes)
    rid = obj.get("id")
    if not isinstance(rid, (str, int)) or isinstance(rid, bool):
        raise ProtocolError(
            BAD_REQUEST,
            "request id must be a string or integer",
        )
    op = obj.get("op")
    if not isinstance(op, str):
        raise ProtocolError(BAD_REQUEST, "request op must be a string")
    body = {k: v for k, v in obj.items() if k not in ("id", "op")}
    return Request(id=rid, op=op, body=body)


def flow_to_obj(flow: FlowSpec) -> Dict[str, Any]:
    """Wire form of a flow request (keys match the workload-trace idiom)."""
    obj: Dict[str, Any] = {
        "id": flow.flow_id,
        "cls": flow.class_name,
        "src": flow.source,
        "dst": flow.destination,
    }
    if flow.route is not None:
        obj["route"] = list(flow.route)
    return obj


def flow_from_obj(obj: Any) -> FlowSpec:
    """Validated :class:`FlowSpec` from a wire flow object."""
    if not isinstance(obj, dict):
        raise ProtocolError(
            BAD_REQUEST,
            f"flow must be an object, got {type(obj).__name__}",
        )
    for key in ("id", "cls", "src", "dst"):
        if key not in obj:
            raise ProtocolError(
                BAD_REQUEST, f"flow object is missing {key!r}"
            )
    validate_flow_id(obj["id"], what="flow id")
    cls = obj["cls"]
    if not isinstance(cls, str):
        raise ProtocolError(BAD_REQUEST, "flow cls must be a string")
    route = obj.get("route")
    if route is not None and (
        not isinstance(route, list) or len(route) < 2
    ):
        raise ProtocolError(
            BAD_REQUEST, "flow route must be a list of >= 2 routers"
        )
    try:
        return FlowSpec(
            flow_id=obj["id"],
            class_name=cls,
            source=obj["src"],
            destination=obj["dst"],
            route=None if route is None else tuple(route),
        )
    except Exception as exc:  # TrafficError and friends: bad field values
        raise ProtocolError(BAD_REQUEST, str(exc)) from None


def ok_response(
    rid: Optional[RequestId], result: Dict[str, Any]
) -> Dict[str, Any]:
    return {"id": rid, "ok": True, "result": result}


def error_response(
    rid: Optional[RequestId], code: str, message: str
) -> Dict[str, Any]:
    return {
        "id": rid,
        "ok": False,
        "error": {"code": code, "message": message},
    }


def flow_key(flow: FlowSpec) -> Tuple[Hashable, ...]:
    """Hashable identity of a wire flow (used by tests)."""
    return (flow.flow_id, flow.class_name, flow.source, flow.destination)
