"""Replay recorded workload traces through the admission service.

The bridge between :mod:`repro.workload` and :mod:`repro.service`: any
``repro-workload-trace/v1`` event stream (recorded by the loadgen, or
synthesized by :func:`~repro.workload.loadgen.schedule_events`) can be
driven at a live server, mirroring the semantics of
:func:`repro.workload.loadgen.drive` — arrivals admit, departures
release, and departures of flows that were rejected (or never seen)
count as *skipped*, not failures.

Events are shipped in order inside ``batch`` frames (one frame at a
time), so the server decides them in exactly the recorded order and the
micro-batch coalescer still gets full windows to amortize over.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..errors import ServiceError, TrafficError
from ..workload.trace import TraceEvent, read_trace
from . import protocol
from .client import ServiceClient
from .router import HashRing

__all__ = [
    "ServiceReplayResult",
    "partition_events",
    "replay_events",
    "replay_events_concurrent",
    "replay_trace",
]


@dataclass(frozen=True)
class ServiceReplayResult:
    """Outcome summary of one service replay run."""

    num_arrivals: int
    num_admitted: int
    num_rejected: int
    num_released: int
    num_skipped: int
    num_errors: int
    frames: int
    elapsed_seconds: float
    #: Client-observed round-trip seconds of each ``batch`` frame, in
    #: send order (empty for results predating latency capture).
    frame_latencies: Tuple[float, ...] = field(default=())
    #: ``{priority: {"arrivals": n, "admitted": n, "rejected": n}}``,
    #: populated only when the replayed events carried priorities.
    per_priority: Optional[Dict[str, Dict[str, int]]] = field(
        default=None
    )

    @property
    def total_ops(self) -> int:
        """Admission attempts plus successful releases."""
        return self.num_arrivals + self.num_released

    @property
    def ops_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("nan")
        return self.total_ops / self.elapsed_seconds

    def latency_percentile(self, q: float) -> float:
        """Frame-latency percentile in seconds (nearest-rank over the
        recorded frames; 0.0 when none were recorded)."""
        if not 0.0 <= q <= 1.0:
            raise TrafficError(f"percentile must be in [0, 1], got {q}")
        if not self.frame_latencies:
            return 0.0
        ordered = sorted(self.frame_latencies)
        rank = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[rank]

    def latency_summary(self) -> Dict[str, float]:
        """p50/p90/p99 frame latencies in milliseconds."""
        return {
            "p50_ms": self.latency_percentile(0.50) * 1e3,
            "p90_ms": self.latency_percentile(0.90) * 1e3,
            "p99_ms": self.latency_percentile(0.99) * 1e3,
        }


def _op_of(event: TraceEvent) -> Dict[str, Any]:
    if event.kind == "arrival":
        flow: Dict[str, Any] = {
            "id": event.flow_id,
            "cls": event.class_name,
            "src": event.source,
            "dst": event.destination,
        }
        if event.route is not None:
            flow["route"] = list(event.route)
        if event.priority is not None:
            flow["pri"] = event.priority
        return {"op": "admit", "flow": flow}
    return {"op": "release", "flow_id": event.flow_id}


def replay_events(
    client: ServiceClient,
    events: Sequence[TraceEvent],
    *,
    frame_size: int = 512,
) -> ServiceReplayResult:
    """Drive an event sequence through a connected client.

    Parameters
    ----------
    client:
        A connected :class:`~repro.service.client.ServiceClient`.
    frame_size:
        Ops per ``batch`` frame.  Larger frames pipeline deeper (fewer
        round trips); order within and across frames is preserved
        either way.
    """
    if frame_size < 1:
        raise TrafficError(
            f"frame_size must be >= 1, got {frame_size}"
        )
    ops = [_op_of(event) for event in events]
    kinds = [event.kind for event in events]
    priorities = [event.priority for event in events]
    per_priority: Optional[Dict[str, Dict[str, int]]] = (
        {} if any(p is not None for p in priorities) else None
    )
    arrivals = admitted = released = skipped = errors = 0
    admit_errors = 0
    frames = 0
    latencies: List[float] = []
    start = time.perf_counter()
    for lo in range(0, len(ops), frame_size):
        chunk = ops[lo:lo + frame_size]
        t_frame = time.perf_counter()
        results = client.batch(chunk)
        latencies.append(time.perf_counter() - t_frame)
        frames += 1
        if len(results) != len(chunk):
            raise ServiceError(
                f"batch frame returned {len(results)} results for "
                f"{len(chunk)} ops"
            )
        for offset, (kind, result) in enumerate(
            zip(kinds[lo:lo + frame_size], results)
        ):
            if kind == "arrival":
                arrivals += 1
                flow_admitted = bool(
                    result.get("ok")
                    and result["result"].get("admitted")
                )
                if result.get("ok"):
                    if flow_admitted:
                        admitted += 1
                else:
                    errors += 1
                    admit_errors += 1
                pri = priorities[lo + offset]
                if per_priority is not None and pri is not None:
                    bucket = per_priority.setdefault(
                        pri,
                        {"arrivals": 0, "admitted": 0, "rejected": 0},
                    )
                    bucket["arrivals"] += 1
                    bucket[
                        "admitted" if flow_admitted else "rejected"
                    ] += 1
            else:
                if result.get("ok"):
                    released += 1
                elif (
                    result.get("error", {}).get("code")
                    == protocol.ADMISSION_ERROR
                ):
                    # Departure of a rejected/unknown flow — drive()
                    # skips these; over the wire they surface as
                    # admission errors.
                    skipped += 1
                else:
                    errors += 1
    elapsed = time.perf_counter() - start
    return ServiceReplayResult(
        num_arrivals=arrivals,
        num_admitted=admitted,
        num_rejected=arrivals - admitted - admit_errors,
        num_released=released,
        num_skipped=skipped,
        num_errors=errors,
        frames=frames,
        elapsed_seconds=elapsed,
        frame_latencies=tuple(latencies),
        per_priority=per_priority,
    )


def partition_events(
    events: Sequence[TraceEvent], connections: int
) -> List[List[TraceEvent]]:
    """Split an event stream into per-connection streams by flow id.

    Partitioning uses the same consistent hash as the cluster front
    door (:class:`~repro.service.router.HashRing` with default
    parameters), so a flow's arrival and departure always travel down
    the same connection — per-flow ordering survives the fan-out — and
    when ``connections`` equals the cluster's worker count each
    connection's flows map onto exactly one worker's shard.
    """
    if connections < 1:
        raise TrafficError(
            f"connections must be >= 1, got {connections}"
        )
    ring = HashRing(connections)
    parts: List[List[TraceEvent]] = [[] for _ in range(connections)]
    for event in events:
        parts[ring.worker_of(event.flow_id)].append(event)
    return parts


def replay_events_concurrent(
    make_client: Callable[[int], ServiceClient],
    events: Sequence[TraceEvent],
    *,
    connections: int,
    frame_size: int = 512,
) -> ServiceReplayResult:
    """Drive an event stream over ``connections`` concurrent clients.

    ``make_client(i)`` is called **inside** worker thread ``i`` to
    build that connection's :class:`ServiceClient` (each sync client
    owns a private event loop, which must live on the thread that uses
    it).  Events are partitioned by :func:`partition_events`; counts
    and frame latencies are merged, and ``elapsed_seconds`` is the
    wall-clock window of the whole fan-out — ``ops_per_second`` is
    honest aggregate throughput, not a per-connection sum.
    """
    if connections == 1:
        client = make_client(0)
        with client:
            return replay_events(client, events, frame_size=frame_size)
    parts = partition_events(events, connections)

    def _one(index: int) -> ServiceReplayResult:
        client = make_client(index)
        with client:
            return replay_events(
                client, parts[index], frame_size=frame_size
            )

    start = time.perf_counter()
    with ThreadPoolExecutor(
        max_workers=connections, thread_name_prefix="repro-loadgen"
    ) as pool:
        results = list(pool.map(_one, range(connections)))
    elapsed = time.perf_counter() - start
    latencies: List[float] = []
    merged_priority: Optional[Dict[str, Dict[str, int]]] = None
    for result in results:
        latencies.extend(result.frame_latencies)
        if result.per_priority:
            if merged_priority is None:
                merged_priority = {}
            for pri, counts in result.per_priority.items():
                bucket = merged_priority.setdefault(
                    pri, {"arrivals": 0, "admitted": 0, "rejected": 0}
                )
                for key, value in counts.items():
                    bucket[key] = bucket.get(key, 0) + value
    return ServiceReplayResult(
        num_arrivals=sum(r.num_arrivals for r in results),
        num_admitted=sum(r.num_admitted for r in results),
        num_rejected=sum(r.num_rejected for r in results),
        num_released=sum(r.num_released for r in results),
        num_skipped=sum(r.num_skipped for r in results),
        num_errors=sum(r.num_errors for r in results),
        frames=sum(r.frames for r in results),
        elapsed_seconds=elapsed,
        frame_latencies=tuple(latencies),
        per_priority=merged_priority,
    )


def replay_trace(
    client: ServiceClient,
    path_or_events: Union[str, Sequence[TraceEvent]],
    *,
    frame_size: int = 512,
) -> ServiceReplayResult:
    """Replay a recorded trace file (or event list) through a client."""
    if isinstance(path_or_events, str):
        _meta, events = read_trace(path_or_events)
    else:
        events = list(path_or_events)
    return replay_events(client, events, frame_size=frame_size)
