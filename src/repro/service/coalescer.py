"""Micro-batch coalescing of admission requests.

The coalescer is the server's core: requests arriving within a
configurable window (``max_delay`` seconds, ``max_batch`` requests) are
drained from an :class:`asyncio.Queue` into a single
:meth:`~repro.admission.base.AdmissionController.admit_batch` /
:meth:`~repro.admission.base.AdmissionController.release_batch` call, so
per-request cost amortizes exactly as the batch-kernel benchmarks
demonstrated, and every caller's future resolves with its own decision.

**Decisions are bit-identical to sequential submission.**  The drained
ops are processed strictly in arrival order, grouped into maximal
consecutive runs of the same kind (the batch kernels are
sequential-identical by the PR 4 differential contract).  Two wrinkles
preserve exactness:

* an admit run is **split** when a flow id repeats inside it — the
  second attempt must observe the first one's outcome (admitted ⇒
  "already established" error; rejected ⇒ a fresh attempt), so it is
  decided in a later batch after the first commits;
* per-request failures that the sequential API surfaces as exceptions
  (already-established, unresolvable route, unknown class,
  not-established release) are detected up front and resolved onto the
  caller's future, never poisoning the whole batch.

The controller only mutates inside :meth:`_process`, which contains no
``await`` — snapshots taken between event-loop callbacks therefore see
a consistent ledger.
"""

from __future__ import annotations

import asyncio
import logging
import time
from typing import Any, Dict, Hashable, List, Optional, Tuple, Union

from ..admission.base import AdmissionController, AdmissionDecision
from ..errors import AdmissionError, ReproError, ServiceError
from ..obs import (
    DEFAULT_DEPTH_BUCKETS,
    DEFAULT_ITERATION_BUCKETS,
    OBS,
    TraceContext,
    new_span_id,
)
from ..traffic.flows import FlowSpec
from .audit import AuditLog

__all__ = [
    "MicroBatchCoalescer",
    "BulkSlots",
    "BULK_OP_ADMIT",
    "BULK_OP_RELEASE",
]

#: Batch spans list at most this many linked request span ids; larger
#: batches record the count and a truncation flag instead of the tail.
_SPAN_LINK_CAP = 64

logger = logging.getLogger("repro.service")

#: Anything the drain loop can settle: a real asyncio future or a
#: bulk result slot (same done/set_result/set_exception surface).
ResultFuture = Union["asyncio.Future", "_SlotFuture"]

_ADMIT = "admit"
_RELEASE = "release"
_BARRIER = "barrier"

#: Public aliases for the bulk-entry ``kind`` field of
#: :meth:`MicroBatchCoalescer.submit_bulk`.
BULK_OP_ADMIT = _ADMIT
BULK_OP_RELEASE = _RELEASE


class _Op:
    """One queued request: an admit, a release, or a flush barrier.

    The telemetry fields (``trace``, ``span_hex``, timing marks,
    ``batch_hex``) are populated by the server / drain loop so a
    per-request span can report queue-wait and batch-execute stages and
    link to the batch span that decided it.
    """

    __slots__ = (
        "kind",
        "flow",
        "flow_id",
        "future",
        "enqueued_at",
        "trace",
        "span_hex",
        "dequeued_at",
        "decided_at",
        "batch_hex",
    )

    def __init__(
        self,
        kind: str,
        future: "ResultFuture",
        flow: Optional[FlowSpec] = None,
        flow_id: Optional[Hashable] = None,
        trace: Optional[TraceContext] = None,
        span_hex: Optional[str] = None,
        enqueued_at: Optional[float] = None,
    ):
        self.kind = kind
        self.flow = flow
        self.flow_id = flow_id
        self.future = future
        self.enqueued_at = (
            time.perf_counter() if enqueued_at is None else enqueued_at
        )
        self.trace = trace
        self.span_hex = span_hex
        self.dequeued_at = 0.0
        self.decided_at = 0.0
        self.batch_hex: Optional[str] = None

    def trace_obj(self) -> Optional[dict]:
        return None if self.trace is None else self.trace.to_obj()


class BulkSlots:
    """Result collector for one bulk frame's worth of coalesced ops.

    The v2 bulk fast path decides hundreds of sub-ops per frame; giving
    each its own :class:`asyncio.Future` would pay ``call_soon``
    scheduling per op.  Instead every sub-op gets a :class:`_SlotFuture`
    writing into one shared ``outcomes`` list, and a single real future
    (``waiter``) fires when the last slot settles — one event-loop
    callback per frame, not per op.

    ``outcomes[i]`` holds the op's decision (an
    :class:`~repro.admission.base.AdmissionDecision`), ``True`` for a
    release, or the exception the sequential API would have raised.
    Slots the server fails before submission are filled with
    :meth:`fill` and never enter the queue.
    """

    __slots__ = ("outcomes", "remaining", "waiter", "_coalescer")

    def __init__(self, size: int, coalescer: "MicroBatchCoalescer"):
        self.outcomes: List[object] = [None] * size
        self.remaining = 0
        self.waiter: "asyncio.Future" = (
            asyncio.get_running_loop().create_future()
        )
        self._coalescer = coalescer

    def fill(self, index: int, outcome: object) -> None:
        """Settle a slot inline (pre-submission validation failure)."""
        self.outcomes[index] = outcome

    def _settle(self, index: int, outcome: object) -> None:
        self.outcomes[index] = outcome
        self._coalescer.pending -= 1
        self.remaining -= 1
        if self.remaining == 0 and not self.waiter.done():
            self.waiter.set_result(None)

    async def wait(self) -> None:
        """Block until every queued slot has settled."""
        if self.remaining:
            await self.waiter


class _SlotFuture:
    """Future-shaped result slot (duck-typed for ``_resolve``/``_reject``).

    Implements exactly the three methods the drain loop touches —
    ``done`` / ``set_result`` / ``set_exception`` — settling its
    :class:`BulkSlots` slot synchronously instead of scheduling an
    event-loop callback per op.
    """

    __slots__ = ("slots", "index", "_done")

    def __init__(self, slots: BulkSlots, index: int):
        self.slots = slots
        self.index = index
        self._done = False

    def done(self) -> bool:
        return self._done

    def set_result(self, value: object) -> None:
        self._done = True
        self.slots._settle(self.index, value)

    def set_exception(self, exc: BaseException) -> None:
        self._done = True
        self.slots._settle(self.index, exc)


class MicroBatchCoalescer:
    """Queue admission ops; decide them in sequential-identical batches.

    Parameters
    ----------
    controller:
        Any :class:`~repro.admission.base.AdmissionController`.
    max_batch:
        Upper bound on ops decided per drain.
    max_delay:
        Seconds the drain loop waits for the batch to fill once at
        least one op is pending.  ``0`` coalesces only what is already
        queued (greedy, no added latency).
    """

    def __init__(
        self,
        controller: AdmissionController,
        *,
        max_batch: int = 1024,
        max_delay: float = 0.002,
    ):
        if max_batch < 1:
            raise ServiceError(
                f"max_batch must be >= 1, got {max_batch}"
            )
        if max_delay < 0:
            raise ServiceError(
                f"max_delay must be >= 0, got {max_delay}"
            )
        self.controller = controller
        self.max_batch = int(max_batch)
        self.max_delay = float(max_delay)
        #: Optional decision audit log; the server assigns it so every
        #: admit/release decided here is recorded at commit time.
        self.audit: Optional[AuditLog] = None
        #: Optional :class:`repro.control.Preemptor`; when set, a
        #: rejected arrival whose priority the preemption policy admits
        #: gets one eviction attempt before its rejection is final.
        #: Runs inside the no-await decision sections, so snapshots
        #: still observe a consistent ledger.
        self.preemptor: Optional[Any] = None
        #: Lifetime preemption counters mirrored into ``stats``.
        self.preempted_flows = 0
        self.preempted_admits = 0
        self._queue: "asyncio.Queue[Optional[_Op]]" = asyncio.Queue()
        self._task: Optional["asyncio.Task"] = None
        self._closed = False
        self._paused = asyncio.Event()
        self._paused.set()  # set == running
        #: Submitted-but-unresolved ops — the backpressure signal.
        self.pending = 0
        #: Lifetime counters mirrored into ``stats``.
        self.batches = 0
        self.coalesced_ops = 0
        self.largest_batch = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Spawn the drain loop on the running event loop."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._run(), name="repro-service-coalescer"
            )

    def pause(self) -> None:
        """Hold the drain loop before its next batch (testing/drain aid)."""
        self._paused.clear()

    def resume(self) -> None:
        self._paused.set()

    async def stop(self) -> None:
        """Flush everything queued, then stop the drain loop."""
        self._closed = True
        self.resume()
        if self._task is not None:
            await self._queue.put(None)
            await self._task
            self._task = None

    async def flush(self) -> None:
        """Wait until every op queued before this call is decided."""
        fut: "asyncio.Future" = (
            asyncio.get_running_loop().create_future()
        )
        self._queue.put_nowait(_Op(_BARRIER, fut))
        await fut

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #

    def submit_admit(
        self,
        flow: FlowSpec,
        *,
        trace: Optional[TraceContext] = None,
        span_hex: Optional[str] = None,
    ) -> "asyncio.Future":
        """Enqueue an admission; the future resolves to its
        :class:`~repro.admission.base.AdmissionDecision` (or an
        :class:`~repro.errors.AdmissionError`-family exception, exactly
        where the sequential API would raise)."""
        return self.submit_admit_op(
            flow, trace=trace, span_hex=span_hex
        ).future

    def submit_admit_op(
        self,
        flow: FlowSpec,
        *,
        trace: Optional[TraceContext] = None,
        span_hex: Optional[str] = None,
    ) -> _Op:
        """Like :meth:`submit_admit`, returning the queued op itself so
        the server can read its telemetry fields after resolution."""
        op = _Op(
            _ADMIT,
            asyncio.get_running_loop().create_future(),
            flow=flow,
            flow_id=flow.flow_id,
            trace=trace,
            span_hex=span_hex,
        )
        self._submit(op)
        return op

    def submit_release(
        self,
        flow_id: Hashable,
        *,
        trace: Optional[TraceContext] = None,
        span_hex: Optional[str] = None,
    ) -> "asyncio.Future":
        """Enqueue a release; the future resolves to ``True``."""
        return self.submit_release_op(
            flow_id, trace=trace, span_hex=span_hex
        ).future

    def submit_release_op(
        self,
        flow_id: Hashable,
        *,
        trace: Optional[TraceContext] = None,
        span_hex: Optional[str] = None,
    ) -> _Op:
        op = _Op(
            _RELEASE,
            asyncio.get_running_loop().create_future(),
            flow_id=flow_id,
            trace=trace,
            span_hex=span_hex,
        )
        self._submit(op)
        return op

    def open_bulk(self, size: int) -> BulkSlots:
        """Result collector for one bulk frame of ``size`` sub-ops."""
        return BulkSlots(size, self)

    def submit_bulk_admit(
        self, slots: BulkSlots, index: int, flow: FlowSpec
    ) -> None:
        """Enqueue one bulk admit; the outcome lands in ``slots``."""
        self._submit_slot(
            _Op(
                _ADMIT,
                _SlotFuture(slots, index),
                flow=flow,
                flow_id=flow.flow_id,
            ),
            slots,
        )

    def submit_bulk_release(
        self, slots: BulkSlots, index: int, flow_id: Hashable
    ) -> None:
        """Enqueue one bulk release; the outcome lands in ``slots``."""
        self._submit_slot(
            _Op(_RELEASE, _SlotFuture(slots, index), flow_id=flow_id),
            slots,
        )

    def submit_bulk(
        self,
        slots: BulkSlots,
        entries: List[Tuple[int, str, Any]],
    ) -> None:
        """Submit one bulk frame's ops, deciding them inline when safe.

        ``entries`` are ``(slot_index, kind, payload)`` triples in frame
        order — a :class:`FlowSpec` payload for admits, a flow id for
        releases; slots the server failed during decode are already
        filled and simply absent here.

        When nothing else is undecided (``pending == 0``), the frame is
        decided synchronously right here, writing outcomes straight
        into ``slots`` with no per-op queue traffic or future objects.
        This is bit-identical to the queued path: with no pending ops,
        the arrival order of every undecided op is exactly this frame's
        order, and batch *composition* never affects decisions (the
        batch kernels are sequential-identical by the differential
        contract) — only op order does.  The frame is chunked by
        ``max_batch`` so the documented per-batch bound holds.  The
        telemetry-rich configurations (audit log, live metrics) and the
        pause/stop staging controls fall back to per-op submission
        through the queue, which records everything exactly as v1
        carrier frames would.
        """
        if self._closed:
            raise ServiceError("coalescer is stopped")
        if (
            self.pending == 0
            and self._paused.is_set()
            and self.audit is None
            and not OBS.enabled
        ):
            for start in range(0, len(entries), self.max_batch):
                chunk = entries[start : start + self.max_batch]
                try:
                    self._process_bulk(slots, chunk)
                except Exception as exc:
                    # Same defensive rule as the drain loop: a poisoned
                    # batch fails its own callers, nothing else.
                    logger.exception(
                        "inline bulk decision failed; failing batch"
                    )
                    for index, _kind, _payload in chunk:
                        if slots.outcomes[index] is None:
                            slots.fill(index, exc)
            return
        enqueued_at = time.perf_counter()
        for index, kind, payload in entries:
            if kind == _ADMIT:
                op = _Op(
                    _ADMIT,
                    _SlotFuture(slots, index),
                    flow=payload,
                    flow_id=payload.flow_id,
                    enqueued_at=enqueued_at,
                )
            else:
                op = _Op(
                    _RELEASE,
                    _SlotFuture(slots, index),
                    flow_id=payload,
                    enqueued_at=enqueued_at,
                )
            self._submit_slot(op, slots)

    def _process_bulk(
        self,
        slots: BulkSlots,
        entries: List[Tuple[int, str, Any]],
    ) -> None:
        """Inline analogue of :meth:`_process`: identical run grouping
        and duplicate-admit splitting, with outcomes written directly
        into ``slots.outcomes`` instead of settled through futures."""
        self.batches += 1
        self.coalesced_ops += len(entries)
        self.largest_batch = max(self.largest_batch, len(entries))
        i, n = 0, len(entries)
        while i < n:
            kind = entries[i][1]
            run: List[Tuple[int, str, Any]] = []
            if kind == _ADMIT:
                seen: set = set()
                while i < n and entries[i][1] == _ADMIT:
                    fid = entries[i][2].flow_id
                    if fid in seen:
                        # Split: this attempt must see the earlier
                        # occurrence's committed outcome first.
                        break
                    seen.add(fid)
                    run.append(entries[i])
                    i += 1
                self._admit_run_bulk(slots, run)
            else:
                while i < n and entries[i][1] == _RELEASE:
                    run.append(entries[i])
                    i += 1
                self._release_run_bulk(slots, run)

    def _admit_run_bulk(
        self,
        slots: BulkSlots,
        run: List[Tuple[int, str, Any]],
    ) -> None:
        """Slot-direct mirror of :meth:`_admit_run` (audit is off on
        this path, so only the decision plumbing remains)."""
        controller = self.controller
        registry_get = controller.registry.get
        established = controller._established
        route_map = controller.route_map
        resolve_route = controller.resolve_route
        outcomes = slots.outcomes
        indices: List[int] = []
        flows: List[FlowSpec] = []
        routes: List = []
        for index, _kind, flow in run:
            try:
                # Mirrors the sequential admit() failure order:
                # established check, route resolution, class lookup.
                # The route-less common case inlines resolve_route's
                # map lookup (same list object, same failure message).
                if flow.flow_id in established:
                    raise AdmissionError(
                        f"flow {flow.flow_id!r} is already established"
                    )
                if flow.route is None:
                    pair = (flow.source, flow.destination)
                    route = route_map.get(pair)
                    if route is None:
                        raise AdmissionError(
                            f"no configured route for pair {pair!r}"
                        )
                else:
                    route = resolve_route(flow)
                registry_get(flow.class_name)
            except ReproError as exc:
                outcomes[index] = exc
                continue
            indices.append(index)
            flows.append(flow)
            routes.append(route)
        if not flows:
            return
        try:
            decisions = controller.admit_batch_routed(flows, routes)
        except Exception as exc:  # unexpected: fail the run, not the loop
            for index in indices:
                outcomes[index] = exc
            return
        if self.preemptor is not None:
            decisions = self._preempt_pass(flows, list(decisions))
        for index, decision in zip(indices, decisions):
            outcomes[index] = decision

    def _release_run_bulk(
        self,
        slots: BulkSlots,
        run: List[Tuple[int, str, Any]],
    ) -> None:
        """Slot-direct mirror of :meth:`_release_run`."""
        controller = self.controller
        outcomes = slots.outcomes
        valid: List[Tuple[int, Hashable]] = []
        run_ids: set = set()
        for index, _kind, fid in run:
            if controller.is_established(fid) and fid not in run_ids:
                run_ids.add(fid)
                valid.append((index, fid))
            else:
                # Duplicate-in-run ids fail identically: sequentially,
                # the second release would find the flow gone.
                outcomes[index] = AdmissionError(
                    f"flow {fid!r} is not established"
                )
        if not valid:
            return
        try:
            controller.release_batch([fid for _index, fid in valid])
        except Exception as exc:
            for index, _fid in valid:
                outcomes[index] = exc
            return
        for index, _fid in valid:
            outcomes[index] = True

    def _submit_slot(self, op: _Op, slots: BulkSlots) -> None:
        if self._closed:
            raise ServiceError("coalescer is stopped")
        # Backpressure accounting is per op, exactly like `_submit`;
        # the decrement happens in BulkSlots._settle instead of a
        # future done-callback.
        self.pending += 1
        slots.remaining += 1
        self._queue.put_nowait(op)

    def _submit(self, op: _Op) -> "asyncio.Future":
        if self._closed:
            raise ServiceError("coalescer is stopped")
        self.pending += 1
        op.future.add_done_callback(self._on_done)
        self._queue.put_nowait(op)
        return op.future

    def _on_done(self, _future: "asyncio.Future") -> None:
        self.pending -= 1

    # ------------------------------------------------------------------ #
    # drain loop
    # ------------------------------------------------------------------ #

    async def _run(self) -> None:
        queue = self._queue
        while True:
            head = await queue.get()
            await self._paused.wait()
            if head is None:
                return
            batch = [head]
            stop = await self._fill(batch)
            try:
                self._process(batch)
            except Exception as exc:
                # Defensive: one poisoned batch (e.g. an op whose
                # payload the wire layer failed to validate) must not
                # kill the drain loop — that would wedge every queued
                # and future request.  Fail this batch's callers and
                # keep draining.
                logger.exception("batch decision failed; failing batch")
                for op in batch:
                    if op.kind == _BARRIER:
                        _resolve(op.future, True)
                    else:
                        _reject(op.future, exc)
            if stop:
                return

    async def _fill(self, batch: List[_Op]) -> bool:
        """Drain up to ``max_batch`` ops into ``batch``.

        Greedily takes whatever is already queued, then waits out the
        remaining coalescing window.  Returns True when the stop
        sentinel was encountered (the batch is still processed).
        """
        queue = self._queue
        while len(batch) < self.max_batch:
            try:
                op = queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if op is None:
                return True
            batch.append(op)
        if len(batch) >= self.max_batch or self.max_delay <= 0:
            return False
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.max_delay
        while len(batch) < self.max_batch:
            remaining = deadline - loop.time()
            if remaining <= 0:
                break
            try:
                op = await asyncio.wait_for(queue.get(), remaining)
            except asyncio.TimeoutError:
                break
            if op is None:
                return True
            batch.append(op)
        return False

    # ------------------------------------------------------------------ #
    # batch decision (synchronous — no awaits, consistent ledger)
    # ------------------------------------------------------------------ #

    def _process(self, ops: List[_Op]) -> None:
        self.batches += 1
        self.coalesced_ops += len(ops)
        self.largest_batch = max(self.largest_batch, len(ops))
        t_start = time.perf_counter()
        for op in ops:
            op.dequeued_at = t_start
        i, n = 0, len(ops)
        while i < n:
            kind = ops[i].kind
            if kind == _BARRIER:
                _resolve(ops[i].future, True)
                i += 1
                continue
            run: List[_Op] = []
            if kind == _ADMIT:
                seen: set = set()
                while i < n and ops[i].kind == _ADMIT:
                    fid = ops[i].flow.flow_id  # type: ignore[union-attr]
                    if fid in seen:
                        # Split: this attempt must see the earlier
                        # occurrence's committed outcome first.
                        break
                    seen.add(fid)
                    run.append(ops[i])
                    i += 1
                self._admit_run(run)
            else:
                while i < n and ops[i].kind == _RELEASE:
                    run.append(ops[i])
                    i += 1
                self._release_run(run)
        now = time.perf_counter()
        for op in ops:
            op.decided_at = now
        if OBS.enabled:
            reg = OBS.registry
            reg.counter("repro_service_batches_total").inc()
            reg.histogram(
                "repro_service_batch_fill",
                buckets=DEFAULT_ITERATION_BUCKETS,
            ).observe(len(ops))
            reg.gauge("repro_service_queue_depth").set(self.pending)
            hist = reg.histogram("repro_service_coalesce_seconds")
            for op in ops:
                hist.observe(now - op.enqueued_at)
            reg.histogram(
                "repro_service_backlog",
                buckets=DEFAULT_DEPTH_BUCKETS,
            ).observe(max(self.pending, 0))
            tracer = OBS.tracer
            if tracer is not None:
                # One batch-kernel span linking the request spans it
                # decided; callers link back via ``op.batch_hex``.
                batch_hex = new_span_id()
                linked = [
                    op.span_hex for op in ops if op.span_hex is not None
                ]
                attrs = {
                    "span_hex": batch_hex,
                    "ops": len(ops),
                    "admits": sum(
                        1 for op in ops if op.kind == _ADMIT
                    ),
                    "releases": sum(
                        1 for op in ops if op.kind == _RELEASE
                    ),
                    "request_spans": ",".join(linked[:_SPAN_LINK_CAP]),
                }
                if len(linked) > _SPAN_LINK_CAP:
                    attrs["request_spans_truncated"] = (
                        len(linked) - _SPAN_LINK_CAP
                    )
                tracer.record_span(
                    "service.batch",
                    start=t_start,
                    duration=now - t_start,
                    **attrs,
                )
                for op in ops:
                    op.batch_hex = batch_hex

    def _admit_run(self, run: List[_Op]) -> None:
        """One ``admit_batch`` call, after filtering the requests the
        sequential API would have rejected with an exception."""
        controller = self.controller
        registry = controller.registry
        audit = self.audit
        valid: List[_Op] = []
        routes: List = []
        for op in run:
            flow = op.flow
            assert flow is not None
            try:
                # Mirrors the sequential admit() failure order:
                # established check, route resolution, class lookup.
                if controller.is_established(flow.flow_id):
                    raise AdmissionError(
                        f"flow {flow.flow_id!r} is already established"
                    )
                route = controller.resolve_route(flow)
                registry.get(flow.class_name)
            except ReproError as exc:
                if audit is not None:
                    audit.record_admit(
                        flow,
                        admitted=False,
                        error=str(exc),
                        trace=op.trace_obj(),
                    )
                _reject(op.future, exc)
                continue
            valid.append(op)
            routes.append(route)
        if not valid:
            return
        try:
            # The precheck above proved exactly what admit_batch would
            # re-validate (no established/duplicate ids, resolvable
            # routes), so the routed entry point skips that second pass.
            decisions = controller.admit_batch_routed(
                [op.flow for op in valid],  # type: ignore[misc]
                routes,
            )
        except Exception as exc:  # unexpected: fail the run, not the loop
            if audit is not None:
                for op in valid:
                    audit.record_admit(
                        op.flow,  # type: ignore[arg-type]
                        admitted=False,
                        error=f"{type(exc).__name__}: {exc}",
                        trace=op.trace_obj(),
                    )
            for op in valid:
                _reject(op.future, exc)
            return
        rescues: Dict[int, Tuple[Hashable, ...]] = {}
        if self.preemptor is not None:
            decisions = self._preempt_pass(
                [op.flow for op in valid],
                list(decisions),
                rescues,
            )
        if audit is not None:
            self._audit_admits(valid, decisions, rescues)
        for op, decision in zip(valid, decisions):
            _resolve(op.future, decision)

    def _preempt_pass(
        self,
        flows: List[FlowSpec],
        decisions: List[AdmissionDecision],
        rescues: "Optional[Dict[int, Tuple[Hashable, ...]]]" = None,
    ) -> List[AdmissionDecision]:
        """Give each rejected, preemption-eligible flow one eviction
        attempt, swapping successful re-admit decisions in place.

        ``rescues`` (when given) collects ``index -> evicted ids`` for
        every swapped decision, so the audit step can record each
        rescue *after* the kernel's own admits — a victim admitted
        earlier in the same batch must appear in the log as admitted
        before its preempted release.
        """
        preemptor = self.preemptor
        assert preemptor is not None
        eligible = preemptor.policy.admit_priorities
        for i, decision in enumerate(decisions):
            if decision.admitted:
                continue
            flow = flows[i]
            if flow.priority not in eligible:
                continue
            outcome = preemptor.try_admit(flow)
            if not outcome.admitted:
                continue
            if rescues is not None:
                rescues[i] = outcome.evicted
            # A stale rejection re-admitted with no sacrifice (an
            # earlier eviction in this pass freed the route) is not a
            # preempted admit — only count rescues that evicted.
            if outcome.evicted:
                self.preempted_flows += len(outcome.evicted)
                self.preempted_admits += 1
                if OBS.enabled:
                    reg = OBS.registry
                    reg.counter(
                        "repro_service_preempted_flows_total"
                    ).inc(len(outcome.evicted))
                    reg.counter(
                        "repro_service_preempted_admits_total"
                    ).inc()
            decisions[i] = outcome.decision
        return decisions

    def _audit_admits(
        self,
        valid: List[_Op],
        decisions,
        rescues: "Optional[Dict[int, Tuple[Hashable, ...]]]" = None,
    ) -> None:
        """Record each committed admit decision: the route the flow
        occupies (or would have), and the post-decision headroom of its
        class on that pair — "how many more such flows fit right now".

        Records follow ledger order, which for a batch is: the kernel's
        own decisions in batch order first, then each preemption rescue
        as its victims' ``reason="preempted"`` releases followed by the
        rescued flow's admit.  Replaying the log therefore reconstructs
        the established set exactly — even when a victim was admitted
        by the same batch that evicted it.
        """
        controller = self.controller
        audit = self.audit
        assert audit is not None
        rescued = rescues or {}
        ordered = [
            i for i in range(len(valid)) if i not in rescued
        ] + sorted(rescued)
        headroom_fn = getattr(controller, "headroom", None)
        for i in ordered:
            op, decision = valid[i], decisions[i]
            flow = op.flow
            assert flow is not None
            for victim in rescued.get(i, ()):
                audit.record_release(
                    victim, ok=True, reason="preempted",
                    trace=op.trace_obj(),
                )
            route: Optional[List] = None
            try:
                if decision.admitted:
                    route = list(
                        controller.committed_route(flow.flow_id)
                    )
                else:
                    route = list(controller.resolve_route(flow))
            except ReproError:
                route = None
            headroom: Optional[int] = None
            if headroom_fn is not None:
                try:
                    headroom = int(
                        headroom_fn(
                            flow.class_name,
                            (flow.source, flow.destination),
                        )
                    )
                except (ReproError, KeyError):
                    headroom = None
            audit.record_admit(
                flow,
                admitted=decision.admitted,
                reason=decision.reason,
                route=route,
                headroom=headroom,
                trace=op.trace_obj(),
            )

    def _release_run(self, run: List[_Op]) -> None:
        controller = self.controller
        audit = self.audit
        valid: List[_Op] = []
        run_ids: set = set()
        for op in run:
            fid = op.flow_id
            if controller.is_established(fid) and fid not in run_ids:
                run_ids.add(fid)
                valid.append(op)
            else:
                # Duplicate-in-run ids fail identically: sequentially,
                # the second release would find the flow gone.
                if audit is not None:
                    audit.record_release(
                        fid,
                        ok=False,
                        error="not established",
                        trace=op.trace_obj(),
                    )
                _reject(
                    op.future,
                    AdmissionError(f"flow {fid!r} is not established"),
                )
        if not valid:
            return
        try:
            controller.release_batch([op.flow_id for op in valid])
        except Exception as exc:
            if audit is not None:
                for op in valid:
                    audit.record_release(
                        op.flow_id,
                        ok=False,
                        error=f"{type(exc).__name__}: {exc}",
                        trace=op.trace_obj(),
                    )
            for op in valid:
                _reject(op.future, exc)
            return
        if audit is not None:
            for op in valid:
                audit.record_release(
                    op.flow_id, ok=True, trace=op.trace_obj()
                )
        for op in valid:
            _resolve(op.future, True)


def _resolve(future: "ResultFuture", value: object) -> None:
    if not future.done():
        future.set_result(value)


def _reject(future: "ResultFuture", exc: BaseException) -> None:
    if not future.done():
        future.set_exception(exc)


# Re-export for annotation convenience in the server module.
Decision = AdmissionDecision
