"""Crash-safe snapshots of a serving admission controller.

A snapshot is the controller's established-flow list with every flow's
**committed route pinned**, plus the utilization assignment for sanity
checking — exactly the state a restarted server needs to re-admit its
flows on the same paths before accepting new traffic (the
:mod:`repro.faults` survivor guarantee, extended across process death).

Writes are atomic and durable: serialize to ``<path>.tmp``, ``fsync``,
then ``os.replace`` onto the final name — a ``kill -9`` at any instant
leaves either the previous snapshot or the new one, never a torn file.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence

from ..admission.base import AdmissionController
from ..errors import ServiceError

__all__ = [
    "SNAPSHOT_SCHEMA",
    "SnapshotStore",
    "merge_cluster_snapshot",
    "service_snapshot",
    "split_cluster_snapshot",
]

SNAPSHOT_SCHEMA = "repro-admission-snapshot/v1"


def service_snapshot(controller: AdmissionController) -> Dict[str, Any]:
    """Snapshot dict with committed routes pinned.

    Unlike ``controller.snapshot()`` (which records the route *request*,
    possibly ``None`` for configured-pair flows), the service snapshot
    pins the route each flow actually occupies, so a restore lands every
    survivor on its original path even if the route map changed or the
    restarted process resolves pairs differently.
    """
    flows = []
    for flow in controller.established_flows:
        flows.append(
            {
                "flow_id": flow.flow_id,
                "class_name": flow.class_name,
                "source": flow.source,
                "destination": flow.destination,
                "route": list(controller.committed_route(flow.flow_id)),
            }
        )
    return {
        "schema": SNAPSHOT_SCHEMA,
        "alphas": dict(getattr(controller, "alphas", {})),
        "flows": flows,
    }


def _flow_key(flow_id: Hashable) -> Hashable:
    """Type-tagged identity so ``1`` and ``"1"`` never collide."""
    return ("s" if isinstance(flow_id, str) else "i", flow_id)


def merge_cluster_snapshot(
    shards: Sequence[Optional[Dict[str, Any]]],
) -> Dict[str, Any]:
    """Combine per-worker shard snapshots into one cluster manifest.

    ``shards[i]`` is worker ``i``'s ``repro-admission-snapshot/v1``
    snapshot (``None`` when that worker has not written one yet).  The
    result is itself schema-``v1`` — a single-server restore accepts it
    unchanged — with two additions: every flow record carries the
    ``worker`` that committed it, and a top-level ``cluster`` object
    records the worker count the cut was taken under, so a restarted
    supervisor can re-partition survivors onto their original owners
    (or re-hash them when the cluster was resized).

    Raises :class:`ServiceError` on mixed utilization assignments or a
    flow id committed by two shards — either means the shards are not
    one consistent cut.
    """
    alphas: Optional[Dict[str, Any]] = None
    flows: List[Dict[str, Any]] = []
    seen: Dict[Hashable, int] = {}
    present: List[int] = []
    for idx, shard in enumerate(shards):
        if shard is None:
            continue
        if (
            not isinstance(shard, dict)
            or shard.get("schema") != SNAPSHOT_SCHEMA
        ):
            raise ServiceError(
                f"worker {idx} snapshot has schema "
                f"{shard.get('schema') if isinstance(shard, dict) else None!r}, "
                f"expected {SNAPSHOT_SCHEMA!r}"
            )
        present.append(idx)
        shard_alphas = dict(shard.get("alphas", {}))
        if alphas is None:
            alphas = shard_alphas
        elif shard_alphas != alphas:
            raise ServiceError(
                f"worker {idx} snapshot was taken under a different "
                "utilization assignment than its peers"
            )
        for item in shard.get("flows", []):
            key = _flow_key(item["flow_id"])
            if key in seen:
                raise ServiceError(
                    f"flow {item['flow_id']!r} appears in worker "
                    f"{seen[key]} and worker {idx} snapshots — "
                    "shards are not disjoint"
                )
            seen[key] = idx
            flows.append({**item, "worker": idx})
    return {
        "schema": SNAPSHOT_SCHEMA,
        "alphas": dict(alphas or {}),
        "flows": flows,
        "cluster": {"workers": len(shards), "present": present},
    }


def split_cluster_snapshot(
    manifest: Dict[str, Any],
    workers: int,
    assign: Callable[[Hashable], int],
) -> List[Dict[str, Any]]:
    """Per-worker shard snapshots from a cluster manifest.

    The inverse of :func:`merge_cluster_snapshot` for restart: when the
    manifest was taken under the same ``workers`` count, every flow goes
    back to the worker that committed it (exact pre-crash partition);
    otherwise — a resized cluster, or a plain single-server snapshot
    being scaled out — flows are assigned by ``assign(flow_id)``
    (typically the cluster's consistent-hash ring).  Committed routes
    are preserved verbatim either way.
    """
    if workers < 1:
        raise ServiceError(f"need at least one worker, got {workers}")
    if (
        not isinstance(manifest, dict)
        or manifest.get("schema") != SNAPSHOT_SCHEMA
    ):
        raise ServiceError(
            f"manifest has schema "
            f"{manifest.get('schema') if isinstance(manifest, dict) else None!r}, "
            f"expected {SNAPSHOT_SCHEMA!r}"
        )
    stored = manifest.get("cluster", {})
    use_stored = (
        isinstance(stored, dict) and stored.get("workers") == workers
    )
    alphas = dict(manifest.get("alphas", {}))
    shards: List[Dict[str, Any]] = [
        {"schema": SNAPSHOT_SCHEMA, "alphas": dict(alphas), "flows": []}
        for _ in range(workers)
    ]
    for item in manifest.get("flows", []):
        owner = item.get("worker")
        if not (
            use_stored
            and isinstance(owner, int)
            and not isinstance(owner, bool)
            and 0 <= owner < workers
        ):
            owner = int(assign(item["flow_id"]))
        shards[owner]["flows"].append(
            {
                "flow_id": item["flow_id"],
                "class_name": item["class_name"],
                "source": item["source"],
                "destination": item["destination"],
                "route": item["route"],
            }
        )
    return shards


class SnapshotStore:
    """Atomic on-disk persistence for service snapshots."""

    def __init__(self, path: str):
        if not path:
            raise ServiceError("snapshot path must be non-empty")
        self.path = str(path)
        self.writes = 0
        # Snapshot age for telemetry: seed from an existing file's mtime
        # so a restarted server reports the age of the snapshot it
        # recovered from, not "never written".
        self.last_write_at: Optional[float] = None
        try:
            self.last_write_at = os.path.getmtime(self.path)
        except OSError:
            pass

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def write(self, snapshot: Dict[str, Any]) -> None:
        """Durably replace the stored snapshot (write-temp, fsync,
        rename)."""
        tmp = self.path + ".tmp"
        data = json.dumps(snapshot, sort_keys=True, separators=(",", ":"))
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(data)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self.writes += 1
        self.last_write_at = time.time()

    def load(self) -> Optional[Dict[str, Any]]:
        """The stored snapshot, or None when the file does not exist."""
        if not self.exists():
            return None
        with open(self.path, "r", encoding="utf-8") as fh:
            try:
                snapshot = json.load(fh)
            except json.JSONDecodeError as exc:
                raise ServiceError(
                    f"corrupt snapshot {self.path!r}: {exc}"
                ) from None
        if (
            not isinstance(snapshot, dict)
            or snapshot.get("schema") != SNAPSHOT_SCHEMA
        ):
            raise ServiceError(
                f"snapshot {self.path!r} has schema "
                f"{snapshot.get('schema') if isinstance(snapshot, dict) else None!r}, "
                f"expected {SNAPSHOT_SCHEMA!r}"
            )
        return snapshot

    def restore_into(self, controller: AdmissionController) -> int:
        """Re-admit a stored snapshot into a fresh controller.

        Returns the number of flows re-established (0 when no snapshot
        exists).  Every flow is admitted with its committed route
        pinned; a flow that no longer fits raises — the stored state
        was verified-admissible, so failure means a configuration
        mismatch the operator must see.
        """
        snapshot = self.load()
        if snapshot is None:
            return 0
        restore = getattr(controller, "restore", None)
        if restore is None:
            raise ServiceError(
                f"controller {type(controller).__name__} does not "
                "support snapshot restore"
            )
        restore(
            {
                "alphas": snapshot.get("alphas", {}),
                "flows": [
                    {
                        "flow_id": item["flow_id"],
                        "class_name": item["class_name"],
                        "source": item["source"],
                        "destination": item["destination"],
                        "route": item["route"],
                    }
                    for item in snapshot.get("flows", [])
                ],
            }
        )
        return len(snapshot.get("flows", []))
