"""Crash-safe snapshots of a serving admission controller.

A snapshot is the controller's established-flow list with every flow's
**committed route pinned**, plus the utilization assignment for sanity
checking — exactly the state a restarted server needs to re-admit its
flows on the same paths before accepting new traffic (the
:mod:`repro.faults` survivor guarantee, extended across process death).

Writes are atomic and durable: serialize to ``<path>.tmp``, ``fsync``,
then ``os.replace`` onto the final name — a ``kill -9`` at any instant
leaves either the previous snapshot or the new one, never a torn file.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Optional

from ..admission.base import AdmissionController
from ..errors import ServiceError

__all__ = ["SNAPSHOT_SCHEMA", "SnapshotStore", "service_snapshot"]

SNAPSHOT_SCHEMA = "repro-admission-snapshot/v1"


def service_snapshot(controller: AdmissionController) -> Dict[str, Any]:
    """Snapshot dict with committed routes pinned.

    Unlike ``controller.snapshot()`` (which records the route *request*,
    possibly ``None`` for configured-pair flows), the service snapshot
    pins the route each flow actually occupies, so a restore lands every
    survivor on its original path even if the route map changed or the
    restarted process resolves pairs differently.
    """
    flows = []
    for flow in controller.established_flows:
        flows.append(
            {
                "flow_id": flow.flow_id,
                "class_name": flow.class_name,
                "source": flow.source,
                "destination": flow.destination,
                "route": list(controller.committed_route(flow.flow_id)),
            }
        )
    return {
        "schema": SNAPSHOT_SCHEMA,
        "alphas": dict(getattr(controller, "alphas", {})),
        "flows": flows,
    }


class SnapshotStore:
    """Atomic on-disk persistence for service snapshots."""

    def __init__(self, path: str):
        if not path:
            raise ServiceError("snapshot path must be non-empty")
        self.path = str(path)
        self.writes = 0
        # Snapshot age for telemetry: seed from an existing file's mtime
        # so a restarted server reports the age of the snapshot it
        # recovered from, not "never written".
        self.last_write_at: Optional[float] = None
        try:
            self.last_write_at = os.path.getmtime(self.path)
        except OSError:
            pass

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def write(self, snapshot: Dict[str, Any]) -> None:
        """Durably replace the stored snapshot (write-temp, fsync,
        rename)."""
        tmp = self.path + ".tmp"
        data = json.dumps(snapshot, sort_keys=True, separators=(",", ":"))
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(data)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self.writes += 1
        self.last_write_at = time.time()

    def load(self) -> Optional[Dict[str, Any]]:
        """The stored snapshot, or None when the file does not exist."""
        if not self.exists():
            return None
        with open(self.path, "r", encoding="utf-8") as fh:
            try:
                snapshot = json.load(fh)
            except json.JSONDecodeError as exc:
                raise ServiceError(
                    f"corrupt snapshot {self.path!r}: {exc}"
                ) from None
        if (
            not isinstance(snapshot, dict)
            or snapshot.get("schema") != SNAPSHOT_SCHEMA
        ):
            raise ServiceError(
                f"snapshot {self.path!r} has schema "
                f"{snapshot.get('schema') if isinstance(snapshot, dict) else None!r}, "
                f"expected {SNAPSHOT_SCHEMA!r}"
            )
        return snapshot

    def restore_into(self, controller: AdmissionController) -> int:
        """Re-admit a stored snapshot into a fresh controller.

        Returns the number of flows re-established (0 when no snapshot
        exists).  Every flow is admitted with its committed route
        pinned; a flow that no longer fits raises — the stored state
        was verified-admissible, so failure means a configuration
        mismatch the operator must see.
        """
        snapshot = self.load()
        if snapshot is None:
            return 0
        restore = getattr(controller, "restore", None)
        if restore is None:
            raise ServiceError(
                f"controller {type(controller).__name__} does not "
                "support snapshot restore"
            )
        restore(
            {
                "alphas": snapshot.get("alphas", {}),
                "flows": [
                    {
                        "flow_id": item["flow_id"],
                        "class_name": item["class_name"],
                        "source": item["source"],
                        "destination": item["destination"],
                        "route": item["route"],
                    }
                    for item in snapshot.get("flows", [])
                ],
            }
        )
        return len(snapshot.get("flows", []))
