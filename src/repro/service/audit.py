"""Decision audit log (``repro-admission-audit/v1``).

Every admit/release the coalescer decides is appended as one JSON line:
flow identity, the decided route, the decision and its reason, the
per-route utilization headroom *after* the decision committed, and the
wire trace context when the caller propagated one — so any production
accept/reject is attributable long after the span ring buffer forgot
it.

Durability contract (what makes the log trustworthy across ``kill -9``):

* records are buffered but **fsynced every** ``fsync_every`` records;
* before the server writes a crash-safe snapshot it calls
  :meth:`AuditLog.mark_snapshot`, which fsyncs everything recorded so
  far and appends a ``snapshot`` marker carrying a digest of the
  established-flow set — *then* the snapshot file is written.  Any
  snapshot found on disk therefore corresponds to a marker already
  durable in the audit log, and every decision that led to it precedes
  that marker;
* a restarted server appends a ``restore`` marker (same digest scheme),
  and sequence numbers continue monotonically across restarts, so
  :func:`verify_audit` can replay the whole history — crash boundaries
  included — and prove no decision was lost or duplicated.

The log rotates (``path`` → ``path.1`` → … up to ``keep`` files) at
``max_bytes``; :func:`iter_audit` reads rotated files oldest-first.
:func:`audit_to_trace_events` converts a log back into a
``repro-workload-trace/v1`` event stream, so an audit log is itself
replayable through :func:`repro.service.replay.replay_events`.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import (
    IO,
    TYPE_CHECKING,
    Any,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Union,
)

from ..errors import ServiceError
from ..traffic.flows import FlowSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..workload.trace import TraceEvent

__all__ = [
    "AUDIT_SCHEMA",
    "AuditLog",
    "iter_audit",
    "verify_audit",
    "audit_to_trace_events",
]

AUDIT_SCHEMA = "repro-admission-audit/v1"

#: Record kinds appearing in an audit stream.
KINDS = ("admit", "release", "snapshot", "restore")


def flow_set_digest(flow_ids: Iterable[Hashable]) -> str:
    """Order-independent digest of an established-flow id set.

    Snapshot and restore markers carry this digest instead of the full
    id list, so markers stay O(1) while :func:`verify_audit` can still
    match a restore to the exact snapshot cut it resumed from.
    """
    blob = "\n".join(sorted(json.dumps(fid) for fid in flow_ids))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


class AuditLog:
    """Rotating, fsync-batched JSON-lines decision log."""

    def __init__(
        self,
        path: str,
        *,
        fsync_every: int = 256,
        max_bytes: Optional[int] = None,
        keep: int = 4,
    ):
        if not path:
            raise ServiceError("audit path must be non-empty")
        if fsync_every < 1:
            raise ServiceError(
                f"fsync_every must be >= 1, got {fsync_every}"
            )
        if max_bytes is not None and max_bytes < 1024:
            raise ServiceError(
                f"max_bytes must be >= 1024, got {max_bytes}"
            )
        if keep < 1:
            raise ServiceError(f"keep must be >= 1, got {keep}")
        self.path = str(path)
        self.fsync_every = int(fsync_every)
        self.max_bytes = max_bytes
        self.keep = int(keep)
        self.records_written = 0
        self._unsynced = 0
        #: Next sequence number; continues across restarts by scanning
        #: the existing file tail, so the whole multi-launch history is
        #: one gap-free sequence.
        self._next_seq = self._scan_last_seq() + 1
        self._fh: Optional[IO[str]] = open(
            self.path, "a", encoding="utf-8"
        )
        if self._fh.tell() == 0:
            self._write_obj({"schema": AUDIT_SCHEMA})

    # ------------------------------------------------------------ io

    def _scan_last_seq(self) -> int:
        last = 0
        for candidate in (self.path,) + tuple(
            f"{self.path}.{i}" for i in range(1, self.keep + 1)
        ):
            try:
                with open(candidate, "r", encoding="utf-8") as fh:
                    for line in fh:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            obj = json.loads(line)
                        except json.JSONDecodeError:
                            continue  # torn tail line from a crash
                        seq = obj.get("seq")
                        if isinstance(seq, int) and seq > last:
                            last = seq
            except OSError:
                continue
        return last

    def _write_obj(self, obj: Dict[str, Any]) -> None:
        assert self._fh is not None
        self._fh.write(
            json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"
        )

    def _append(self, obj: Dict[str, Any]) -> int:
        if self._fh is None:
            raise ServiceError("audit log is closed")
        seq = self._next_seq
        self._next_seq += 1
        obj["seq"] = seq
        obj["ts"] = time.time()
        self._write_obj(obj)
        self.records_written += 1
        self._unsynced += 1
        if self._unsynced >= self.fsync_every:
            self.sync()
        if (
            self.max_bytes is not None
            and self._fh.tell() >= self.max_bytes
        ):
            self._rotate()
        return seq

    def sync(self) -> None:
        """Flush + fsync everything appended so far."""
        if self._fh is not None and self._unsynced:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._unsynced = 0

    def _rotate(self) -> None:
        assert self._fh is not None
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self._fh.close()
        self._unsynced = 0
        overflow = f"{self.path}.{self.keep}"
        if os.path.exists(overflow):
            os.unlink(overflow)
        for i in range(self.keep - 1, 0, -1):
            src = f"{self.path}.{i}"
            if os.path.exists(src):
                os.replace(src, f"{self.path}.{i + 1}")
        os.replace(self.path, f"{self.path}.1")
        self._fh = open(self.path, "a", encoding="utf-8")
        self._write_obj({"schema": AUDIT_SCHEMA})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None
            self._unsynced = 0

    def __enter__(self) -> "AuditLog":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------ records

    def record_admit(
        self,
        flow: FlowSpec,
        *,
        admitted: bool,
        reason: str = "",
        route: Optional[List[Hashable]] = None,
        headroom: Optional[int] = None,
        trace: Optional[Dict[str, str]] = None,
        error: Optional[str] = None,
    ) -> int:
        flow_obj: Dict[str, Any] = {
            "id": flow.flow_id,
            "cls": flow.class_name,
            "src": flow.source,
            "dst": flow.destination,
        }
        if flow.priority is not None:
            # Key only present when set, so priority-less logs stay
            # byte-identical to pre-priority recordings.
            flow_obj["pri"] = flow.priority
        obj: Dict[str, Any] = {
            "kind": "admit",
            "flow": flow_obj,
            "admitted": bool(admitted),
        }
        if reason:
            obj["reason"] = reason
        if route is not None:
            obj["route"] = list(route)
        if headroom is not None:
            obj["headroom"] = int(headroom)
        if trace is not None:
            obj["trace"] = trace
        if error is not None:
            obj["error"] = error
        return self._append(obj)

    def record_release(
        self,
        flow_id: Hashable,
        *,
        ok: bool,
        reason: Optional[str] = None,
        trace: Optional[Dict[str, str]] = None,
        error: Optional[str] = None,
    ) -> int:
        """``reason`` tags non-caller-initiated releases (e.g.
        ``"preempted"`` when the overload control plane evicted the
        flow); plain releases omit the key, keeping existing logs
        byte-identical."""
        obj: Dict[str, Any] = {
            "kind": "release",
            "flow_id": flow_id,
            "released": bool(ok),
        }
        if reason is not None:
            obj["reason"] = reason
        if trace is not None:
            obj["trace"] = trace
        if error is not None:
            obj["error"] = error
        return self._append(obj)

    def mark_snapshot(self, flow_ids: Iterable[Hashable]) -> int:
        """Durable pre-snapshot cut: fsync the log, then the marker.

        Call *before* writing the snapshot file — the ordering is what
        guarantees any snapshot found on disk is fully accounted for by
        the audit log.
        """
        ids = list(flow_ids)
        seq = self._append(
            {
                "kind": "snapshot",
                "established": len(ids),
                "digest": flow_set_digest(ids),
            }
        )
        self._unsynced = max(self._unsynced, 1)  # force the fsync
        self.sync()
        return seq

    def mark_restore(self, flow_ids: Iterable[Hashable]) -> int:
        """Record a startup restore of the given established set."""
        ids = list(flow_ids)
        seq = self._append(
            {
                "kind": "restore",
                "restored": len(ids),
                "digest": flow_set_digest(ids),
            }
        )
        self._unsynced = max(self._unsynced, 1)
        self.sync()
        return seq


# ------------------------------------------------------------------ #
# readers
# ------------------------------------------------------------------ #


def iter_audit(path: str, *, keep: int = 16) -> Iterator[Dict[str, Any]]:
    """Yield audit records oldest-first across rotated files.

    Header lines are skipped; a torn final line (crash mid-append) is
    ignored, matching the durability contract — an unsynced record was
    never guaranteed.
    """
    if not os.path.exists(path):
        raise ServiceError(f"audit log {path!r} does not exist")
    files = [
        f"{path}.{i}"
        for i in range(keep, 0, -1)
        if os.path.exists(f"{path}.{i}")
    ] + [path]
    for filename in files:
        with open(filename, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(obj, dict) or "seq" not in obj:
                    if (
                        isinstance(obj, dict)
                        and obj.get("schema") == AUDIT_SCHEMA
                    ):
                        continue  # per-file header
                    continue
                yield obj


def verify_audit(
    records: Iterable[Dict[str, Any]],
    snapshot: Optional[Union[str, Dict[str, Any]]] = None,
) -> Dict[str, Any]:
    """Replay an audit stream and check its integrity invariants.

    Checks: sequence numbers strictly increase with no gaps or
    duplicates; admits/releases replay to a consistent established set
    (no double-admit, no release of an absent flow); snapshot markers
    match the replayed set at their cut; restore markers resume from a
    set some earlier snapshot marker recorded.  When ``snapshot`` (a
    loaded ``repro-admission-snapshot/v1`` dict, or a path to one) is
    given, its flow set must match a durable snapshot marker.

    Returns a report dict; ``report["ok"]`` is True when every
    invariant held, with human-readable ``problems`` otherwise.
    """
    if isinstance(snapshot, str):
        with open(snapshot, "r", encoding="utf-8") as fh:
            snapshot = json.load(fh)
        if not isinstance(snapshot, dict):
            raise ServiceError(
                "snapshot file does not hold a snapshot object"
            )
    problems: List[str] = []
    established: set = set()
    marker_sets: Dict[str, frozenset] = {}
    last_seq: Optional[int] = None
    counts = {
        "records": 0,
        "admits": 0,
        "admitted": 0,
        "rejected": 0,
        "admit_errors": 0,
        "releases": 0,
        "released": 0,
        "release_errors": 0,
        "preempted": 0,
        "snapshots": 0,
        "restores": 0,
    }
    for record in records:
        counts["records"] += 1
        seq = record.get("seq")
        if not isinstance(seq, int):
            problems.append(f"record without integer seq: {record!r}")
            continue
        if last_seq is not None:
            if seq <= last_seq:
                problems.append(
                    f"seq {seq} repeats or goes backwards "
                    f"(after {last_seq})"
                )
            elif seq != last_seq + 1:
                problems.append(
                    f"seq gap: {last_seq} -> {seq} "
                    f"({seq - last_seq - 1} records missing)"
                )
        last_seq = seq
        kind = record.get("kind")
        if kind == "admit":
            counts["admits"] += 1
            fid = record.get("flow", {}).get("id")
            if record.get("error") is not None:
                counts["admit_errors"] += 1
            elif record.get("admitted"):
                counts["admitted"] += 1
                if fid in established:
                    problems.append(
                        f"seq {seq}: flow {fid!r} admitted twice"
                    )
                established.add(fid)
            else:
                counts["rejected"] += 1
        elif kind == "release":
            counts["releases"] += 1
            fid = record.get("flow_id")
            if record.get("released"):
                counts["released"] += 1
                if record.get("reason") == "preempted":
                    counts["preempted"] += 1
                if fid not in established:
                    problems.append(
                        f"seq {seq}: release of non-established "
                        f"flow {fid!r}"
                    )
                established.discard(fid)
            else:
                counts["release_errors"] += 1
        elif kind == "snapshot":
            counts["snapshots"] += 1
            digest = record.get("digest", "")
            expected = flow_set_digest(established)
            if digest != expected:
                problems.append(
                    f"seq {seq}: snapshot marker digest {digest!r} "
                    f"does not match the replayed established set"
                )
            if record.get("established") != len(established):
                problems.append(
                    f"seq {seq}: snapshot marker counts "
                    f"{record.get('established')} established, "
                    f"replay has {len(established)}"
                )
            marker_sets[digest] = frozenset(established)
        elif kind == "restore":
            counts["restores"] += 1
            digest = record.get("digest", "")
            if record.get("restored", 0) == 0 and digest == flow_set_digest(()):
                established = set()
            elif digest in marker_sets:
                established = set(marker_sets[digest])
            else:
                problems.append(
                    f"seq {seq}: restore from unknown snapshot "
                    f"digest {digest!r} (decisions lost before the "
                    f"durable cut?)"
                )
                established = set()
        else:
            problems.append(f"seq {seq}: unknown record kind {kind!r}")
    if snapshot is not None:
        snap_ids = frozenset(
            item.get("flow_id") for item in snapshot.get("flows", [])
        )
        digest = flow_set_digest(snap_ids)
        if digest not in marker_sets:
            problems.append(
                "snapshot file matches no durable snapshot marker "
                f"(digest {digest!r}, {len(snap_ids)} flows)"
            )
        elif marker_sets[digest] != snap_ids:  # pragma: no cover - digest
            problems.append("snapshot digest collision")  # collision guard
    return {
        "ok": not problems,
        "problems": problems,
        "last_seq": last_seq,
        "established": sorted(established, key=lambda x: json.dumps(x)),
        **counts,
    }


def audit_to_trace_events(
    records: Iterable[Dict[str, Any]],
) -> List["TraceEvent"]:
    """Convert an audit log into replayable workload trace events.

    Admitted flows become arrivals (with their decided route pinned),
    successful releases become departures; rejected/error records are
    dropped — replaying the result reproduces the accepted load.  Event
    times are the audit timestamps rebased to start at zero.
    """
    from ..workload.trace import TraceEvent

    rows: List[Dict[str, Any]] = []
    t0: Optional[float] = None
    for record in records:
        kind = record.get("kind")
        if kind not in ("admit", "release"):
            continue
        if kind == "admit" and not record.get("admitted"):
            continue
        if kind == "release" and not record.get("released"):
            continue
        if t0 is None:
            t0 = float(record.get("ts", 0.0))
        rows.append(record)
    events: List[TraceEvent] = []
    for record in rows:
        ts = float(record.get("ts", 0.0)) - (t0 or 0.0)
        if record["kind"] == "admit":
            flow = record["flow"]
            route = record.get("route")
            events.append(
                TraceEvent(
                    time=ts,
                    kind="arrival",
                    flow_id=flow["id"],
                    class_name=flow["cls"],
                    source=flow["src"],
                    destination=flow["dst"],
                    route=None if route is None else tuple(route),
                    priority=flow.get("pri"),
                )
            )
        else:
            events.append(
                TraceEvent(
                    time=ts,
                    kind="departure",
                    flow_id=record["flow_id"],
                )
            )
    return events
