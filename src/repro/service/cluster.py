"""Multi-core scale-out: a supervisor for sharded admission workers.

One asyncio supervisor process runs ``N`` admission-server workers
(real subprocesses, one event loop — and so one core — each), each
owning shard ``i`` of ``N`` of the verified slot capacity
(:class:`repro.admission.SlotShardController`, partitioned by
:func:`repro.admission.plan_slot_shards` so the shard quotas sum to
exactly the certified slots), plus the
:class:`~repro.service.router.ClusterRouter` front door on the public
socket.  The wire protocol is unchanged; clients cannot tell a cluster
from a single server except through the extra ``cluster`` discovery op.

Fault handling:

* a worker that dies (``kill -9`` included) is restarted automatically;
  it re-admits its shard's flows from its own crash-safe snapshot on
  their original routes before taking traffic — the single-server
  survivor guarantee, per shard;
* per-worker snapshots are merged into one cluster **manifest**
  (:func:`~repro.service.snapshots.merge_cluster_snapshot`) on a
  timer, on the ``snapshot`` op, and at drain; the manifest is itself
  a valid ``repro-admission-snapshot/v1`` file, so a whole-cluster
  restart — even with a different ``--workers`` — re-partitions and
  re-admits every survivor (:func:`split_cluster_snapshot`);
* SIGTERM drains gracefully: the front door closes, workers drain and
  write final shard snapshots, and one last manifest merge lands
  before exit.
"""

from __future__ import annotations

import asyncio
import logging
import os
import signal
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import ServiceError
from ..faults.degraded import BackoffPolicy
from . import protocol
from .client import AsyncServiceClient
from .http import MetricsEndpoint
from .router import (
    DEFAULT_RING_SALT,
    DEFAULT_VIRTUAL_NODES,
    ClusterRouter,
    HashRing,
)
from .snapshots import (
    SnapshotStore,
    merge_cluster_snapshot,
    split_cluster_snapshot,
)

__all__ = [
    "ClusterConfig",
    "ClusterSupervisor",
    "worker_serve_command",
]

logger = logging.getLogger("repro.service")

#: Argv factory: (worker_index, worker_socket, worker_snapshot) -> argv.
WorkerCommand = Callable[[int, str, Optional[str]], List[str]]


def worker_serve_command(
    *,
    shard_count: int,
    topology: str = "nsfnet",
    alpha: float = 0.3,
    max_batch: int = 1024,
    max_delay_ms: float = 2.0,
    snapshot_interval: Optional[float] = None,
    high_water: Optional[int] = None,
    low_water: Optional[int] = None,
    audit_path: Optional[str] = None,
    extra_args: Sequence[str] = (),
) -> WorkerCommand:
    """Standard worker argv factory over the ``repro-ubac serve`` CLI.

    Each worker is the ordinary single-socket server plus the hidden
    ``--shard-index/--shard-count`` pair that swaps its controller for
    a :class:`~repro.admission.SlotShardController`.  An audit log is
    per-worker state: worker ``i`` appends to ``<audit_path>.w<i>``
    (each shard log verifies independently with ``repro-ubac audit``).
    """

    def command(
        index: int, socket_path: str, snapshot_path: Optional[str]
    ) -> List[str]:
        argv = [
            sys.executable,
            "-m",
            "repro.experiments.cli",
            "serve",
            "--socket",
            socket_path,
            "--topology",
            topology,
            "--alpha",
            str(alpha),
            "--max-batch",
            str(max_batch),
            "--max-delay-ms",
            str(max_delay_ms),
            "--shard-index",
            str(index),
            "--shard-count",
            str(shard_count),
        ]
        if snapshot_path is not None:
            argv += ["--snapshot", snapshot_path]
            if snapshot_interval is not None:
                argv += ["--snapshot-interval", str(snapshot_interval)]
        if high_water is not None:
            argv += ["--high-water", str(high_water)]
        if low_water is not None:
            argv += ["--low-water", str(low_water)]
        if audit_path is not None:
            argv += ["--audit", f"{audit_path}.w{index}"]
        argv += list(extra_args)
        return argv

    return command


@dataclass(frozen=True)
class ClusterConfig:
    """Tuning knobs of one :class:`ClusterSupervisor`.

    ``socket_path`` is the public front door (Unix socket); worker
    ``i`` listens on ``<socket_path>.w<i>`` and snapshots to
    ``<snapshot_path>.w<i>``, with the merged cluster manifest at
    ``snapshot_path`` itself.
    """

    workers: int = 2
    socket_path: str = ""
    snapshot_path: Optional[str] = None
    snapshot_interval: Optional[float] = None
    virtual_nodes: int = DEFAULT_VIRTUAL_NODES
    ring_salt: str = DEFAULT_RING_SALT
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES
    link_max_pending: int = 16384
    metrics_host: str = "127.0.0.1"
    metrics_port: Optional[int] = None
    restart_delay: float = 0.2
    startup_timeout: float = 60.0
    drain_grace: float = 0.0
    #: ``"v2"`` (default): the front door accepts v2 upgrades and the
    #: worker links propose v2 per (re)connect; ``"v1"`` pins both
    #: sides of the cluster to the line protocol.
    protocol: str = "v2"

    def __post_init__(self):
        if self.workers < 1:
            raise ServiceError(
                f"need at least one worker, got {self.workers}"
            )
        if not self.socket_path:
            raise ServiceError("cluster needs a front-door socket path")
        if (
            self.snapshot_interval is not None
            and self.snapshot_path is None
        ):
            raise ServiceError("snapshot_interval requires snapshot_path")
        if (
            self.snapshot_interval is not None
            and self.snapshot_interval <= 0
        ):
            raise ServiceError("snapshot_interval must be positive")
        if self.drain_grace < 0:
            raise ServiceError("drain_grace must be >= 0")
        if self.protocol not in ("v1", "v2"):
            raise ServiceError(
                f"protocol must be 'v1' or 'v2', got {self.protocol!r}"
            )

    def worker_socket(self, index: int) -> str:
        return f"{self.socket_path}.w{index}"

    def worker_snapshot(self, index: int) -> Optional[str]:
        if self.snapshot_path is None:
            return None
        return f"{self.snapshot_path}.w{index}"


@dataclass
class _Worker:
    """Book-keeping for one worker subprocess."""

    index: int
    socket_path: str
    snapshot_path: Optional[str]
    proc: Optional["asyncio.subprocess.Process"] = None
    launches: int = 0
    monitor: Optional["asyncio.Task"] = field(default=None, repr=False)

    @property
    def log_path(self) -> str:
        return self.socket_path + ".serve.log"

    @property
    def pid(self) -> Optional[int]:
        return None if self.proc is None else self.proc.pid


class ClusterSupervisor:
    """Run N shard workers plus the front-door router, restart on death."""

    def __init__(
        self,
        config: ClusterConfig,
        worker_command: WorkerCommand,
    ):
        self.config = config
        self.worker_command = worker_command
        self.ring = HashRing(
            config.workers,
            virtual_nodes=config.virtual_nodes,
            salt=config.ring_salt,
        )
        self.workers = [
            _Worker(
                index=i,
                socket_path=config.worker_socket(i),
                snapshot_path=config.worker_snapshot(i),
            )
            for i in range(config.workers)
        ]
        self.router = ClusterRouter(
            [w.socket_path for w in self.workers],
            ring=self.ring,
            max_frame_bytes=config.max_frame_bytes,
            link_max_pending=config.link_max_pending,
            on_snapshot=(
                self._snapshot_op
                if config.snapshot_path is not None
                else None
            ),
            extra_stats=self._extra_stats,
            negotiate_v2=config.protocol != "v1",
            link_protocol=config.protocol,
        )
        self.manifest_store: Optional[SnapshotStore] = None
        if config.snapshot_path is not None:
            self.manifest_store = SnapshotStore(config.snapshot_path)
        self.metrics_endpoint: Optional[MetricsEndpoint] = None
        self.restarts = 0
        self.merges = 0
        self.restored = 0
        self._draining = False
        self._stopped: Optional[asyncio.Event] = None
        self._merge_task: Optional["asyncio.Task"] = None
        self._merge_lock: Optional[asyncio.Lock] = None

    # -------------------------------------------------------------- #
    # lifecycle
    # -------------------------------------------------------------- #

    async def start(self) -> int:
        """Split any manifest, launch every worker, open the front
        door; returns the number of flows restored cluster-wide."""
        self._stopped = asyncio.Event()
        self._merge_lock = asyncio.Lock()
        self._prepare_worker_snapshots()
        await asyncio.gather(
            *(self._launch(worker) for worker in self.workers)
        )
        self.restored = await self._count_restored()
        await self.router.start_unix(self.config.socket_path)
        if self.config.metrics_port is not None:
            self.metrics_endpoint = MetricsEndpoint(
                self.router,  # type: ignore[arg-type]
                host=self.config.metrics_host,
                port=self.config.metrics_port,
            )
            await self.metrics_endpoint.start()
        if (
            self.manifest_store is not None
            and self.config.snapshot_interval is not None
        ):
            self._merge_task = asyncio.get_running_loop().create_task(
                self._merge_loop(), name="repro-cluster-merge"
            )
        logger.info(
            "cluster of %d workers serving on %s (restored %d flows)",
            self.config.workers,
            self.config.socket_path,
            self.restored,
        )
        return self.restored

    def install_signal_handlers(self) -> None:
        """Drain gracefully on SIGTERM/SIGINT (no-op where unsupported)."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig,
                    lambda: asyncio.get_running_loop().create_task(
                        self.drain()
                    ),
                )
            except (NotImplementedError, ValueError, RuntimeError):
                return

    async def serve_forever(self) -> None:
        if self._stopped is None:
            raise ServiceError("cluster is not started")
        await self._stopped.wait()

    async def drain(self) -> None:
        """Graceful shutdown: front door first, then the workers, then
        one final manifest merge."""
        if self._draining:
            return
        self._draining = True
        if self.config.drain_grace > 0:
            await asyncio.sleep(self.config.drain_grace)
        if self._merge_task is not None:
            self._merge_task.cancel()
            await asyncio.gather(
                self._merge_task, return_exceptions=True
            )
            self._merge_task = None
        await self.router.stop()
        for worker in self.workers:
            if worker.monitor is not None:
                worker.monitor.cancel()
        await asyncio.gather(
            *(
                worker.monitor
                for worker in self.workers
                if worker.monitor is not None
            ),
            return_exceptions=True,
        )
        for worker in self.workers:
            if worker.proc is not None and worker.proc.returncode is None:
                try:
                    worker.proc.terminate()
                except ProcessLookupError:
                    pass
        await asyncio.gather(
            *(
                worker.proc.wait()
                for worker in self.workers
                if worker.proc is not None
            ),
            return_exceptions=True,
        )
        # Workers wrote final shard snapshots during their drain;
        # merge them into the authoritative cluster cut.
        if self.manifest_store is not None:
            try:
                await self._merge_once()
            except ServiceError as exc:
                logger.error("final manifest merge failed: %s", exc)
        if self.metrics_endpoint is not None:
            await self.metrics_endpoint.stop()
            self.metrics_endpoint = None
        if self._stopped is not None:
            self._stopped.set()
        logger.info(
            "cluster on %s drained", self.config.socket_path
        )

    async def stop(self) -> None:
        """Alias for :meth:`drain` (test/operator convenience)."""
        await self.drain()

    # -------------------------------------------------------------- #
    # worker processes
    # -------------------------------------------------------------- #

    def _prepare_worker_snapshots(self) -> None:
        """Split the manifest into shard snapshots when needed.

        A worker restarting in place restores from its own (newest)
        shard snapshot, so the split only runs when a shard file is
        missing or the worker count changed — i.e. a fresh host, a
        resize, or a single-server snapshot being scaled out.  In the
        resize case flows are re-assigned by the ring (their committed
        routes stay pinned either way).
        """
        if self.manifest_store is None or not self.manifest_store.exists():
            return
        manifest = self.manifest_store.load()
        assert manifest is not None
        stored = manifest.get("cluster", {})
        resized = (
            not isinstance(stored, dict)
            or stored.get("workers") != self.config.workers
        )
        missing = any(
            worker.snapshot_path is not None
            and not os.path.exists(worker.snapshot_path)
            for worker in self.workers
        )
        if not (resized or missing):
            return
        shards = split_cluster_snapshot(
            manifest, self.config.workers, self.ring.worker_of
        )
        for worker, shard in zip(self.workers, shards):
            if worker.snapshot_path is not None:
                SnapshotStore(worker.snapshot_path).write(shard)
        logger.info(
            "split manifest %s into %d shard snapshots (%s)",
            self.manifest_store.path,
            self.config.workers,
            "resize" if resized else "missing shard files",
        )

    async def _launch(self, worker: _Worker) -> None:
        """Spawn one worker subprocess and wait until it is healthy."""
        argv = self.worker_command(
            worker.index, worker.socket_path, worker.snapshot_path
        )
        env = dict(os.environ)
        src = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        # Log to a file, not a pipe: a chatty worker must never block
        # on a full pipe that nobody drains.
        with open(worker.log_path, "wb") as log_fh:
            worker.proc = await asyncio.create_subprocess_exec(
                *argv,
                env=env,
                stdout=log_fh,
                stderr=asyncio.subprocess.STDOUT,
            )
        worker.launches += 1
        await self._wait_healthy(worker)
        worker.monitor = asyncio.get_running_loop().create_task(
            self._monitor(worker),
            name=f"repro-cluster-worker-{worker.index}",
        )

    async def _wait_healthy(self, worker: _Worker) -> Dict[str, Any]:
        deadline = time.monotonic() + self.config.startup_timeout
        last_error: Optional[Exception] = None
        while time.monotonic() < deadline:
            proc = worker.proc
            if proc is not None and proc.returncode is not None:
                raise ServiceError(
                    f"worker {worker.index} exited with "
                    f"{proc.returncode} during startup "
                    f"(see {worker.log_path})"
                )
            try:
                client = await AsyncServiceClient.connect_unix(
                    worker.socket_path,
                    backoff=BackoffPolicy(base=0.05, max_retries=0),
                )
                try:
                    return await client.health()
                finally:
                    await client.close()
            except (ServiceError, OSError) as exc:
                last_error = exc
                await asyncio.sleep(0.05)
        raise ServiceError(
            f"worker {worker.index} did not become healthy within "
            f"{self.config.startup_timeout:g} s: {last_error}"
        )

    async def _monitor(self, worker: _Worker) -> None:
        """Restart the worker whenever its process dies un-drained."""
        try:
            while not self._draining:
                proc = worker.proc
                if proc is None:
                    return
                code = await proc.wait()
                if self._draining:
                    return
                self.restarts += 1
                logger.warning(
                    "worker %d (pid %s) died with %s; restarting",
                    worker.index,
                    proc.pid,
                    code,
                )
                await asyncio.sleep(self.config.restart_delay)
                # Relaunch without re-registering a monitor task —
                # this loop keeps watching the new process.  The
                # worker restores its shard snapshot before its socket
                # answers, so survivors are back on their original
                # routes before the router reconnects.
                argv = self.worker_command(
                    worker.index,
                    worker.socket_path,
                    worker.snapshot_path,
                )
                env = dict(os.environ)
                src = os.path.dirname(
                    os.path.dirname(
                        os.path.dirname(os.path.abspath(__file__))
                    )
                )
                env["PYTHONPATH"] = (
                    src + os.pathsep + env.get("PYTHONPATH", "")
                )
                with open(worker.log_path, "wb") as log_fh:
                    worker.proc = await asyncio.create_subprocess_exec(
                        *argv,
                        env=env,
                        stdout=log_fh,
                        stderr=asyncio.subprocess.STDOUT,
                    )
                worker.launches += 1
                await self._wait_healthy(worker)
        except asyncio.CancelledError:
            pass

    async def _count_restored(self) -> int:
        """Sum of flows the workers restored from their snapshots."""
        stats = await self._worker_stats_direct()
        return sum(
            int(s.get("restored", 0)) for s in stats if s is not None
        )

    async def _worker_stats_direct(
        self,
    ) -> List[Optional[Dict[str, Any]]]:
        """Per-worker stats over short-lived direct connections (used
        before the router's links are up)."""
        out: List[Optional[Dict[str, Any]]] = []
        for worker in self.workers:
            try:
                client = await AsyncServiceClient.connect_unix(
                    worker.socket_path,
                    backoff=BackoffPolicy(base=0.05, max_retries=2),
                )
                try:
                    out.append(await client.stats())
                finally:
                    await client.close()
            except (ServiceError, OSError):
                out.append(None)
        return out

    def _extra_stats(self) -> Dict[str, Any]:
        """Supervisor contribution to the aggregated ``stats`` op."""
        return {
            "worker_restarts": self.restarts,
            "manifest_merges": self.merges,
            "cluster_restored": self.restored,
            "worker_pids": [w.pid for w in self.workers],
            "worker_launches": [w.launches for w in self.workers],
        }

    # -------------------------------------------------------------- #
    # snapshot merging
    # -------------------------------------------------------------- #

    async def _snapshot_op(self) -> Dict[str, Any]:
        """The router's ``snapshot`` op: fresh shard cuts, one merge."""
        path, flows = await self._merge_once(trigger_workers=True)
        return {"path": path, "flows": flows}

    async def _merge_loop(self) -> None:
        assert self.config.snapshot_interval is not None
        try:
            while True:
                await asyncio.sleep(self.config.snapshot_interval)
                try:
                    await self._merge_once(trigger_workers=True)
                except ServiceError as exc:
                    logger.error("manifest merge failed: %s", exc)
        except asyncio.CancelledError:
            pass

    async def _merge_once(
        self, *, trigger_workers: bool = False
    ) -> Any:
        """Write one merged manifest; returns ``(path, n_flows)``.

        With ``trigger_workers`` the workers snapshot first (through
        the router links, so each cut is taken on the worker's own
        loop); a dead worker's last on-disk shard snapshot still
        participates — crash-safe by construction.
        """
        assert self.manifest_store is not None
        assert self._merge_lock is not None
        async with self._merge_lock:
            if trigger_workers:
                await self.router._fan_out("snapshot")
            loop = asyncio.get_running_loop()
            shards = await loop.run_in_executor(None, self._read_shards)
            manifest = merge_cluster_snapshot(shards)
            await loop.run_in_executor(
                None, self.manifest_store.write, manifest
            )
            self.merges += 1
            return self.manifest_store.path, len(manifest["flows"])

    def _read_shards(self) -> List[Optional[Dict[str, Any]]]:
        shards: List[Optional[Dict[str, Any]]] = []
        for worker in self.workers:
            if worker.snapshot_path is None or not os.path.exists(
                worker.snapshot_path
            ):
                shards.append(None)
                continue
            shards.append(SnapshotStore(worker.snapshot_path).load())
        return shards
