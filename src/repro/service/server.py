"""Asyncio admission-control server.

:class:`AdmissionService` fronts any admission controller with the
newline-delimited JSON protocol of :mod:`repro.service.protocol` over
TCP or a Unix socket.  Its request path is deliberately thin: the
per-connection read loop parses each frame and hands admits/releases to
the :class:`~repro.service.coalescer.MicroBatchCoalescer` **synchronously,
in frame order** (submission happens before the loop yields, so one
connection's requests are decided in exactly the order they were sent),
then a small task per request awaits the decision and writes the
response.

Around that core:

* **backpressure with load shedding** — once the coalescer backlog
  crosses ``high_water`` pending ops, admit/release/batch requests are
  answered with an explicit ``overloaded`` error (never silently
  dropped) until the backlog drains below ``low_water`` (hysteresis);
* **graceful drain** — SIGTERM/SIGINT stop the listener, let in-flight
  requests finish, flush the coalescer, write a final snapshot, and
  close every connection;
* **crash-safe periodic snapshots** — the established-flow set (with
  committed routes pinned) is atomically persisted every
  ``snapshot_interval`` seconds, so a restarted server re-admits its
  flows on their original paths before accepting new traffic.
"""

from __future__ import annotations

import asyncio
import logging
import os
import signal
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from ..admission.base import AdmissionController, AdmissionDecision
from ..control.governor import GovernorSample
from ..errors import (
    AdmissionError,
    ProtocolError,
    ReproError,
    ServiceError,
    TrafficError,
)
from ..obs import (
    OBS,
    SLOConfig,
    SLOTracker,
    TraceContext,
    new_span_id,
    to_prometheus_text,
    trace_context_from_obj,
)
from . import protocol
from .audit import AuditLog
from .coalescer import (
    BULK_OP_ADMIT,
    BULK_OP_RELEASE,
    BulkSlots,
    MicroBatchCoalescer,
    _Op,
)
from .http import MetricsEndpoint
from .snapshots import SnapshotStore, service_snapshot

__all__ = ["ServiceConfig", "AdmissionService"]

logger = logging.getLogger("repro.service")


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one :class:`AdmissionService`.

    Attributes
    ----------
    max_batch / max_delay:
        Coalescing window: requests arriving within ``max_delay``
        seconds (up to ``max_batch`` of them) are decided by one batch
        kernel call.
    high_water / low_water:
        Backlog hysteresis (pending coalescer ops).  At or above
        ``high_water`` the server sheds admit/release/batch requests
        with ``overloaded`` responses; shedding stops once the backlog
        drains to ``low_water`` or below.
    max_frame_bytes:
        Per-line protocol frame ceiling; an oversized frame earns a
        ``frame_too_large`` error and a clean connection close.
    snapshot_path / snapshot_interval:
        Crash-safe snapshot destination and period in seconds (None
        disables periodic writes; the final drain snapshot and the
        explicit ``snapshot`` op still honour ``snapshot_path``).
    metrics_host / metrics_port:
        Bind address of the HTTP telemetry endpoint
        (``/metrics``, ``/healthz``, ``/stats``).  ``None`` (default)
        disables it; ``0`` picks an ephemeral port.
    audit_path / audit_fsync_every / audit_max_bytes / audit_keep:
        Decision audit log (:mod:`repro.service.audit`): destination,
        fsync batching, and rotation policy.  ``None`` path disables
        auditing.
    slo:
        Rolling-window latency/shed objectives; ``None`` tracks against
        the :class:`~repro.obs.slo.SLOConfig` defaults but only while
        observability is enabled.
    drain_grace:
        Seconds the drain sequence keeps the listener (and
        ``/healthz``) answering *after* flipping to ``draining`` —
        the window a load balancer needs to observe the flip and stop
        routing before connections close.
    negotiate_v2:
        Accept ``hello`` upgrades to the binary v2 framing (default).
        ``False`` makes the server behave exactly like a pre-v2 build:
        ``hello`` earns ``unknown_op`` and v2-capable clients fall back
        to v1 transparently — the knob behind ``serve --protocol v1``
        and the back-compat tests.
    governor_interval:
        Seconds between alpha-governor control steps (only meaningful
        when an :class:`~repro.control.AlphaGovernor` is attached to the
        service; see :mod:`repro.control`).
    """

    max_batch: int = 1024
    max_delay: float = 0.002
    high_water: int = 8192
    low_water: int = 4096
    max_frame_bytes: int = protocol.MAX_FRAME_BYTES
    snapshot_path: Optional[str] = None
    snapshot_interval: Optional[float] = None
    metrics_host: str = "127.0.0.1"
    metrics_port: Optional[int] = None
    audit_path: Optional[str] = None
    audit_fsync_every: int = 256
    audit_max_bytes: Optional[int] = None
    audit_keep: int = 4
    slo: Optional[SLOConfig] = None
    negotiate_v2: bool = True
    drain_grace: float = 0.0
    governor_interval: float = 0.05
    #: Shard index when this server is one worker of a cluster (set by
    #: the supervisor; surfaces in ``stats`` for aggregation, has no
    #: behavioural effect here — the shard quota lives in the
    #: controller).
    worker_index: Optional[int] = None

    def __post_init__(self):
        if self.low_water > self.high_water:
            raise ServiceError(
                f"low_water {self.low_water} must not exceed "
                f"high_water {self.high_water}"
            )
        if self.high_water < 1:
            raise ServiceError("high_water must be >= 1")
        if (
            self.snapshot_interval is not None
            and self.snapshot_interval <= 0
        ):
            raise ServiceError("snapshot_interval must be positive")
        if (
            self.snapshot_interval is not None
            and self.snapshot_path is None
        ):
            raise ServiceError(
                "snapshot_interval requires snapshot_path"
            )
        if self.metrics_port is not None and not (
            0 <= self.metrics_port <= 65535
        ):
            raise ServiceError(
                f"metrics_port must be in [0, 65535], "
                f"got {self.metrics_port}"
            )
        if self.drain_grace < 0:
            raise ServiceError("drain_grace must be >= 0")
        if self.governor_interval <= 0:
            raise ServiceError("governor_interval must be positive")


class _ReqTele:
    """Per-request telemetry scratchpad (absent when telemetry is off).

    Carries the stage timestamps (receive, parsed, write-start) and the
    wire trace context / server span id so :meth:`AdmissionService.
    _finish_telemetry` can emit one span per request with per-stage
    timings without touching the telemetry-off fast path.
    """

    __slots__ = ("t_recv", "t_parsed", "t_write", "op", "trace", "span_hex")

    def __init__(self, t_recv: float):
        self.t_recv = t_recv
        self.t_parsed = t_recv
        self.t_write = t_recv
        self.op = "?"
        self.trace: Optional[TraceContext] = None
        self.span_hex: Optional[str] = None


class _Conn:
    """Per-connection state: stream pair, write lock, in-flight ids,
    and the negotiated protocol generation (1 = JSON lines, 2 = binary
    frames)."""

    __slots__ = (
        "reader",
        "writer",
        "lock",
        "inflight",
        "proto",
        "saw_request",
    )

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ):
        self.reader = reader
        self.writer = writer
        self.lock = asyncio.Lock()
        self.inflight: Set[protocol.RequestId] = set()
        self.proto = 1
        self.saw_request = False


class AdmissionService:
    """Serve admission control for one controller over one socket."""

    def __init__(
        self,
        controller: AdmissionController,
        config: ServiceConfig = ServiceConfig(),
        *,
        governor: Optional[Any] = None,
        preemptor: Optional[Any] = None,
    ):
        self.controller = controller
        self.config = config
        self.coalescer = MicroBatchCoalescer(
            controller,
            max_batch=config.max_batch,
            max_delay=config.max_delay,
        )
        #: Optional :class:`~repro.control.AlphaGovernor` driving the
        #: effective alpha along a pre-certified ladder; ``None`` keeps
        #: behaviour bit-identical to a governor-less build.
        self.governor = governor
        self._governor_task: Optional["asyncio.Task"] = None
        if preemptor is not None:
            self.coalescer.preemptor = preemptor
        self.store: Optional[SnapshotStore] = None
        if config.snapshot_path is not None:
            if getattr(controller, "restore", None) is None:
                raise ServiceError(
                    f"controller {type(controller).__name__} has no "
                    "snapshot support; drop snapshot_path or use the "
                    "utilization controller"
                )
            self.store = SnapshotStore(config.snapshot_path)
        self.audit: Optional[AuditLog] = None
        if config.audit_path is not None:
            self.audit = AuditLog(
                config.audit_path,
                fsync_every=config.audit_fsync_every,
                max_bytes=config.audit_max_bytes,
                keep=config.audit_keep,
            )
            self.coalescer.audit = self.audit
        #: Rolling-window SLO tracker; fed only while telemetry is on
        #: (an explicit ``slo`` config, or observability enabled) so
        #: the telemetry-off request path stays unchanged.
        self.slo = SLOTracker(config.slo)
        self._slo_on = config.slo is not None
        self.metrics_endpoint: Optional[MetricsEndpoint] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None
        self._snapshot_task: Optional["asyncio.Task"] = None
        self._connections: Set[asyncio.StreamWriter] = set()
        self._request_tasks: Set["asyncio.Task"] = set()
        self._shedding = False
        self._draining = False
        self._where = "?"
        self._started_at = time.time()
        # Lifetime counters surfaced by the ``stats`` op.
        self.counts: Dict[str, int] = {
            "requests": 0,
            "admitted": 0,
            "rejected": 0,
            "released": 0,
            "errors": 0,
            "shed": 0,
            "connections": 0,
            "snapshots": 0,
            "restored": 0,
            "governor_moves": 0,
        }

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start_unix(self, path: str) -> int:
        """Bind a Unix socket; returns the number of restored flows."""
        import os

        restored = self._restore()
        if os.path.exists(path):
            os.unlink(path)  # stale socket from a killed predecessor
        self._server = await asyncio.start_unix_server(
            self._on_connection,
            path=path,
            limit=self.config.max_frame_bytes,
        )
        self._where = path
        await self._started()
        return restored

    async def start_tcp(self, host: str, port: int) -> int:
        """Bind a TCP listener; returns the number of restored flows."""
        restored = self._restore()
        self._server = await asyncio.start_server(
            self._on_connection,
            host=host,
            port=port,
            limit=self.config.max_frame_bytes,
        )
        self._where = f"{host}:{self.port}"
        await self._started()
        return restored

    @property
    def port(self) -> Optional[int]:
        """Bound TCP port (None for Unix sockets)."""
        if self._server is None or not self._server.sockets:
            return None
        name = self._server.sockets[0].getsockname()
        return name[1] if isinstance(name, tuple) else None

    def _restore(self) -> int:
        """Crash recovery: re-admit the last durable snapshot (pinned
        routes) before the listener opens."""
        if self.store is None:
            return 0
        restored = self.store.restore_into(self.controller)
        self.counts["restored"] = restored
        if restored:
            logger.info(
                "restored %d flows from %s", restored, self.store.path
            )
        return restored

    async def _started(self) -> None:
        self._started_at = time.time()
        self._stopped = asyncio.Event()
        self.coalescer.start()
        if self.audit is not None:
            # Every launch marks what it resumed from, so the audit
            # sequence stays verifiable across restarts (including the
            # empty set on a fresh start).
            self.audit.mark_restore(
                f.flow_id for f in self.controller.established_flows
            )
        if (
            self.store is not None
            and self.config.snapshot_interval is not None
        ):
            self._snapshot_task = asyncio.get_running_loop().create_task(
                self._snapshot_loop(), name="repro-service-snapshots"
            )
        if self.governor is not None:
            self._governor_task = asyncio.get_running_loop().create_task(
                self._governor_loop(), name="repro-service-governor"
            )
        if self.config.metrics_port is not None:
            self.metrics_endpoint = MetricsEndpoint(
                self,
                host=self.config.metrics_host,
                port=self.config.metrics_port,
            )
            await self.metrics_endpoint.start()
        logger.info("admission service listening on %s", self._where)

    def install_signal_handlers(self) -> None:
        """Drain gracefully on SIGTERM/SIGINT (no-op where unsupported)."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self._request_drain)
            except (NotImplementedError, ValueError, RuntimeError):
                # Non-main thread or platform without signal support
                # (asyncio wraps the set_wakeup_fd ValueError in a
                # RuntimeError): callers fall back to stop()/drain().
                return

    def _request_drain(self) -> None:
        asyncio.get_running_loop().create_task(self.drain())

    async def serve_forever(self) -> None:
        """Block until :meth:`drain` completes."""
        if self._stopped is None:
            raise ServiceError("service is not started")
        await self._stopped.wait()

    async def drain(self) -> None:
        """Graceful shutdown: stop accepting, answer everything
        in-flight, flush the coalescer, snapshot, close."""
        if self._draining:
            return
        self._draining = True
        if self.config.drain_grace > 0:
            # The draining state is already visible (health op and
            # /healthz answer 503, admission ops get "unavailable");
            # hold the listeners open so load balancers can observe
            # the flip before connections start closing.
            await asyncio.sleep(self.config.drain_grace)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._snapshot_task is not None:
            self._snapshot_task.cancel()
            await asyncio.gather(
                self._snapshot_task, return_exceptions=True
            )
            self._snapshot_task = None
        if self._governor_task is not None:
            self._governor_task.cancel()
            await asyncio.gather(
                self._governor_task, return_exceptions=True
            )
            self._governor_task = None
        # Let every already-parsed request reach its response.  The
        # read loops stay live until the writers close below, so a
        # request parsed after one gather snapshot can spawn a new
        # task — loop until the set is genuinely empty (new arrivals
        # are answered "unavailable", so each pass terminates fast).
        while self._request_tasks:
            await asyncio.gather(
                *tuple(self._request_tasks), return_exceptions=True
            )
        await self.coalescer.flush()
        await self.coalescer.stop()
        self.write_snapshot()
        if self.audit is not None:
            self.audit.close()
        if self.metrics_endpoint is not None:
            await self.metrics_endpoint.stop()
            self.metrics_endpoint = None
        for writer in tuple(self._connections):
            _close_writer(writer)
        self._connections.clear()
        if self._stopped is not None:
            self._stopped.set()
        logger.info("admission service on %s drained", self._where)

    async def stop(self) -> None:
        """Alias for :meth:`drain` (test/operator convenience)."""
        await self.drain()

    # ------------------------------------------------------------------ #
    # snapshots
    # ------------------------------------------------------------------ #

    def write_snapshot(self) -> Optional[str]:
        """Persist current state now; returns the path (None if no
        store is configured)."""
        if self.store is None:
            return None
        snapshot = service_snapshot(self.controller)
        self._mark_snapshot(snapshot)
        self.store.write(snapshot)
        self.counts["snapshots"] += 1
        if OBS.enabled:
            OBS.registry.counter("repro_service_snapshots_total").inc()
        return self.store.path

    def _mark_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Make the audit log durable *before* the snapshot write.

        Ordering is the crash-safety invariant: the marker (and every
        decision before it) hits disk first, so a snapshot found after
        ``kill -9`` is always fully accounted for by the audit log.
        """
        if self.audit is not None:
            self.audit.mark_snapshot(
                item["flow_id"] for item in snapshot["flows"]
            )

    async def _snapshot_loop(self) -> None:
        assert self.config.snapshot_interval is not None
        assert self.store is not None
        loop = asyncio.get_running_loop()
        try:
            while True:
                await asyncio.sleep(self.config.snapshot_interval)
                # The snapshot dict is built synchronously — the
                # controller only mutates inside the coalescer's
                # (await-free) batch step, so this is a consistent
                # cut — but serialization + fsync go to an executor
                # so a large established set never stalls request
                # handling for the duration of the disk write.
                snapshot = service_snapshot(self.controller)
                # Audit marker first (synchronously, same consistent
                # cut): its fsync must complete before the snapshot
                # replace can make the cut discoverable.
                self._mark_snapshot(snapshot)
                write = loop.run_in_executor(
                    None, self.store.write, snapshot
                )
                try:
                    await asyncio.shield(write)
                except asyncio.CancelledError:
                    # Cancellation mid-write (drain): let the executor
                    # finish so it cannot race drain's final snapshot
                    # onto the same tmp file.
                    await write
                    raise
                self.counts["snapshots"] += 1
                if OBS.enabled:
                    OBS.registry.counter(
                        "repro_service_snapshots_total"
                    ).inc()
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------------------ #
    # adaptive overload control (alpha governor)
    # ------------------------------------------------------------------ #

    def governor_sample(self) -> GovernorSample:
        """Current congestion sample fed to the alpha governor.

        *Queue delay* is the backlog expressed in coalescing windows —
        ``pending / max_batch`` batches, each costing up to
        ``max_delay`` seconds — a deterministic proxy for how long a
        request admitted now has already waited.  *Headroom* is the
        free fraction of the **verified** slot capacity (not the
        degraded/effective one), so a DEC move never feeds back into
        its own pressure signal.
        """
        pending = self.coalescer.pending
        per_batch = max(self.config.max_delay, 1e-4)
        queue_delay = (pending / self.config.max_batch) * per_batch
        return GovernorSample(
            queue_delay=queue_delay,
            headroom=self._verified_headroom(),
        )

    def _verified_headroom(self) -> float:
        """Free fraction of the certified slot capacity (1.0 when the
        controller holds no slot ledger)."""
        ledger = getattr(self.controller, "ledger", None)
        if ledger is None:
            return 1.0
        total = used = 0
        for cls in self.controller.registry.realtime_classes():
            total += int(ledger.verified_slots(cls.name).sum())
            used += int(ledger.used_view(cls.name).sum())
        if total <= 0:
            return 1.0
        return max(0.0, (total - used) / total)

    def governor_step(self) -> Optional[float]:
        """Run one governor observation; applies any rung move to the
        controller.  Returns the newly applied degradation factor, or
        None when the governor held.  Synchronous (no awaits), so the
        ledger transition is atomic with respect to batch decisions."""
        governor = self.governor
        if governor is None:
            return None
        factor = governor.observe(self.governor_sample())
        if factor is None:
            return None
        if governor.at_top:
            self.controller.exit_degraded_mode()
        else:
            self.controller.enter_degraded_mode(factor)
        self.counts["governor_moves"] += 1
        if OBS.enabled:
            reg = OBS.registry
            reg.counter("repro_service_governor_moves_total").inc()
            reg.gauge("repro_service_effective_alpha").set(
                governor.effective_alpha
            )
            reg.gauge("repro_service_governor_rung").set(governor.rung)
        logger.info(
            "governor moved to rung %d (alpha=%.4f, factor=%.4f)",
            governor.rung,
            governor.effective_alpha,
            factor,
        )
        return factor

    async def _governor_loop(self) -> None:
        interval = self.config.governor_interval
        try:
            while True:
                await asyncio.sleep(interval)
                self.governor_step()
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------------------ #
    # backpressure
    # ------------------------------------------------------------------ #

    def shedding(self) -> bool:
        """Current shed state, updated with hysteresis."""
        depth = self.coalescer.pending
        if self._shedding:
            if depth <= self.config.low_water:
                self._shedding = False
        elif depth >= self.config.high_water:
            self._shedding = True
        return self._shedding

    def _shed_response(self, rid: protocol.RequestId) -> Dict[str, Any]:
        self.counts["shed"] += 1
        if self._slo_on or OBS.enabled:
            self.slo.record_shed()
        if OBS.enabled:
            OBS.registry.counter(
                "repro_service_shed_total", reason="high_water"
            ).inc()
        return protocol.error_response(
            rid,
            protocol.OVERLOADED,
            f"queue depth {self.coalescer.pending} is past the "
            f"{self.config.high_water} high-water mark; retry later",
        )

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        self.counts["connections"] += 1
        if OBS.enabled:
            OBS.registry.counter(
                "repro_service_connections_total"
            ).inc()
        conn = _Conn(reader, writer)
        try:
            # Read until EOF; during drain, admission ops are answered
            # with "unavailable" and drain() closes the connection once
            # everything in flight has been written.
            upgraded = await self._read_v1(conn)
            if upgraded:
                await self._read_v2(conn)
        finally:
            self._connections.discard(writer)
            _close_writer(writer)

    async def _read_v1(self, conn: "_Conn") -> bool:
        """Newline-delimited JSON loop; True when upgraded to v2."""
        reader = conn.reader
        while True:
            try:
                line = await reader.readline()
            except (
                asyncio.LimitOverrunError,
                ValueError,
            ):
                # Oversized frame: structured error, clean close
                # (the stream beyond the overrun is unparseable).
                await self._send(
                    conn,
                    protocol.error_response(
                        None,
                        protocol.FRAME_TOO_LARGE,
                        f"frame exceeds "
                        f"{self.config.max_frame_bytes} bytes",
                    ),
                )
                return False
            except (ConnectionError, OSError):
                return False
            if not line or not line.endswith(b"\n"):
                # EOF — possibly mid-request; nothing to answer.
                return False
            if not line.strip():
                continue
            hello = (
                self._peek_hello(line)
                if self.config.negotiate_v2
                else None
            )
            if hello is not None:
                response, upgrade = self._negotiate(conn, hello)
                # The hello answer is always a v1 line, written before
                # the mode flips, so the client can switch its own
                # parser the moment it reads this response.
                await self._send(conn, response)
                if upgrade:
                    conn.proto = 2
                    return True
                continue
            self._handle_line(conn, line)

    def _peek_hello(self, line: bytes) -> Optional[protocol.Request]:
        """The parsed request iff this line is a ``hello``."""
        if b'"hello"' not in line:
            return None
        try:
            request = protocol.parse_request(
                line, max_bytes=self.config.max_frame_bytes
            )
        except ProtocolError:
            return None  # _handle_line produces the canonical error
        return request if request.op == protocol.HELLO_OP else None

    def _negotiate(
        self, conn: "_Conn", request: Request_T
    ) -> Tuple[Dict[str, Any], bool]:
        """Answer one ``hello``: ``(response, upgrade_to_v2)``.

        Negotiation happens before any ordinary request id exists on
        the connection (clients send hello first, on the reserved id
        0); a hello arriving later is refused so in-flight v1 responses
        can never interleave with binary frames.
        """
        self.counts["requests"] += 1
        rid = request.id
        if conn.saw_request:
            self.counts["errors"] += 1
            return (
                protocol.error_response(
                    rid,
                    protocol.BAD_REQUEST,
                    "hello must be the first request on a connection",
                ),
                False,
            )
        conn.saw_request = True
        proposed = request.body.get("protocol")
        if proposed == protocol.PROTOCOL_SCHEMA_V2:
            return (
                protocol.ok_response(
                    rid, {"protocol": protocol.PROTOCOL_SCHEMA_V2}
                ),
                True,
            )
        if proposed == protocol.PROTOCOL_SCHEMA:
            return (
                protocol.ok_response(
                    rid, {"protocol": protocol.PROTOCOL_SCHEMA}
                ),
                False,
            )
        self.counts["errors"] += 1
        return (
            protocol.error_response(
                rid,
                protocol.BAD_REQUEST,
                f"unsupported protocol {proposed!r} (supported: "
                f"{protocol.PROTOCOL_SCHEMA}, "
                f"{protocol.PROTOCOL_SCHEMA_V2})",
            ),
            False,
        )

    async def _read_v2(self, conn: "_Conn") -> None:
        """Length-prefixed binary frame loop (after negotiation).

        Framing faults follow one rule: if the length prefix can still
        be trusted, answer a structured error and keep reading; if it
        cannot (oversized/corrupt prefix, v1 text bytes), answer the
        error and close — resynchronization is impossible.  Either way
        the fault stays on this connection; the coalescer and every
        other connection never notice.
        """
        reader = conn.reader
        max_bytes = self.config.max_frame_bytes
        while True:
            try:
                header = await reader.readexactly(
                    protocol.FRAME_HEADER_BYTES
                )
            except (
                asyncio.IncompleteReadError,
                ConnectionError,
                OSError,
            ):
                return  # EOF or mid-header disconnect
            length = int.from_bytes(header, "big")
            if length == 0:
                self.counts["errors"] += 1
                await self._send(
                    conn,
                    protocol.error_response(
                        None,
                        protocol.BAD_REQUEST,
                        "zero-length v2 frame",
                    ),
                )
                return
            if length > max_bytes:
                self.counts["errors"] += 1
                if header[0:1] == b"{":
                    # A v1 JSON line read as a length prefix: '{' makes
                    # the "length" >= 2 GiB, far past any real frame.
                    response = protocol.error_response(
                        None,
                        protocol.BAD_REQUEST,
                        "v1 text frame on a v2-negotiated connection",
                    )
                else:
                    response = protocol.error_response(
                        None,
                        protocol.FRAME_TOO_LARGE,
                        f"v2 frame of {length} bytes exceeds the "
                        f"{max_bytes}-byte limit",
                    )
                await self._send(conn, response)
                return
            try:
                payload = await reader.readexactly(length)
            except (
                asyncio.IncompleteReadError,
                ConnectionError,
                OSError,
            ):
                return  # mid-frame disconnect; nothing attributable
            self._handle_v2_payload(conn, payload)

    def _handle_v2_payload(self, conn: "_Conn", payload: bytes) -> None:
        """Decode one v2 payload and start its request task."""
        self.counts["requests"] += 1
        tele: Optional[_ReqTele] = None
        if self._slo_on or OBS.enabled:
            tele = _ReqTele(time.perf_counter())
            self.slo.record_request()
        if OBS.enabled:
            OBS.registry.counter("repro_service_requests_total").inc()
        try:
            tag, obj = protocol.decode_payload_v2(
                payload, max_bytes=self.config.max_frame_bytes
            )
        except ProtocolError as exc:
            # The frame was well-delimited, so the stream is still in
            # sync: answer and keep the connection.
            self.counts["errors"] += 1
            self._spawn_send(
                conn,
                protocol.error_response(None, exc.code, str(exc)),
            )
            return
        if tag == protocol.TAG_BULK:
            self._begin_bulk(conn, obj, tele)
            return
        if tag == protocol.TAG_RESULTS:
            self.counts["errors"] += 1
            self._spawn_send(
                conn,
                protocol.error_response(
                    None,
                    protocol.BAD_REQUEST,
                    "unexpected bulk-response frame from a client",
                ),
            )
            return
        rid = obj.get("id")
        if not isinstance(rid, (str, int)) or isinstance(rid, bool):
            self.counts["errors"] += 1
            self._spawn_send(
                conn,
                protocol.error_response(
                    None,
                    protocol.BAD_REQUEST,
                    "request id must be a string or integer",
                ),
            )
            return
        op = obj.get("op")
        if not isinstance(op, str):
            self.counts["errors"] += 1
            self._spawn_send(
                conn,
                protocol.error_response(
                    None,
                    protocol.BAD_REQUEST,
                    "request op must be a string",
                ),
            )
            return
        body = {k: v for k, v in obj.items() if k not in ("id", "op")}
        self._dispatch_request(
            conn, protocol.Request(id=rid, op=op, body=body), tele
        )

    def _handle_line(self, conn: "_Conn", line: bytes) -> None:
        """Parse one frame and start its request task.

        Runs synchronously inside the read loop: coalescer submission
        happens *here*, before the loop reads the next frame, which is
        what makes one connection's decisions order-identical to
        sequential submission.
        """
        self.counts["requests"] += 1
        tele: Optional[_ReqTele] = None
        if self._slo_on or OBS.enabled:
            tele = _ReqTele(time.perf_counter())
            self.slo.record_request()
        if OBS.enabled:
            OBS.registry.counter("repro_service_requests_total").inc()
        try:
            request = protocol.parse_request(
                line, max_bytes=self.config.max_frame_bytes
            )
        except ProtocolError as exc:
            self.counts["errors"] += 1
            self._spawn_send(
                conn,
                protocol.error_response(None, exc.code, str(exc)),
            )
            return
        self._dispatch_request(conn, request, tele)

    def _dispatch_request(
        self,
        conn: "_Conn",
        request: Request_T,
        tele: "Optional[_ReqTele]",
    ) -> None:
        """Begin one parsed request and spawn its response task."""
        conn.saw_request = True
        if tele is not None:
            tele.t_parsed = time.perf_counter()
            tele.op = request.op
            tele.trace = trace_context_from_obj(
                request.body.get("trace")
            )
            if OBS.enabled and OBS.tracer is not None:
                tele.span_hex = new_span_id()
        if request.op == protocol.HELLO_OP and self.config.negotiate_v2:
            # A hello after the first request (v1), or inside a v2
            # carrier frame: renegotiation is not supported.  (With
            # negotiation disabled, hello falls through to the ordinary
            # unknown-op answer — exactly what a pre-v2 build says.)
            self.counts["errors"] += 1
            self._spawn_send(
                conn,
                protocol.error_response(
                    request.id,
                    protocol.BAD_REQUEST,
                    "hello must be the first request on a connection",
                ),
            )
            return
        if request.id in conn.inflight:
            self.counts["errors"] += 1
            self._spawn_send(
                conn,
                protocol.error_response(
                    request.id,
                    protocol.DUPLICATE_ID,
                    f"request id {request.id!r} is already in flight "
                    "on this connection",
                ),
            )
            return
        conn.inflight.add(request.id)
        try:
            pending = self._begin(request, tele)
        except ProtocolError as exc:
            conn.inflight.discard(request.id)
            self.counts["errors"] += 1
            self._spawn_send(
                conn,
                protocol.error_response(request.id, exc.code, str(exc)),
            )
            return
        except Exception as exc:  # defensive: never tear down the
            # read loop over one request — answer and keep serving.
            conn.inflight.discard(request.id)
            self.counts["errors"] += 1
            logger.exception(
                "internal error beginning request %r", request.id
            )
            self._spawn_send(
                conn,
                protocol.error_response(
                    request.id,
                    protocol.INTERNAL,
                    f"{type(exc).__name__}: {exc}",
                ),
            )
            return
        task = asyncio.get_running_loop().create_task(
            self._finish(request, pending, conn, tele)
        )
        self._request_tasks.add(task)
        task.add_done_callback(self._request_tasks.discard)

    # ------------------------------------------------------------------ #
    # v2 bulk fast path
    # ------------------------------------------------------------------ #

    def _begin_bulk(
        self, conn: "_Conn", obj: Any, tele: "Optional[_ReqTele]"
    ) -> None:
        """Submit one packed bulk frame's sub-ops in arrival order.

        The per-sub-op work is deliberately minimal — positional decode
        into a :class:`~repro.traffic.flows.FlowSpec` and a queue put
        onto a shared :class:`BulkSlots` collector — so a frame of
        hundreds of ops costs one request task and one response write.
        Decisions are bit-identical to the same ops arriving as v1
        frames: the coalescer machinery downstream is shared.
        """
        rid, subops = protocol.parse_bulk_request(obj)
        if tele is not None:
            tele.t_parsed = time.perf_counter()
            tele.op = "bulk"
        if rid in conn.inflight:
            self.counts["errors"] += 1
            self._spawn_send(
                conn,
                protocol.error_response(
                    rid,
                    protocol.DUPLICATE_ID,
                    f"request id {rid!r} is already in flight "
                    "on this connection",
                ),
            )
            return
        conn.inflight.add(rid)
        ready: Optional[Dict[str, Any]] = None
        if self._draining:
            ready = protocol.error_response(
                rid, protocol.UNAVAILABLE, "server is draining"
            )
        elif self.shedding():
            ready = self._shed_response(rid)
        if ready is not None:
            task = asyncio.get_running_loop().create_task(
                self._finish(
                    protocol.Request(id=rid, op="bulk", body={}),
                    ready,
                    conn,
                    tele,
                )
            )
            self._request_tasks.add(task)
            task.add_done_callback(self._request_tasks.discard)
            return
        slots = self.coalescer.open_bulk(len(subops))
        entries: List[Tuple[int, str, Any]] = []
        append = entries.append
        bulk_admit = protocol.BULK_ADMIT
        admit_flow = protocol.bulk_admit_flow
        for i, sub in enumerate(subops):
            try:
                if not isinstance(sub, list) or not sub:
                    raise ProtocolError(
                        protocol.BAD_REQUEST,
                        "bulk sub-op must be a non-empty array",
                    )
                kind = sub[0]
                if kind == bulk_admit:
                    append((i, BULK_OP_ADMIT, admit_flow(sub)))
                elif kind == protocol.BULK_RELEASE:
                    if len(sub) != 2:
                        raise ProtocolError(
                            protocol.BAD_REQUEST,
                            "packed release sub-op must have 2 fields",
                        )
                    entries.append(
                        (
                            i,
                            BULK_OP_RELEASE,
                            protocol.validate_flow_id(sub[1]),
                        )
                    )
                else:
                    raise ProtocolError(
                        protocol.BAD_REQUEST,
                        f"bulk sub-op kind must be {protocol.BULK_ADMIT}"
                        f" (admit) or {protocol.BULK_RELEASE} "
                        f"(release), got {kind!r}",
                    )
            except ProtocolError as exc:
                slots.fill(i, exc)
        self.coalescer.submit_bulk(slots, entries)
        task = asyncio.get_running_loop().create_task(
            self._finish_bulk(conn, rid, slots, tele)
        )
        self._request_tasks.add(task)
        task.add_done_callback(self._request_tasks.discard)

    async def _finish_bulk(
        self,
        conn: "_Conn",
        rid: protocol.RequestId,
        slots: BulkSlots,
        tele: "Optional[_ReqTele]",
    ) -> None:
        try:
            await slots.wait()
            # Inline the dominant decision case; _bulk_slot keeps the
            # full outcome mapping for releases and errors.
            slot_admitted = protocol.SLOT_ADMITTED
            slot_rejected = protocol.SLOT_REJECTED
            bulk_slot = self._bulk_slot
            n_admitted = n_rejected = 0
            out: List[List[Any]] = []
            append = out.append
            for o in slots.outcomes:
                if type(o) is AdmissionDecision:
                    if o.admitted:
                        n_admitted += 1
                        append([slot_admitted, o.reason, o.batch_size])
                    else:
                        n_rejected += 1
                        append([slot_rejected, o.reason, o.batch_size])
                else:
                    append(bulk_slot(o))
            counts = self.counts
            counts["admitted"] += n_admitted
            counts["rejected"] += n_rejected
            if tele is not None:
                tele.t_write = time.perf_counter()
            await self._send_raw(
                conn, protocol.encode_bulk_response(rid, out)
            )
            if tele is not None:
                self._finish_telemetry(
                    protocol.Request(id=rid, op="bulk", body={}),
                    tele,
                    [],
                    {"ok": True},
                )
        finally:
            conn.inflight.discard(rid)

    def _bulk_slot(self, outcome: Any) -> List[Any]:
        """Packed response slot for one settled bulk outcome (mirrors
        the v1 error mapping in :meth:`_await_single`)."""
        if outcome is True:  # release
            self.counts["released"] += 1
            return [protocol.SLOT_RELEASED]
        if isinstance(outcome, BaseException):
            self.counts["errors"] += 1
            if isinstance(outcome, ProtocolError):
                return [protocol.SLOT_ERROR, outcome.code, str(outcome)]
            if isinstance(outcome, (AdmissionError, TrafficError)):
                return [
                    protocol.SLOT_ERROR,
                    protocol.ADMISSION_ERROR,
                    str(outcome),
                ]
            if isinstance(outcome, ReproError):
                return [
                    protocol.SLOT_ERROR,
                    protocol.INTERNAL,
                    str(outcome),
                ]
            return [
                protocol.SLOT_ERROR,
                protocol.INTERNAL,
                f"{type(outcome).__name__}: {outcome}",
            ]
        decision: AdmissionDecision = outcome
        if decision.admitted:
            self.counts["admitted"] += 1
            return [
                protocol.SLOT_ADMITTED,
                decision.reason,
                decision.batch_size,
            ]
        self.counts["rejected"] += 1
        return [
            protocol.SLOT_REJECTED,
            decision.reason,
            decision.batch_size,
        ]

    # ------------------------------------------------------------------ #
    # request dispatch
    # ------------------------------------------------------------------ #

    def _begin(
        self, request: Request_T, tele: "Optional[_ReqTele]" = None
    ) -> Any:
        """Synchronous part of a request: validate and (for admission
        ops) submit to the coalescer in arrival order.

        Returns whatever :meth:`_finish` needs to produce the response:
        a ready response dict, one future, or a list of per-sub-op
        futures/errors for ``batch``.
        """
        op = request.op
        body = request.body
        rid = request.id
        if op == "health":
            return protocol.ok_response(rid, self.health())
        if op == "stats":
            return protocol.ok_response(rid, self.stats())
        if op == "query":
            if "flow_id" not in body:
                raise ProtocolError(
                    protocol.BAD_REQUEST, "query needs flow_id"
                )
            fid = protocol.validate_flow_id(body["flow_id"])
            return protocol.ok_response(
                rid,
                {"established": self.controller.is_established(fid)},
            )
        if op == "snapshot":
            if self.store is None:
                return protocol.error_response(
                    rid,
                    protocol.UNAVAILABLE,
                    "no snapshot path configured",
                )
            path = self.write_snapshot()
            return protocol.ok_response(
                rid,
                {
                    "path": path,
                    "flows": self.controller.num_established,
                },
            )
        if op not in ("admit", "release", "batch"):
            return protocol.error_response(
                rid,
                protocol.UNKNOWN_OP,
                f"unknown op {op!r} (expected one of "
                f"{', '.join(protocol.OPS)})",
            )
        if self._draining:
            return protocol.error_response(
                rid, protocol.UNAVAILABLE, "server is draining"
            )
        if self.shedding():
            return self._shed_response(rid)
        trace = tele.trace if tele is not None else None
        span_hex = tele.span_hex if tele is not None else None
        if op == "admit":
            flow = protocol.flow_from_obj(body.get("flow"))
            return self.coalescer.submit_admit_op(
                flow, trace=trace, span_hex=span_hex
            )
        if op == "release":
            if "flow_id" not in body:
                raise ProtocolError(
                    protocol.BAD_REQUEST, "release needs flow_id"
                )
            return self.coalescer.submit_release_op(
                protocol.validate_flow_id(body["flow_id"]),
                trace=trace,
                span_hex=span_hex,
            )
        # batch: submit every well-formed sub-op in order; malformed
        # ones keep their slot as an inline error.
        ops = body.get("ops")
        if not isinstance(ops, list):
            raise ProtocolError(
                protocol.BAD_REQUEST, "batch needs an ops list"
            )
        slots: List[Any] = []
        for sub in ops:
            try:
                if not isinstance(sub, dict):
                    raise ProtocolError(
                        protocol.BAD_REQUEST,
                        "batch sub-op must be an object",
                    )
                sub_op = sub.get("op")
                if sub_op == "admit":
                    slots.append(
                        self.coalescer.submit_admit_op(
                            protocol.flow_from_obj(sub.get("flow")),
                            trace=trace,
                            span_hex=span_hex,
                        )
                    )
                elif sub_op == "release":
                    if "flow_id" not in sub:
                        raise ProtocolError(
                            protocol.BAD_REQUEST,
                            "release sub-op needs flow_id",
                        )
                    slots.append(
                        self.coalescer.submit_release_op(
                            protocol.validate_flow_id(sub["flow_id"]),
                            trace=trace,
                            span_hex=span_hex,
                        )
                    )
                else:
                    raise ProtocolError(
                        protocol.BAD_REQUEST,
                        f"batch sub-op must be admit or release, "
                        f"got {sub_op!r}",
                    )
            except ProtocolError as exc:
                slots.append(
                    {
                        "ok": False,
                        "error": {
                            "code": exc.code,
                            "message": str(exc),
                        },
                    }
                )
        return slots

    async def _finish(
        self,
        request: Request_T,
        pending: Any,
        conn: "_Conn",
        tele: "Optional[_ReqTele]" = None,
    ) -> None:
        try:
            if isinstance(pending, dict):  # ready response
                response = pending
            elif isinstance(pending, _Op):
                response = await self._await_single(
                    request.id, pending.future
                )
            elif isinstance(pending, asyncio.Future):
                response = await self._await_single(request.id, pending)
            else:  # batch slots
                results = []
                for slot in pending:
                    if isinstance(slot, dict):
                        results.append(slot)
                        self.counts["errors"] += 1
                        continue
                    future = (
                        slot.future if isinstance(slot, _Op) else slot
                    )
                    sub = await self._await_single(None, future)
                    if sub["ok"]:
                        results.append(
                            {"ok": True, "result": sub["result"]}
                        )
                    else:
                        results.append(
                            {"ok": False, "error": sub["error"]}
                        )
                response = protocol.ok_response(
                    request.id, {"results": results}
                )
            if tele is not None:
                tele.t_write = time.perf_counter()
            await self._send(conn, response)
            if tele is not None:
                self._finish_telemetry(request, tele, pending, response)
        finally:
            conn.inflight.discard(request.id)

    def _finish_telemetry(
        self,
        request: Request_T,
        tele: "_ReqTele",
        pending: Any,
        response: Dict[str, Any],
    ) -> None:
        """Per-request SLO feed, latency histogram, and span emission.

        Runs synchronously right after the response hits the socket, so
        a client that sees its reply and immediately scrapes
        ``/metrics`` finds this request already counted.
        """
        t_end = time.perf_counter()
        total = t_end - tele.t_recv
        if self._slo_on or OBS.enabled:
            self.slo.observe_latency(total)
        if not OBS.enabled:
            return
        OBS.registry.histogram(
            "repro_service_request_seconds", op=request.op
        ).observe(total)
        tracer = OBS.tracer
        if tracer is None:
            return
        attrs: Dict[str, Any] = {
            "op": request.op,
            "ok": bool(response.get("ok", False)),
            "parse_seconds": tele.t_parsed - tele.t_recv,
            "write_seconds": t_end - tele.t_write,
        }
        if tele.span_hex is not None:
            attrs["span_hex"] = tele.span_hex
        if tele.trace is not None:
            attrs["trace_id"] = tele.trace.trace_id
            attrs["parent_id"] = tele.trace.span_id
        ops: List[_Op] = []
        if isinstance(pending, _Op):
            ops = [pending]
        elif isinstance(pending, list):
            ops = [s for s in pending if isinstance(s, _Op)]
            attrs["n_subops"] = len(pending)
        if ops:
            attrs["queue_seconds"] = max(
                0.0, ops[0].dequeued_at - ops[0].enqueued_at
            )
            attrs["execute_seconds"] = max(
                0.0,
                max(op.decided_at for op in ops)
                - min(op.dequeued_at for op in ops),
            )
            if ops[0].batch_hex is not None:
                attrs["batch_span"] = ops[0].batch_hex
                distinct = {
                    op.batch_hex
                    for op in ops
                    if op.batch_hex is not None
                }
                if len(distinct) > 1:
                    attrs["batch_spans"] = len(distinct)
        tracer.record_span(
            "service.request",
            start=tele.t_recv,
            duration=total,
            **attrs,
        )

    async def _await_single(
        self, rid: Optional[protocol.RequestId], future: "asyncio.Future"
    ) -> Dict[str, Any]:
        """Resolve one coalesced op into a response-shaped dict."""
        try:
            outcome = await future
        except (AdmissionError, TrafficError) as exc:
            self.counts["errors"] += 1
            return protocol.error_response(
                rid, protocol.ADMISSION_ERROR, str(exc)
            )
        except ReproError as exc:
            self.counts["errors"] += 1
            return protocol.error_response(
                rid, protocol.INTERNAL, str(exc)
            )
        except Exception as exc:  # unexpected; keep the server alive
            self.counts["errors"] += 1
            logger.exception("internal error deciding a request")
            return protocol.error_response(
                rid, protocol.INTERNAL, f"{type(exc).__name__}: {exc}"
            )
        if outcome is True:  # release
            self.counts["released"] += 1
            return protocol.ok_response(rid, {"released": True})
        decision = outcome
        if decision.admitted:
            self.counts["admitted"] += 1
        else:
            self.counts["rejected"] += 1
        return protocol.ok_response(
            rid,
            {
                "admitted": decision.admitted,
                "reason": decision.reason,
                "batch_size": decision.batch_size,
            },
        )

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def _status(self) -> str:
        """One-word serving state, worst condition first."""
        if self._draining:
            return "draining"
        if self._shedding:
            return "overloaded"
        if bool(getattr(self.controller, "in_degraded_mode", False)):
            return "degraded"
        if self._slo_on and self.slo.snapshot()["breaching"]:
            return "degraded"
        return "ok"

    def snapshot_age_seconds(self) -> Optional[float]:
        """Seconds since the last durable snapshot (None: no store or
        never written)."""
        if self.store is None or self.store.last_write_at is None:
            return None
        return max(0.0, time.time() - self.store.last_write_at)

    def health(self) -> Dict[str, Any]:
        obj = {
            "status": self._status(),
            "schema": protocol.PROTOCOL_SCHEMA,
            "established": self.controller.num_established,
            "queue_depth": self.coalescer.pending,
            "shedding": self._shedding,
            "draining": self._draining,
            "uptime_seconds": max(0.0, time.time() - self._started_at),
        }
        if self.governor is not None:
            snap = self.governor.snapshot()
            obj["governor"] = {
                "rung": snap["rung"],
                "effective_alpha": snap["effective_alpha"],
                "at_top": self.governor.at_top,
            }
        return obj

    def healthz(self) -> Tuple[int, Dict[str, Any]]:
        """(HTTP status, body) for ``GET /healthz``.

        ``ok``/``degraded`` answer 200 (still servable), ``overloaded``
        and ``draining`` answer 503 so load balancers stop routing
        without parsing the body.
        """
        self.shedding()  # refresh hysteresis from the live queue depth
        obj = self.health()
        obj["slo"] = self.slo.snapshot()
        status = 503 if obj["status"] in ("draining", "overloaded") else 200
        return status, obj

    def stats(self) -> Dict[str, Any]:
        coalescer = self.coalescer
        out: Dict[str, Any] = {
            "schema": protocol.PROTOCOL_SCHEMA,
            "controller": type(self.controller).__name__,
            "pid": os.getpid(),
            "established": self.controller.num_established,
            "queue_depth": coalescer.pending,
            "shedding": self._shedding,
            "draining": self._draining,
            "status": self._status(),
            "uptime_seconds": max(0.0, time.time() - self._started_at),
            "snapshot_age_seconds": self.snapshot_age_seconds(),
            "batches": coalescer.batches,
            "coalesced_ops": coalescer.coalesced_ops,
            "largest_batch": coalescer.largest_batch,
            "mean_batch_fill": (
                coalescer.coalesced_ops / coalescer.batches
                if coalescer.batches
                else 0.0
            ),
            "max_batch": self.config.max_batch,
            "max_delay": self.config.max_delay,
            "high_water": self.config.high_water,
            "low_water": self.config.low_water,
            "slo": self.slo.snapshot(),
            **{k: v for k, v in self.counts.items()},
        }
        if self.config.worker_index is not None:
            out["worker_index"] = self.config.worker_index
        if self.governor is not None:
            out["governor"] = self.governor.snapshot()
        if coalescer.preemptor is not None:
            out["preemption"] = {
                "preempted_flows": coalescer.preempted_flows,
                "preempted_admits": coalescer.preempted_admits,
            }
        if self.audit is not None:
            out["audit"] = {
                "path": self.audit.path,
                "records": self.audit.records_written,
            }
        return out

    # ------------------------------------------------------------------ #
    # live scrape support
    # ------------------------------------------------------------------ #

    def refresh_gauges(self) -> None:
        """Push point-in-time state into the metrics registry (called
        per scrape, so gauges are live even between batches)."""
        if not OBS.enabled:
            return
        reg = OBS.registry
        reg.gauge("repro_service_queue_depth").set(self.coalescer.pending)
        reg.gauge("repro_service_established_flows").set(
            self.controller.num_established
        )
        reg.gauge("repro_service_shedding").set(
            1.0 if self._shedding else 0.0
        )
        reg.gauge("repro_service_draining").set(
            1.0 if self._draining else 0.0
        )
        reg.gauge("repro_service_uptime_seconds").set(
            max(0.0, time.time() - self._started_at)
        )
        age = self.snapshot_age_seconds()
        if age is not None:
            reg.gauge("repro_service_snapshot_age_seconds").set(age)
        if self.governor is not None:
            reg.gauge("repro_service_effective_alpha").set(
                self.governor.effective_alpha
            )
            reg.gauge("repro_service_governor_rung").set(
                self.governor.rung
            )
        if self.audit is not None:
            reg.gauge("repro_service_audit_records").set(
                self.audit.records_written
            )
        self.slo.export_gauges(reg)

    def scrape_text(self) -> str:
        """Prometheus exposition text for ``GET /metrics``."""
        if not OBS.enabled:
            return "# observability is disabled on this server\n"
        self.refresh_gauges()
        return to_prometheus_text(OBS.registry)

    # ------------------------------------------------------------------ #
    # response writing
    # ------------------------------------------------------------------ #

    def _spawn_send(
        self, conn: "_Conn", response: Dict[str, Any]
    ) -> None:
        task = asyncio.get_running_loop().create_task(
            self._send(conn, response)
        )
        self._request_tasks.add(task)
        task.add_done_callback(self._request_tasks.discard)

    async def _send(
        self, conn: "_Conn", response: Dict[str, Any]
    ) -> None:
        """Encode per the connection's negotiated protocol and write.

        On a v2 connection the v1-shaped response object travels inside
        a JSON carrier frame, so every op keeps one wire shape per
        protocol generation.
        """
        if conn.proto == 2:
            frame = protocol.encode_frame_v2(response)
        else:
            frame = protocol.encode_frame(response)
        await self._send_raw(conn, frame)

    async def _send_raw(self, conn: "_Conn", frame: bytes) -> None:
        try:
            async with conn.lock:
                conn.writer.write(frame)
                await conn.writer.drain()
        except (ConnectionError, RuntimeError, OSError):
            # Peer vanished mid-response; the decision is already
            # committed, nothing to unwind.
            logger.debug("dropped a response to a closed connection")


Request_T = protocol.Request


def _close_writer(writer: asyncio.StreamWriter) -> None:
    try:
        if not writer.is_closing():
            writer.close()
    except Exception:  # pragma: no cover - platform-specific teardown
        pass
