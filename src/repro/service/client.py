"""Client library for the admission service.

:class:`AsyncServiceClient` is the asyncio core: it speaks the
``repro-admission-rpc/v1`` protocol over TCP or a Unix socket, matches
responses to requests by id (so many coroutines can pipeline requests on
one connection), and retries ``overloaded`` responses under a
:class:`~repro.faults.degraded.BackoffPolicy`.  :class:`ServiceClient`
wraps it in a synchronous facade (its own private event loop) so plain
code — the workload driver, the CLI, the benchmarks — can use the
service like an in-process controller.

Passing ``protocol="v2"`` asks for the length-prefixed binary framing
(``repro-admission-rpc/v2``): the connection handshake sends a ``hello``
on the reserved request id 0 *before any ordinary request id is
assigned*, so a v2 proposal refused by an older server (``unknown_op``)
falls back to v1 transparently — same client object, same API, no
request ever observes the downgrade.  On a negotiated v2 connection,
:meth:`AsyncServiceClient.batch` additionally packs plain admit/release
batches into single binary bulk frames (the server's fast path);
everything else rides in JSON carrier frames with unchanged semantics.

Server-side failures surface as the exceptions the in-process API
raises: a rejected-with-exception admission (already established, bad
route, unknown class) raises :class:`~repro.errors.AdmissionError`;
shedding raises :class:`~repro.errors.ServiceOverloadedError` once
retries are exhausted; protocol violations raise
:class:`~repro.errors.ProtocolError` with the server's error code.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional

from ..errors import (
    AdmissionError,
    ProtocolError,
    ServiceError,
    ServiceOverloadedError,
)
from ..faults.degraded import BackoffPolicy
from ..obs import OBS, TraceContext, new_span_id, new_trace_id
from ..traffic.flows import FlowSpec
from . import protocol

__all__ = ["WireDecision", "AsyncServiceClient", "ServiceClient"]

#: Errors that mean "the connection attempt should be retried".
_CONNECT_ERRORS = (ConnectionError, FileNotFoundError, OSError)

#: Stream read limit (the ``protocol`` module name is shadowed by the
#: keyword argument of the same name in the connect paths).
_FRAME_LIMIT = protocol.MAX_FRAME_BYTES


def _wire_generation(name: str) -> int:
    """Map a protocol selector to its wire generation (1 or 2)."""
    if name in ("v1", protocol.PROTOCOL_SCHEMA):
        return 1
    if name in ("v2", protocol.PROTOCOL_SCHEMA_V2):
        return 2
    raise ServiceError(
        f"unknown protocol {name!r} (use 'v1' or 'v2')"
    )


@dataclass(frozen=True)
class WireDecision:
    """Admission decision as reported over the wire."""

    flow_id: Hashable
    admitted: bool
    reason: str
    batch_size: int


class AsyncServiceClient:
    """Asyncio client for one admission-service connection."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        backoff: BackoffPolicy = BackoffPolicy(base=0.01, max_retries=5),
        retry_overloaded: bool = True,
        propagate_trace: Optional[bool] = None,
        protocol: str = "v1",
    ):
        self._reader = reader
        self._writer = writer
        self.backoff = backoff
        self.retry_overloaded = retry_overloaded
        #: Wire trace propagation: ``True`` stamps every request with a
        #: fresh trace context, ``False`` never does, ``None`` (default)
        #: follows the process-wide observability switch.
        self.propagate_trace = propagate_trace
        self._pending: Dict[Any, "asyncio.Future"] = {}
        self._next_id = 0
        self._closed = False
        self._want_v2 = _wire_generation(protocol) == 2
        self._proto = 1
        self._dispatcher: Optional["asyncio.Task"] = None
        if not self._want_v2:
            # v1 needs no handshake; start reading immediately.  For a
            # v2 request the dispatcher must not race the negotiation
            # exchange, so it starts inside :meth:`handshake`.
            self._start_dispatcher()

    def _start_dispatcher(self) -> None:
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch(), name="repro-service-client"
        )

    @property
    def negotiated_protocol(self) -> str:
        """``"v1"`` or ``"v2"`` — settled once :meth:`handshake` ran."""
        return "v2" if self._proto == 2 else "v1"

    async def handshake(self) -> None:
        """Negotiate the wire protocol before the first request.

        Sends the ``hello`` on the reserved id 0 and reads the answer
        inline (the dispatcher is not running yet), so no ordinary
        request id is ever consumed by negotiation: a refusal from an
        old v1-only server downgrades this client to v1 transparently
        and the next request still gets id 1 — exactly as if v1 had
        been requested all along.
        """
        if not self._want_v2 or self._dispatcher is not None:
            return
        try:
            self._writer.write(
                protocol.encode_frame(
                    {
                        "id": protocol.HELLO_ID,
                        "op": protocol.HELLO_OP,
                        "protocol": protocol.PROTOCOL_SCHEMA_V2,
                    }
                )
            )
            await self._writer.drain()
            line = await self._reader.readline()
        except (ConnectionError, OSError) as exc:
            raise ServiceError(
                f"connection lost during protocol negotiation: {exc}"
            ) from exc
        if not line:
            raise ServiceError(
                "server closed the connection during protocol "
                "negotiation"
            )
        frame = protocol.decode_frame(line)
        if frame.get("ok"):
            agreed = frame.get("result", {}).get("protocol")
            if agreed != protocol.PROTOCOL_SCHEMA_V2:
                raise ProtocolError(
                    protocol.BAD_REQUEST,
                    f"server answered hello with unexpected protocol "
                    f"{agreed!r}",
                )
            self._proto = 2
        else:
            err = frame.get("error", {})
            code = err.get("code", protocol.INTERNAL)
            if code not in (protocol.UNKNOWN_OP, protocol.BAD_REQUEST):
                raise _mapped_error(
                    code, err.get("message", "negotiation failed")
                )
            # Old server that predates hello (unknown_op) or a router
            # that refuses upgrades (bad_request): stay on v1.
        self._start_dispatcher()

    # ------------------------------------------------------------------ #
    # connection
    # ------------------------------------------------------------------ #

    @classmethod
    async def connect_unix(
        cls,
        path: str,
        *,
        backoff: BackoffPolicy = BackoffPolicy(base=0.01, max_retries=5),
        retry_overloaded: bool = True,
        propagate_trace: Optional[bool] = None,
        protocol: str = "v1",
    ) -> "AsyncServiceClient":
        """Connect over a Unix socket, retrying while the server comes up."""
        reader, writer = await cls._connect_with_retry(
            lambda: asyncio.open_unix_connection(
                path, limit=_FRAME_LIMIT
            ),
            backoff,
        )
        client = cls(
            reader,
            writer,
            backoff=backoff,
            retry_overloaded=retry_overloaded,
            propagate_trace=propagate_trace,
            protocol=protocol,
        )
        await client.handshake()
        return client

    @classmethod
    async def connect_tcp(
        cls,
        host: str,
        port: int,
        *,
        backoff: BackoffPolicy = BackoffPolicy(base=0.01, max_retries=5),
        retry_overloaded: bool = True,
        propagate_trace: Optional[bool] = None,
        protocol: str = "v1",
    ) -> "AsyncServiceClient":
        """Connect over TCP, retrying while the server comes up."""
        reader, writer = await cls._connect_with_retry(
            lambda: asyncio.open_connection(
                host, port, limit=_FRAME_LIMIT
            ),
            backoff,
        )
        client = cls(
            reader,
            writer,
            backoff=backoff,
            retry_overloaded=retry_overloaded,
            propagate_trace=propagate_trace,
            protocol=protocol,
        )
        await client.handshake()
        return client

    @staticmethod
    async def _connect_with_retry(factory, backoff: BackoffPolicy):
        attempt = 0
        while True:
            try:
                return await factory()
            except _CONNECT_ERRORS as exc:
                if attempt >= backoff.max_retries:
                    raise ServiceError(
                        f"could not connect to admission service: {exc}"
                    ) from exc
                await asyncio.sleep(backoff.delay(attempt))
                attempt += 1

    async def close(self) -> None:
        """Close the connection; in-flight requests fail."""
        if self._closed:
            return
        self._closed = True
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except (asyncio.CancelledError, Exception):
                pass
        try:
            self._writer.close()
        except Exception:
            pass
        self._fail_pending(ServiceError("client closed"))

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # response dispatch
    # ------------------------------------------------------------------ #

    async def _dispatch(self) -> None:
        try:
            if self._proto == 2:
                await self._dispatch_v2()
            else:
                await self._dispatch_v1()
        except (ConnectionError, OSError) as exc:
            self._fail_pending(
                ServiceError(f"connection lost: {exc}")
            )
        except asyncio.CancelledError:
            raise

    async def _dispatch_v1(self) -> None:
        while True:
            line = await self._reader.readline()
            if not line:
                self._fail_pending(
                    ServiceError("server closed the connection")
                )
                return
            if not line.strip():
                continue
            try:
                frame = protocol.decode_frame(line)
            except ProtocolError as exc:
                self._fail_pending(exc)
                return
            if not self._settle(frame):
                return

    async def _dispatch_v2(self) -> None:
        while True:
            try:
                header = await self._reader.readexactly(
                    protocol.FRAME_HEADER_BYTES
                )
            except asyncio.IncompleteReadError:
                self._fail_pending(
                    ServiceError("server closed the connection")
                )
                return
            length = int.from_bytes(header, "big")
            if length == 0 or length > _FRAME_LIMIT:
                self._fail_pending(
                    ProtocolError(
                        protocol.BAD_REQUEST,
                        f"invalid v2 frame length {length} from server",
                    )
                )
                return
            try:
                payload = await self._reader.readexactly(length)
            except asyncio.IncompleteReadError:
                self._fail_pending(
                    ServiceError(
                        "server closed the connection mid-frame"
                    )
                )
                return
            try:
                tag, obj = protocol.decode_payload_v2(
                    payload, max_bytes=_FRAME_LIMIT
                )
                if tag == protocol.TAG_RESULTS:
                    # Unpacking is deferred to the waiter (`bulk`) so a
                    # raw consumer never pays the dict conversion.
                    rid, slots = protocol.parse_bulk_request(obj)
                    frame = {"id": rid, "ok": True, "_packed": slots}
                elif tag == protocol.TAG_JSON:
                    frame = obj
                else:  # a bulk *request* from the server
                    raise ProtocolError(
                        protocol.BAD_REQUEST,
                        "unexpected bulk-request frame from server",
                    )
            except ProtocolError as exc:
                self._fail_pending(exc)
                return
            if not self._settle(frame):
                return

    def _settle(self, frame: Dict[str, Any]) -> bool:
        """Resolve the waiter for one response frame.

        Returns False when the dispatcher should stop (the server
        reported an unattributable error, after which it closes the
        connection on its side for v1 framing faults).
        """
        rid = frame.get("id")
        future = self._pending.pop(rid, None)
        if future is None:
            # Unattributed (id null) errors may close the connection
            # server-side; everything waiting dies with the reason
            # attached.
            if rid is None and not frame.get("ok", False):
                err = frame.get("error", {})
                self._fail_pending(
                    ProtocolError(
                        err.get("code", protocol.INTERNAL),
                        err.get("message", "unattributed error"),
                    )
                )
            return True
        if not future.done():
            future.set_result(frame)
        return True

    def _fail_pending(self, exc: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    # ------------------------------------------------------------------ #
    # request primitives
    # ------------------------------------------------------------------ #

    def _submit(self, op: str, body: Dict[str, Any]) -> "asyncio.Future":
        """Write one request frame; the future resolves to the raw
        response frame."""
        if self._closed:
            raise ServiceError("client is closed")
        if self._dispatcher is None:
            raise ServiceError(
                "protocol negotiation has not run — connect via "
                "connect_unix()/connect_tcp() or await handshake()"
            )
        self._next_id += 1
        rid = self._next_id
        frame: Dict[str, Any] = {"id": rid, "op": op}
        frame.update(body)
        future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        try:
            if self._proto == 2:
                self._writer.write(protocol.encode_frame_v2(frame))
            else:
                self._writer.write(protocol.encode_frame(frame))
        except (ConnectionError, RuntimeError, OSError) as exc:
            self._pending.pop(rid, None)
            raise ServiceError(f"connection lost: {exc}") from exc
        return future

    @staticmethod
    def _result_of(frame: Dict[str, Any]) -> Dict[str, Any]:
        """Unwrap a response frame, raising the mapped exception."""
        if frame.get("ok"):
            return frame.get("result", {})
        err = frame.get("error", {})
        code = err.get("code", protocol.INTERNAL)
        message = err.get("message", "unknown server error")
        raise _mapped_error(code, message)

    def _tracing(self) -> bool:
        if self.propagate_trace is None:
            return OBS.enabled
        return self.propagate_trace

    async def request(self, op: str, **body: Any) -> Dict[str, Any]:
        """One RPC; retries ``overloaded`` responses under the backoff
        policy (each attempt is a fresh request id).

        When trace propagation is on (see ``propagate_trace``), each
        attempt carries a fresh trace context on the wire and records a
        ``client.request`` span, so server-side request spans can be
        joined back to the exact client call (and retry) that caused
        them.
        """
        attempt = 0
        while True:
            ctx: Optional[TraceContext] = None
            t0 = 0.0
            if self._tracing():
                ctx = TraceContext(new_trace_id(), new_span_id())
                body["trace"] = ctx.to_obj()
                t0 = time.perf_counter()
            future = self._submit(op, body)
            await self._writer.drain()
            frame = await future
            if ctx is not None:
                self._record_client_span(op, ctx, t0, frame, attempt)
            try:
                return self._result_of(frame)
            except ServiceOverloadedError:
                if (
                    not self.retry_overloaded
                    or attempt >= self.backoff.max_retries
                ):
                    raise
                await asyncio.sleep(self.backoff.delay(attempt))
                attempt += 1

    @staticmethod
    def _record_client_span(
        op: str,
        ctx: TraceContext,
        t0: float,
        frame: Dict[str, Any],
        attempt: int,
    ) -> None:
        rtt = time.perf_counter() - t0
        if OBS.enabled:
            OBS.registry.histogram(
                "repro_client_request_seconds", op=op
            ).observe(rtt)
            tracer = OBS.tracer
            if tracer is not None:
                tracer.record_span(
                    "client.request",
                    start=t0,
                    duration=rtt,
                    op=op,
                    ok=bool(frame.get("ok", False)),
                    trace_id=ctx.trace_id,
                    span_hex=ctx.span_id,
                    attempt=attempt,
                )

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #

    async def admit(self, flow: FlowSpec) -> WireDecision:
        result = await self.request(
            "admit", flow=protocol.flow_to_obj(flow)
        )
        return WireDecision(
            flow_id=flow.flow_id,
            admitted=bool(result["admitted"]),
            reason=result.get("reason", ""),
            batch_size=int(result.get("batch_size", 1)),
        )

    async def release(self, flow_id: Hashable) -> bool:
        result = await self.request("release", flow_id=flow_id)
        return bool(result.get("released", False))

    async def batch(
        self, ops: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Submit a batch frame; returns the per-sub-op result objects
        (``{"ok": ..., "result"|"error": ...}``), one per input op.

        On a v2 connection a batch of plain admit/release ops travels
        as one packed binary bulk frame (the server's fast path); any
        op the packer cannot represent — and any batch while trace
        propagation is on, since packed frames carry no trace context —
        falls back to a JSON carrier ``batch``, whose validation errors
        are byte-identical to v1's.
        """
        if self._proto == 2 and not self._tracing():
            packed = protocol.pack_batch_ops(ops)
            if packed is not None:
                return await self.bulk(packed)
        result = await self.request("batch", ops=ops)
        return list(result.get("results", []))

    async def bulk(
        self, subops: List[List[Any]], *, raw: bool = False
    ) -> List[Any]:
        """One packed bulk round-trip (v2 connections only), with the
        same ``overloaded`` retry loop as :meth:`request`.

        ``subops`` are packed arrays (``[0, flow_id, cls, src, dst,
        route|null]`` admits / ``[1, flow_id]`` releases) — the binary
        protocol's native shape, bypassing op-dict packing entirely.
        With ``raw=True`` the packed result slots come back undecoded
        (``[0, reason, batch_size]`` admitted / ``[1, reason,
        batch_size]`` rejected / ``[2]`` released / ``[3, code,
        message]`` error); otherwise each slot is expanded to the same
        result object :meth:`batch` returns.
        """
        if self._proto != 2:
            raise ServiceError(
                "bulk frames require a v2-negotiated connection"
            )
        attempt = 0
        while True:
            if self._closed:
                raise ServiceError("client is closed")
            self._next_id += 1
            rid = self._next_id
            future = asyncio.get_running_loop().create_future()
            self._pending[rid] = future
            try:
                self._writer.write(
                    protocol.encode_bulk_request(rid, subops)
                )
                await self._writer.drain()
            except (ConnectionError, RuntimeError, OSError) as exc:
                self._pending.pop(rid, None)
                raise ServiceError(f"connection lost: {exc}") from exc
            frame = await future
            packed = frame.get("_packed")
            if packed is not None:
                if raw:
                    return packed
                return protocol.unpack_bulk_results(packed)
            # Carrier-shaped response: only errors arrive this way for
            # a bulk request (e.g. an ``overloaded`` shed).
            try:
                return list(self._result_of(frame).get("results", []))
            except ServiceOverloadedError:
                if (
                    not self.retry_overloaded
                    or attempt >= self.backoff.max_retries
                ):
                    raise
                await asyncio.sleep(self.backoff.delay(attempt))
                attempt += 1

    async def query(self, flow_id: Hashable) -> bool:
        result = await self.request("query", flow_id=flow_id)
        return bool(result.get("established", False))

    async def stats(self) -> Dict[str, Any]:
        return await self.request("stats")

    async def health(self) -> Dict[str, Any]:
        return await self.request("health")

    async def snapshot(self) -> Dict[str, Any]:
        return await self.request("snapshot")

    async def cluster(self) -> Optional[Dict[str, Any]]:
        """Cluster topology when connected to a front door, else None.

        A single-process server answers ``unknown_op`` for the
        router-only ``cluster`` discovery op; that is mapped to None so
        callers can branch without exception plumbing.
        """
        try:
            return await self.request("cluster")
        except ProtocolError as exc:
            if exc.code == protocol.UNKNOWN_OP:
                return None
            raise


def _mapped_error(code: str, message: str) -> Exception:
    if code == protocol.OVERLOADED:
        return ServiceOverloadedError(message)
    if code == protocol.ADMISSION_ERROR:
        return AdmissionError(message)
    return ProtocolError(code, message)


class ServiceClient:
    """Synchronous facade over :class:`AsyncServiceClient`.

    Owns a private event loop, so it works from any plain (non-async)
    context: the workload driver, benchmarks, tests, the CLI.  Use as a
    context manager or call :meth:`close`.
    """

    def __init__(
        self,
        *,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        backoff: BackoffPolicy = BackoffPolicy(base=0.01, max_retries=5),
        retry_overloaded: bool = True,
        propagate_trace: Optional[bool] = None,
        protocol: str = "v1",
    ):
        if (socket_path is None) == (host is None):
            raise ServiceError(
                "specify exactly one of socket_path or host/port"
            )
        if host is not None and port is None:
            raise ServiceError("TCP target needs a port")
        self._loop = asyncio.new_event_loop()
        try:
            if socket_path is not None:
                self._client = self._loop.run_until_complete(
                    AsyncServiceClient.connect_unix(
                        socket_path,
                        backoff=backoff,
                        retry_overloaded=retry_overloaded,
                        propagate_trace=propagate_trace,
                        protocol=protocol,
                    )
                )
            else:
                assert host is not None and port is not None
                self._client = self._loop.run_until_complete(
                    AsyncServiceClient.connect_tcp(
                        host,
                        port,
                        backoff=backoff,
                        retry_overloaded=retry_overloaded,
                        propagate_trace=propagate_trace,
                        protocol=protocol,
                    )
                )
        except BaseException:
            self._loop.close()
            raise

    @property
    def negotiated_protocol(self) -> str:
        return self._client.negotiated_protocol

    # ------------------------------------------------------------------ #

    def _run(self, coro):
        return self._loop.run_until_complete(coro)

    def admit(self, flow: FlowSpec) -> WireDecision:
        return self._run(self._client.admit(flow))

    def release(self, flow_id: Hashable) -> bool:
        return self._run(self._client.release(flow_id))

    def batch(self, ops: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        return self._run(self._client.batch(ops))

    def bulk(
        self, subops: List[List[Any]], *, raw: bool = False
    ) -> List[Any]:
        return self._run(self._client.bulk(subops, raw=raw))

    def query(self, flow_id: Hashable) -> bool:
        return self._run(self._client.query(flow_id))

    def stats(self) -> Dict[str, Any]:
        return self._run(self._client.stats())

    def health(self) -> Dict[str, Any]:
        return self._run(self._client.health())

    def snapshot(self) -> Dict[str, Any]:
        return self._run(self._client.snapshot())

    def cluster(self) -> Optional[Dict[str, Any]]:
        return self._run(self._client.cluster())

    def request(self, op: str, **body: Any) -> Dict[str, Any]:
        return self._run(self._client.request(op, **body))

    def close(self) -> None:
        if not self._loop.is_closed():
            self._run(self._client.close())
            self._loop.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
