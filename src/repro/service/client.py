"""Client library for the admission service.

:class:`AsyncServiceClient` is the asyncio core: it speaks the
``repro-admission-rpc/v1`` protocol over TCP or a Unix socket, matches
responses to requests by id (so many coroutines can pipeline requests on
one connection), and retries ``overloaded`` responses under a
:class:`~repro.faults.degraded.BackoffPolicy`.  :class:`ServiceClient`
wraps it in a synchronous facade (its own private event loop) so plain
code — the workload driver, the CLI, the benchmarks — can use the
service like an in-process controller.

Server-side failures surface as the exceptions the in-process API
raises: a rejected-with-exception admission (already established, bad
route, unknown class) raises :class:`~repro.errors.AdmissionError`;
shedding raises :class:`~repro.errors.ServiceOverloadedError` once
retries are exhausted; protocol violations raise
:class:`~repro.errors.ProtocolError` with the server's error code.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional

from ..errors import (
    AdmissionError,
    ProtocolError,
    ServiceError,
    ServiceOverloadedError,
)
from ..faults.degraded import BackoffPolicy
from ..obs import OBS, TraceContext, new_span_id, new_trace_id
from ..traffic.flows import FlowSpec
from . import protocol

__all__ = ["WireDecision", "AsyncServiceClient", "ServiceClient"]

#: Errors that mean "the connection attempt should be retried".
_CONNECT_ERRORS = (ConnectionError, FileNotFoundError, OSError)


@dataclass(frozen=True)
class WireDecision:
    """Admission decision as reported over the wire."""

    flow_id: Hashable
    admitted: bool
    reason: str
    batch_size: int


class AsyncServiceClient:
    """Asyncio client for one admission-service connection."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        *,
        backoff: BackoffPolicy = BackoffPolicy(base=0.01, max_retries=5),
        retry_overloaded: bool = True,
        propagate_trace: Optional[bool] = None,
    ):
        self._reader = reader
        self._writer = writer
        self.backoff = backoff
        self.retry_overloaded = retry_overloaded
        #: Wire trace propagation: ``True`` stamps every request with a
        #: fresh trace context, ``False`` never does, ``None`` (default)
        #: follows the process-wide observability switch.
        self.propagate_trace = propagate_trace
        self._pending: Dict[protocol.RequestId, "asyncio.Future"] = {}
        self._next_id = 0
        self._closed = False
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch(), name="repro-service-client"
        )

    # ------------------------------------------------------------------ #
    # connection
    # ------------------------------------------------------------------ #

    @classmethod
    async def connect_unix(
        cls,
        path: str,
        *,
        backoff: BackoffPolicy = BackoffPolicy(base=0.01, max_retries=5),
        retry_overloaded: bool = True,
        propagate_trace: Optional[bool] = None,
    ) -> "AsyncServiceClient":
        """Connect over a Unix socket, retrying while the server comes up."""
        reader, writer = await cls._connect_with_retry(
            lambda: asyncio.open_unix_connection(
                path, limit=protocol.MAX_FRAME_BYTES
            ),
            backoff,
        )
        return cls(
            reader,
            writer,
            backoff=backoff,
            retry_overloaded=retry_overloaded,
            propagate_trace=propagate_trace,
        )

    @classmethod
    async def connect_tcp(
        cls,
        host: str,
        port: int,
        *,
        backoff: BackoffPolicy = BackoffPolicy(base=0.01, max_retries=5),
        retry_overloaded: bool = True,
        propagate_trace: Optional[bool] = None,
    ) -> "AsyncServiceClient":
        """Connect over TCP, retrying while the server comes up."""
        reader, writer = await cls._connect_with_retry(
            lambda: asyncio.open_connection(
                host, port, limit=protocol.MAX_FRAME_BYTES
            ),
            backoff,
        )
        return cls(
            reader,
            writer,
            backoff=backoff,
            retry_overloaded=retry_overloaded,
            propagate_trace=propagate_trace,
        )

    @staticmethod
    async def _connect_with_retry(factory, backoff: BackoffPolicy):
        attempt = 0
        while True:
            try:
                return await factory()
            except _CONNECT_ERRORS as exc:
                if attempt >= backoff.max_retries:
                    raise ServiceError(
                        f"could not connect to admission service: {exc}"
                    ) from exc
                await asyncio.sleep(backoff.delay(attempt))
                attempt += 1

    async def close(self) -> None:
        """Close the connection; in-flight requests fail."""
        if self._closed:
            return
        self._closed = True
        self._dispatcher.cancel()
        try:
            await self._dispatcher
        except (asyncio.CancelledError, Exception):
            pass
        try:
            self._writer.close()
        except Exception:
            pass
        self._fail_pending(ServiceError("client closed"))

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, *_exc) -> None:
        await self.close()

    # ------------------------------------------------------------------ #
    # response dispatch
    # ------------------------------------------------------------------ #

    async def _dispatch(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    self._fail_pending(
                        ServiceError("server closed the connection")
                    )
                    return
                if not line.strip():
                    continue
                try:
                    frame = protocol.decode_frame(line)
                except ProtocolError as exc:
                    self._fail_pending(exc)
                    return
                rid = frame.get("id")
                future = self._pending.pop(rid, None)
                if future is None:
                    # Unattributed (id null) errors close the
                    # connection server-side; everything waiting dies
                    # with the reason attached.
                    if rid is None and not frame.get("ok", False):
                        err = frame.get("error", {})
                        self._fail_pending(
                            ProtocolError(
                                err.get("code", protocol.INTERNAL),
                                err.get("message", "unattributed error"),
                            )
                        )
                    continue
                if not future.done():
                    future.set_result(frame)
        except (ConnectionError, OSError) as exc:
            self._fail_pending(
                ServiceError(f"connection lost: {exc}")
            )
        except asyncio.CancelledError:
            raise

    def _fail_pending(self, exc: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(exc)

    # ------------------------------------------------------------------ #
    # request primitives
    # ------------------------------------------------------------------ #

    def _submit(self, op: str, body: Dict[str, Any]) -> "asyncio.Future":
        """Write one request frame; the future resolves to the raw
        response frame."""
        if self._closed:
            raise ServiceError("client is closed")
        self._next_id += 1
        rid = self._next_id
        frame: Dict[str, Any] = {"id": rid, "op": op}
        frame.update(body)
        future = asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        try:
            self._writer.write(protocol.encode_frame(frame))
        except (ConnectionError, RuntimeError, OSError) as exc:
            self._pending.pop(rid, None)
            raise ServiceError(f"connection lost: {exc}") from exc
        return future

    @staticmethod
    def _result_of(frame: Dict[str, Any]) -> Dict[str, Any]:
        """Unwrap a response frame, raising the mapped exception."""
        if frame.get("ok"):
            return frame.get("result", {})
        err = frame.get("error", {})
        code = err.get("code", protocol.INTERNAL)
        message = err.get("message", "unknown server error")
        raise _mapped_error(code, message)

    def _tracing(self) -> bool:
        if self.propagate_trace is None:
            return OBS.enabled
        return self.propagate_trace

    async def request(self, op: str, **body: Any) -> Dict[str, Any]:
        """One RPC; retries ``overloaded`` responses under the backoff
        policy (each attempt is a fresh request id).

        When trace propagation is on (see ``propagate_trace``), each
        attempt carries a fresh trace context on the wire and records a
        ``client.request`` span, so server-side request spans can be
        joined back to the exact client call (and retry) that caused
        them.
        """
        attempt = 0
        while True:
            ctx: Optional[TraceContext] = None
            t0 = 0.0
            if self._tracing():
                ctx = TraceContext(new_trace_id(), new_span_id())
                body["trace"] = ctx.to_obj()
                t0 = time.perf_counter()
            future = self._submit(op, body)
            await self._writer.drain()
            frame = await future
            if ctx is not None:
                self._record_client_span(op, ctx, t0, frame, attempt)
            try:
                return self._result_of(frame)
            except ServiceOverloadedError:
                if (
                    not self.retry_overloaded
                    or attempt >= self.backoff.max_retries
                ):
                    raise
                await asyncio.sleep(self.backoff.delay(attempt))
                attempt += 1

    @staticmethod
    def _record_client_span(
        op: str,
        ctx: TraceContext,
        t0: float,
        frame: Dict[str, Any],
        attempt: int,
    ) -> None:
        rtt = time.perf_counter() - t0
        if OBS.enabled:
            OBS.registry.histogram(
                "repro_client_request_seconds", op=op
            ).observe(rtt)
            tracer = OBS.tracer
            if tracer is not None:
                tracer.record_span(
                    "client.request",
                    start=t0,
                    duration=rtt,
                    op=op,
                    ok=bool(frame.get("ok", False)),
                    trace_id=ctx.trace_id,
                    span_hex=ctx.span_id,
                    attempt=attempt,
                )

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #

    async def admit(self, flow: FlowSpec) -> WireDecision:
        result = await self.request(
            "admit", flow=protocol.flow_to_obj(flow)
        )
        return WireDecision(
            flow_id=flow.flow_id,
            admitted=bool(result["admitted"]),
            reason=result.get("reason", ""),
            batch_size=int(result.get("batch_size", 1)),
        )

    async def release(self, flow_id: Hashable) -> bool:
        result = await self.request("release", flow_id=flow_id)
        return bool(result.get("released", False))

    async def batch(
        self, ops: List[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Submit a batch frame; returns the per-sub-op result objects
        (``{"ok": ..., "result"|"error": ...}``), one per input op."""
        result = await self.request("batch", ops=ops)
        return list(result.get("results", []))

    async def query(self, flow_id: Hashable) -> bool:
        result = await self.request("query", flow_id=flow_id)
        return bool(result.get("established", False))

    async def stats(self) -> Dict[str, Any]:
        return await self.request("stats")

    async def health(self) -> Dict[str, Any]:
        return await self.request("health")

    async def snapshot(self) -> Dict[str, Any]:
        return await self.request("snapshot")

    async def cluster(self) -> Optional[Dict[str, Any]]:
        """Cluster topology when connected to a front door, else None.

        A single-process server answers ``unknown_op`` for the
        router-only ``cluster`` discovery op; that is mapped to None so
        callers can branch without exception plumbing.
        """
        try:
            return await self.request("cluster")
        except ProtocolError as exc:
            if exc.code == protocol.UNKNOWN_OP:
                return None
            raise


def _mapped_error(code: str, message: str) -> Exception:
    if code == protocol.OVERLOADED:
        return ServiceOverloadedError(message)
    if code == protocol.ADMISSION_ERROR:
        return AdmissionError(message)
    return ProtocolError(code, message)


class ServiceClient:
    """Synchronous facade over :class:`AsyncServiceClient`.

    Owns a private event loop, so it works from any plain (non-async)
    context: the workload driver, benchmarks, tests, the CLI.  Use as a
    context manager or call :meth:`close`.
    """

    def __init__(
        self,
        *,
        socket_path: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        backoff: BackoffPolicy = BackoffPolicy(base=0.01, max_retries=5),
        retry_overloaded: bool = True,
        propagate_trace: Optional[bool] = None,
    ):
        if (socket_path is None) == (host is None):
            raise ServiceError(
                "specify exactly one of socket_path or host/port"
            )
        if host is not None and port is None:
            raise ServiceError("TCP target needs a port")
        self._loop = asyncio.new_event_loop()
        try:
            if socket_path is not None:
                self._client = self._loop.run_until_complete(
                    AsyncServiceClient.connect_unix(
                        socket_path,
                        backoff=backoff,
                        retry_overloaded=retry_overloaded,
                        propagate_trace=propagate_trace,
                    )
                )
            else:
                assert host is not None and port is not None
                self._client = self._loop.run_until_complete(
                    AsyncServiceClient.connect_tcp(
                        host,
                        port,
                        backoff=backoff,
                        retry_overloaded=retry_overloaded,
                        propagate_trace=propagate_trace,
                    )
                )
        except BaseException:
            self._loop.close()
            raise

    # ------------------------------------------------------------------ #

    def _run(self, coro):
        return self._loop.run_until_complete(coro)

    def admit(self, flow: FlowSpec) -> WireDecision:
        return self._run(self._client.admit(flow))

    def release(self, flow_id: Hashable) -> bool:
        return self._run(self._client.release(flow_id))

    def batch(self, ops: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        return self._run(self._client.batch(ops))

    def query(self, flow_id: Hashable) -> bool:
        return self._run(self._client.query(flow_id))

    def stats(self) -> Dict[str, Any]:
        return self._run(self._client.stats())

    def health(self) -> Dict[str, Any]:
        return self._run(self._client.health())

    def snapshot(self) -> Dict[str, Any]:
        return self._run(self._client.snapshot())

    def cluster(self) -> Optional[Dict[str, Any]]:
        return self._run(self._client.cluster())

    def request(self, op: str, **body: Any) -> Dict[str, Any]:
        return self._run(self._client.request(op, **body))

    def close(self) -> None:
        if not self._loop.is_closed():
            self._run(self._client.close())
            self._loop.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
