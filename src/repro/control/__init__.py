"""Adaptive overload control plane.

The paper certifies one utilization bound ``alpha`` at configuration
time, so the running service's only overload response used to be
shedding at the queue.  This package closes the loop at runtime while
keeping every operating point provably safe:

* :mod:`repro.control.ladder` — a pre-certified ladder of alphas.
  Every rung is re-verified through the existing Figure 2 fixed-point
  procedure at construction time; an alpha that fails verification
  never enters the ladder, so no uncertified bound can ever be applied.
* :mod:`repro.control.governor` — an increase/hold/decrease controller
  modeled on the GCC ``RemoteRateController``/``OveruseDetector`` state
  machine, keyed on measured queue-delay gradients and occupancy
  headroom.  It only ever moves the *effective* alpha between ladder
  rungs.
* :mod:`repro.control.preempt` — a sacrifice policy: under sustained
  pressure the lowest-priority established flows are evicted (through
  the ordinary release path, so every controller invariant holds at
  every step) to admit hard real-time arrivals.

Flow priorities (``hard_rt`` / ``soft_rt`` / ``elastic``) live on
:class:`~repro.traffic.flows.FlowSpec` and ride the wire protocol as
the optional ``pri`` field; they are re-exported here for convenience.
"""

from ..traffic.flows import PRIORITIES, PRIORITY_CODES, priority_rank
from .governor import (
    AlphaGovernor,
    GovernorConfig,
    GovernorSample,
)
from .ladder import AlphaLadder, certify_ladder
from .preempt import PreemptionOutcome, PreemptionPolicy, Preemptor

__all__ = [
    "PRIORITIES",
    "PRIORITY_CODES",
    "priority_rank",
    "AlphaGovernor",
    "GovernorConfig",
    "GovernorSample",
    "AlphaLadder",
    "certify_ladder",
    "PreemptionOutcome",
    "PreemptionPolicy",
    "Preemptor",
]
