"""Runtime alpha governor: an INC/HOLD/DEC controller over a ladder.

Modeled on the GCC congestion controller's ``OveruseDetector`` +
``RemoteRateController`` pair: a detector turns the raw signal (here
the measured queue-delay and its gradient, plus the slot ledger's
occupancy headroom) into an ``overuse`` / ``normal`` / ``underuse``
verdict with hysteresis, and a rate controller maps verdicts onto
increase/hold/decrease actions — here, steps along a pre-certified
:class:`~repro.control.ladder.AlphaLadder`.

The governor is pure and deterministic: it never reads a clock and
never touches the admission controller itself.  Callers sample their
telemetry (coalescer queue, SLO tracker, ledger occupancy), feed
:meth:`AlphaGovernor.observe`, and apply the returned degradation
factor through the ordinary degraded-mode path.  Because every rung
was certified up front, any reachable operating point is provably
deadline-safe — the state machine cannot escape the ladder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ConfigurationError
from .ladder import AlphaLadder

__all__ = ["AlphaGovernor", "GovernorConfig", "GovernorSample"]

#: Detector verdicts (signal states).
SIGNAL_OVERUSE = "overuse"
SIGNAL_NORMAL = "normal"
SIGNAL_UNDERUSE = "underuse"

#: Controller actions.
ACTION_INC = "inc"
ACTION_HOLD = "hold"
ACTION_DEC = "dec"


@dataclass(frozen=True)
class GovernorSample:
    """One telemetry observation fed to the governor.

    Attributes
    ----------
    queue_delay:
        Measured (or proxied) queueing delay, in seconds.  Any
        monotone proxy of backlog works — the detector keys on its
        level *and* gradient, not its absolute calibration.
    headroom:
        Fraction of effective slot capacity still free at the current
        bottleneck, in ``[0, 1]``.
    """

    queue_delay: float
    headroom: float


@dataclass(frozen=True)
class GovernorConfig:
    """Tuning knobs of the overuse detector and rate controller.

    The defaults follow the GCC shape: overuse needs the delay signal
    to sit above threshold *while rising* for ``overuse_samples``
    consecutive observations (trigger hysteresis), underuse needs the
    queue drained and real headroom for ``underuse_samples``
    observations, and after any rung change the controller holds for
    ``hold_samples`` before it may move again (rate hysteresis).
    """

    delay_threshold: float = 0.005
    gradient_threshold: float = 0.0
    headroom_low: float = 0.05
    headroom_high: float = 0.25
    overuse_samples: int = 2
    underuse_samples: int = 4
    hold_samples: int = 4

    def __post_init__(self):
        if self.delay_threshold < 0:
            raise ConfigurationError(
                f"delay_threshold must be >= 0, got {self.delay_threshold}"
            )
        if not 0.0 <= self.headroom_low <= self.headroom_high <= 1.0:
            raise ConfigurationError(
                "need 0 <= headroom_low <= headroom_high <= 1, got "
                f"{self.headroom_low} / {self.headroom_high}"
            )
        for name in ("overuse_samples", "underuse_samples", "hold_samples"):
            if getattr(self, name) < 1:
                raise ConfigurationError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )


class AlphaGovernor:
    """INC/HOLD/DEC state machine over a certified alpha ladder.

    State
    -----
    ``rung``
        Current ladder index (starts at the top — the configured
        alpha; the governor only departs from it under pressure).
    ``action``
        Last action taken (``inc`` / ``hold`` / ``dec``).
    ``signal``
        Last detector verdict.
    """

    def __init__(
        self,
        ladder: AlphaLadder,
        config: GovernorConfig = GovernorConfig(),
    ):
        self.ladder = ladder
        self.config = config
        self.rung = ladder.top
        self.action = ACTION_HOLD
        self.signal = SIGNAL_NORMAL
        self.samples = 0
        self.inc_count = 0
        self.dec_count = 0
        self.hold_count = 0
        self._prev_delay: Optional[float] = None
        self._over_streak = 0
        self._under_streak = 0
        self._since_change = config.hold_samples  # free to move at start

    # ------------------------------------------------------------------ #

    @property
    def effective_alpha(self) -> float:
        return self.ladder.alpha(self.rung)

    @property
    def factor(self) -> float:
        """Current ledger degradation factor (1.0 at the top rung)."""
        return self.ladder.factor(self.rung)

    @property
    def at_top(self) -> bool:
        return self.rung == self.ladder.top

    # ------------------------------------------------------------------ #

    def _detect(self, sample: GovernorSample) -> str:
        cfg = self.config
        gradient = (
            0.0
            if self._prev_delay is None
            else sample.queue_delay - self._prev_delay
        )
        self._prev_delay = sample.queue_delay
        pressed = (
            sample.queue_delay > cfg.delay_threshold
            and gradient >= cfg.gradient_threshold
        ) or sample.headroom < cfg.headroom_low
        drained = (
            sample.queue_delay <= cfg.delay_threshold
            and sample.headroom >= cfg.headroom_high
        )
        if pressed:
            self._over_streak += 1
            self._under_streak = 0
        elif drained:
            self._under_streak += 1
            self._over_streak = 0
        else:
            self._over_streak = 0
            self._under_streak = 0
        if self._over_streak >= cfg.overuse_samples:
            return SIGNAL_OVERUSE
        if self._under_streak >= cfg.underuse_samples:
            return SIGNAL_UNDERUSE
        return SIGNAL_NORMAL

    def observe(self, sample: GovernorSample) -> Optional[float]:
        """Feed one sample; returns the new factor iff the rung moved.

        ``None`` means hold — the caller's previously applied factor is
        still in force.
        """
        self.samples += 1
        self._since_change += 1
        self.signal = self._detect(sample)
        action = ACTION_HOLD
        if self._since_change >= self.config.hold_samples:
            if self.signal == SIGNAL_OVERUSE and self.rung > 0:
                action = ACTION_DEC
            elif self.signal == SIGNAL_UNDERUSE and not self.at_top:
                action = ACTION_INC
        self.action = action
        if action == ACTION_DEC:
            self.rung -= 1
            self.dec_count += 1
        elif action == ACTION_INC:
            self.rung += 1
            self.inc_count += 1
        else:
            self.hold_count += 1
            return None
        self._since_change = 0
        # A move resets the opposing streak so the next decision needs
        # fresh evidence.
        self._over_streak = 0
        self._under_streak = 0
        return self.factor

    # ------------------------------------------------------------------ #

    def snapshot(self) -> Dict[str, object]:
        """Deterministic state dump for ``/stats`` and the CLI."""
        return {
            "rung": self.rung,
            "rungs": len(self.ladder),
            "effective_alpha": self.effective_alpha,
            "base_alpha": self.ladder.base,
            "factor": self.factor,
            "action": self.action,
            "signal": self.signal,
            "samples": self.samples,
            "inc": self.inc_count,
            "dec": self.dec_count,
            "hold": self.hold_count,
        }
