"""Pre-certified ladders of utilization bounds.

An :class:`AlphaLadder` is an ascending sequence of scalar alphas whose
top rung is the configured (already verified) bound.  Every rung below
it was passed through :func:`repro.analysis.verification.\
verify_assignment` — the same Figure 2 fixed-point procedure the
configuration pipeline uses — before being admitted to the ladder, so a
runtime governor stepping between rungs can never apply an operating
point that was not proven deadline-safe.

Rungs are *applied* as a degradation factor ``rung / base`` on the slot
ledger (:meth:`repro.admission.utilization.UtilizationAdmissionController
.enter_degraded_mode`).  The effective per-server slot count at factor
``f`` is ``floor(floor(base * C / rho) * f)`` which, for ``f = rung /
base <= 1``, never exceeds ``floor(rung * C / rho)`` — the slot count
the rung's own certificate covers.  Shrinking only the *effective* view
(never the verified ceiling) also means moving down a rung never
invalidates established flows: they were admitted under a certificate
that still holds, and ``verify_invariants()`` stays green throughout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Sequence, Tuple, Union

from ..analysis.verification import verify_assignment
from ..errors import ConfigurationError
from ..topology.network import Network
from ..topology.servergraph import LinkServerGraph
from ..traffic.classes import ClassRegistry

__all__ = ["AlphaLadder", "certify_ladder"]


@dataclass(frozen=True)
class AlphaLadder:
    """An ascending, fully certified sequence of scalar alphas.

    Attributes
    ----------
    rungs:
        Strictly increasing alphas; ``rungs[-1]`` is the configured
        base alpha the deployment was verified at.
    rejected:
        Candidate alphas that failed certification (kept for
        observability — they are *not* reachable).
    """

    rungs: Tuple[float, ...]
    rejected: Tuple[float, ...] = field(default=())

    def __post_init__(self):
        if not self.rungs:
            raise ConfigurationError("alpha ladder needs at least one rung")
        for a, b in zip(self.rungs, self.rungs[1:]):
            if not a < b:
                raise ConfigurationError(
                    f"ladder rungs must be strictly increasing, got "
                    f"{self.rungs!r}"
                )
        for a in self.rungs:
            if not 0.0 < a:
                raise ConfigurationError(
                    f"ladder rungs must be positive, got {a!r}"
                )

    # ------------------------------------------------------------------ #

    @property
    def base(self) -> float:
        """The top rung — the configured, verified alpha."""
        return self.rungs[-1]

    @property
    def top(self) -> int:
        """Index of the top rung."""
        return len(self.rungs) - 1

    def __len__(self) -> int:
        return len(self.rungs)

    def alpha(self, rung: int) -> float:
        """The alpha at a rung index."""
        return self.rungs[rung]

    def factor(self, rung: int) -> float:
        """Ledger degradation factor applying this rung (``<= 1.0``)."""
        return self.rungs[rung] / self.base

    def to_dict(self) -> Dict[str, object]:
        return {
            "rungs": list(self.rungs),
            "base": self.base,
            "rejected": list(self.rejected),
        }


def certify_ladder(
    network: Union[Network, LinkServerGraph],
    routes: Sequence[Sequence[Hashable]],
    registry: ClassRegistry,
    base_alphas: Mapping[str, float],
    candidates: Sequence[float],
    *,
    n_mode: str = "uniform",
) -> AlphaLadder:
    """Build an :class:`AlphaLadder` from candidate alphas.

    Every candidate (plus the base alpha itself, which always tops the
    ladder) is scaled onto the deployment's per-class assignment —
    candidate ``a`` maps class ``c`` to ``base_alphas[c] * a / base``
    where ``base`` is the largest configured alpha — and run through
    :func:`verify_assignment`.  Only candidates whose certificate
    SUCCEEDs become rungs; the rest are recorded in
    :attr:`AlphaLadder.rejected`.

    Raises :class:`ConfigurationError` if the base assignment itself
    fails verification (a mis-configured deployment must not start).
    """
    if not base_alphas:
        raise ConfigurationError("base_alphas must be non-empty")
    base = max(float(a) for a in base_alphas.values())
    if base <= 0:
        raise ConfigurationError(f"base alpha must be positive, got {base}")
    route_list = [list(r) for r in routes]

    def _certified(alpha: float) -> bool:
        scaled = {
            name: float(a) * alpha / base
            for name, a in base_alphas.items()
        }
        try:
            return verify_assignment(
                network, route_list, registry, scaled, n_mode=n_mode
            ).success
        except Exception:
            return False

    if not _certified(base):
        raise ConfigurationError(
            f"base alpha {base:g} fails verification; refusing to build "
            "a ladder on an uncertified configuration"
        )
    accepted: List[float] = []
    rejected: List[float] = []
    for raw in candidates:
        alpha = float(raw)
        if alpha <= 0 or alpha >= base:
            # Above (or at) base is never a rung: the base already tops
            # the ladder and anything beyond it is outside the
            # configured certificate's envelope.
            if alpha != base:
                rejected.append(alpha)
            continue
        (accepted if _certified(alpha) else rejected).append(alpha)
    rungs = tuple(sorted(set(accepted))) + (base,)
    return AlphaLadder(rungs=rungs, rejected=tuple(sorted(set(rejected))))
