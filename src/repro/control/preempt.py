"""Priority preemption: sacrifice low-priority flows for hard-RT ones.

When a hard real-time arrival is rejected for lack of slots, the
:class:`Preemptor` plans a minimal eviction set among established
lower-priority flows of the same class whose committed routes cross the
saturated servers, evicts them through the controller's **ordinary
release path**, and re-admits the arrival.  Planning happens before any
eviction: if no lower-priority set can cover the deficit, nothing is
released — a failed preemption has zero side effects.

Safety properties (pinned by the property suite):

* a flow whose priority is in :attr:`PreemptionPolicy.protect`
  (``hard_rt`` by default) is **never** evicted;
* every eviction goes through
  :meth:`~repro.admission.base.AdmissionController.release`, so
  ``verify_invariants()`` holds after every step and survivors keep
  their committed routes untouched;
* the ledger is only ever freed-then-reserved, so effective usage
  never exceeds the certified capacity at any instant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Set, Tuple

from ..errors import AdmissionError
from ..traffic.flows import FlowSpec, priority_rank

__all__ = ["PreemptionOutcome", "PreemptionPolicy", "Preemptor"]


@dataclass(frozen=True)
class PreemptionPolicy:
    """Knobs of the sacrifice policy.

    Attributes
    ----------
    admit_priorities:
        Arrival priorities allowed to trigger a preemption.
    protect:
        Priorities that can never be evicted.
    max_victims:
        Upper bound on evictions per admitted arrival.
    """

    admit_priorities: Tuple[str, ...] = ("hard_rt",)
    protect: Tuple[str, ...] = ("hard_rt",)
    max_victims: int = 8

    def __post_init__(self):
        if self.max_victims < 1:
            raise AdmissionError(
                f"max_victims must be >= 1, got {self.max_victims}"
            )


@dataclass(frozen=True)
class PreemptionOutcome:
    """Result of one :meth:`Preemptor.try_admit` attempt."""

    admitted: bool
    evicted: Tuple[Hashable, ...] = ()
    reason: str = ""
    #: The re-admit :class:`~repro.admission.base.AdmissionDecision`
    #: when the preemption went through (None on failure).
    decision: Optional[Any] = None


class Preemptor:
    """Plans and executes evictions against one admission controller.

    Works with any controller exposing the utilization-controller
    surface (``ledger``, ``established_flows``, ``committed_route``,
    ``release``, ``admit``); the shared-ledger controller is the
    production target.
    """

    def __init__(self, controller, policy: PreemptionPolicy = PreemptionPolicy()):
        self.controller = controller
        self.policy = policy
        self.preempted_total = 0
        self.preempted_admits = 0

    # ------------------------------------------------------------------ #

    def try_admit(self, flow: FlowSpec) -> PreemptionOutcome:
        """Attempt to admit a just-rejected flow by sacrificing others.

        Call only after a plain admission of ``flow`` was rejected.
        If the rejection is stale (the route has room again — e.g. an
        earlier eviction in the same batched preemption pass freed it)
        the flow is re-admitted with no sacrifice.  Returns
        ``admitted=False`` with ``evicted=()`` when no safe eviction
        plan exists — in that case the controller state is untouched.
        """
        ctrl = self.controller
        policy = self.policy
        if flow.priority not in policy.admit_priorities:
            return PreemptionOutcome(False, (), "priority not eligible")
        try:
            route = ctrl.resolve_route(flow)
        except AdmissionError as exc:
            return PreemptionOutcome(False, (), str(exc))
        ledger = getattr(ctrl, "ledger", None)
        if ledger is None:
            return PreemptionOutcome(
                False, (), "controller has no slot ledger"
            )
        cls = flow.class_name
        try:
            registry_cls = ctrl.registry.get(cls)
        except Exception as exc:
            return PreemptionOutcome(False, (), str(exc))
        if not registry_cls.is_realtime:
            return PreemptionOutcome(
                False, (), "best-effort flows hold no slots"
            )
        servers = ctrl.graph.route_servers(route)
        free = ledger.slots(cls) - ledger.used(cls)
        # Per-server slot deficit: each eviction frees exactly one slot
        # on every server of the victim's route, and the arrival needs
        # one free slot everywhere — so server ``s`` needs ``1 - free``
        # evictions.  Under a degraded/governed ledger ``free`` can be
        # negative, making the deficit larger than one.
        deficit: Dict[int, int] = {
            int(s): 1 - int(free[int(s)])
            for s in servers
            if free[int(s)] <= 0
        }
        saturated: Set[int] = set(deficit)
        if not saturated:
            # The rejection is stale: in a batched preemption pass
            # every decision is taken before any sacrifice, so an
            # earlier eviction may have freed this route already.
            # Re-admit plainly — nothing needs to be sacrificed.
            decision = ctrl.admit(flow)
            if decision.admitted:
                return PreemptionOutcome(True, (), "", decision)
            return PreemptionOutcome(False, (), "no saturated server")
        blocked = set(int(s) for s in ledger.blocked_servers)
        if saturated & blocked:
            return PreemptionOutcome(
                False, (), "route crosses a blocked server"
            )

        plan = self._plan(flow, deficit)
        if plan is None:
            return PreemptionOutcome(
                False, (), "no lower-priority flows cover the deficit"
            )
        for victim_id in plan:
            ctrl.release(victim_id)
        decision = ctrl.admit(flow)
        self.preempted_total += len(plan)
        if decision.admitted:
            self.preempted_admits += 1
        return PreemptionOutcome(
            decision.admitted, tuple(plan), decision.reason, decision
        )

    # ------------------------------------------------------------------ #

    def _plan(
        self, flow: FlowSpec, deficit: "Dict[int, int]"
    ) -> "List[Hashable] | None":
        """Greedy minimal cover of the per-server slot deficits.

        Candidates are established flows of the same class with
        strictly lower priority (never a protected one) whose committed
        servers intersect the deficit.  Each eviction reduces every
        touched server's deficit by one; the plan is complete when all
        deficits reach zero.  Deterministic: ties break by (priority
        rank, flow id repr).
        """
        ctrl = self.controller
        policy = self.policy
        saturated = set(deficit)
        arrival_rank = priority_rank(flow.priority)
        candidates: List[Tuple[int, str, Hashable, Set[int]]] = []
        for other in ctrl.established_flows:
            if other.priority in policy.protect:
                continue
            rank = priority_rank(other.priority)
            if rank >= arrival_rank:
                continue
            if other.class_name != flow.class_name:
                continue
            overlap = saturated.intersection(
                int(s)
                for s in ctrl.graph.route_servers(
                    ctrl.committed_route(other.flow_id)
                )
            )
            if overlap:
                candidates.append(
                    (rank, repr(other.flow_id), other.flow_id, overlap)
                )
        candidates.sort(key=lambda c: (c[0], c[1]))
        remaining = dict(deficit)
        plan: List[Hashable] = []
        while (
            any(d > 0 for d in remaining.values())
            and len(plan) < policy.max_victims
        ):
            best = None
            best_gain = 0
            for cand in candidates:
                gain = sum(
                    1 for s in cand[3] if remaining.get(s, 0) > 0
                )
                if gain > best_gain:
                    best, best_gain = cand, gain
            if best is None:
                return None
            candidates.remove(best)
            plan.append(best[2])
            for s in best[3]:
                remaining[s] -= 1
        if any(d > 0 for d in remaining.values()):
            return None
        return plan
